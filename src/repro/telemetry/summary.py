"""Aggregated telemetry: what happened, how often, and how long it took.

A :class:`TelemetrySummary` is the picklable, mergeable digest of one
recorder: event counts by kind, counter totals, last gauge values, and
histogram moments.  Pool workers summarize locally and the executor
merges the per-seed summaries into the one carried by
``EnsembleSummary.telemetry``; experiment runs attach theirs to
``ExperimentResult.telemetry``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Set,
    Tuple,
)

if TYPE_CHECKING:
    from repro.telemetry.recorder import TelemetryRecorder


def _merge_histograms(
    left: Mapping[str, float], right: Mapping[str, float]
) -> Dict[str, float]:
    count = left["count"] + right["count"]
    total = left["total"] + right["total"]
    contributors = [h for h in (left, right) if h["count"]]
    if not contributors:
        return {"count": 0, "total": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0}
    return {
        "count": count,
        "total": total,
        "min": min(h["min"] for h in contributors),
        "max": max(h["max"] for h in contributors),
        "mean": total / count,
    }


@dataclass(frozen=True)
class TelemetrySummary:
    """Mergeable digest of one (or many) telemetry recorders."""

    num_events: int = 0
    num_runs: int = 0
    event_counts: Dict[str, int] = field(default_factory=dict)
    counters: Dict[str, float] = field(default_factory=dict)
    gauges: Dict[str, float] = field(default_factory=dict)
    histograms: Dict[str, Dict[str, float]] = field(default_factory=dict)

    @classmethod
    def from_recorder(
        cls, recorder: "TelemetryRecorder", since: int = 0
    ) -> "TelemetrySummary":
        """Summarize a :class:`TelemetryRecorder`'s state.

        ``since`` restricts the *event* tallies to events appended after
        that mark (metrics are cumulative and always included whole).
        """
        events = list(recorder.events)[since:]
        counts: Dict[str, int] = {}
        runs: Set[str] = set()
        for event in events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
            runs.add(event.run)
        metrics = recorder.metrics.snapshot()
        return cls(
            num_events=len(events),
            num_runs=len(runs),
            event_counts=counts,
            counters=dict(metrics["counters"]),
            gauges=dict(metrics["gauges"]),
            histograms={
                name: dict(stats)
                for name, stats in metrics["histograms"].items()
            },
        )

    @classmethod
    def merge(
        cls, summaries: Iterable[Optional["TelemetrySummary"]]
    ) -> "TelemetrySummary":
        """Combine per-worker/per-run summaries into one.

        ``None`` entries (runs without telemetry) are skipped; gauges are
        last-value-wins in iteration order.
        """
        merged = cls()
        for summary in summaries:
            if summary is None:
                continue
            event_counts = dict(merged.event_counts)
            for kind, count in summary.event_counts.items():
                event_counts[kind] = event_counts.get(kind, 0) + count
            counters = dict(merged.counters)
            for name, value in summary.counters.items():
                counters[name] = counters.get(name, 0.0) + value
            gauges = dict(merged.gauges)
            gauges.update(summary.gauges)
            histograms = dict(merged.histograms)
            for name, stats in summary.histograms.items():
                if name in histograms:
                    histograms[name] = _merge_histograms(
                        histograms[name], stats
                    )
                else:
                    histograms[name] = dict(stats)
            merged = cls(
                num_events=merged.num_events + summary.num_events,
                num_runs=merged.num_runs + summary.num_runs,
                event_counts=event_counts,
                counters=counters,
                gauges=gauges,
                histograms=histograms,
            )
        return merged

    def count(self, kind: str) -> int:
        """Events of one kind."""
        return self.event_counts.get(kind, 0)

    def top_kinds(self, limit: int = 8) -> Tuple[Tuple[str, int], ...]:
        """The most frequent event kinds, descending."""
        ranked = sorted(
            self.event_counts.items(), key=lambda item: (-item[1], item[0])
        )
        return tuple(ranked[:limit])

    def describe(self) -> str:
        """One printable paragraph (CLI and report output)."""
        if not self.num_events:
            return "telemetry: no events recorded"
        kinds = ", ".join(
            f"{kind}={count}" for kind, count in self.top_kinds()
        )
        lines = [
            f"telemetry: {self.num_events} events across "
            f"{self.num_runs} run(s) [{kinds}]"
        ]
        for name, stats in sorted(self.histograms.items()):
            if not stats["count"]:
                continue
            lines.append(
                f"  {name}: n={stats['count']} mean={stats['mean']:.3g}s "
                f"max={stats['max']:.3g}s total={stats['total']:.3g}s"
            )
        lines.extend(self._fast_path_lines())
        return "\n".join(lines)

    def _fast_path_lines(self) -> List[str]:
        """Lines showing whether the perf fast paths were exercised.

        Covers the ``perf.cache.<name>.hits/.misses`` counters bumped by
        :class:`repro.perf.BoundedCache` and the simulator's batched
        sample-clock counters/gauges.
        """
        lines: List[str] = []
        caches: Dict[str, Dict[str, float]] = {}
        for name, value in self.counters.items():
            if not name.startswith("perf.cache."):
                continue
            cache, _, outcome = name[len("perf.cache."):].rpartition(".")
            if outcome in ("hits", "misses"):
                caches.setdefault(cache, {})[outcome] = value
        for cache in sorted(caches):
            hits = caches[cache].get("hits", 0.0)
            misses = caches[cache].get("misses", 0.0)
            total = hits + misses
            rate = hits / total if total else 0.0
            lines.append(
                f"  cache {cache}: hits={hits:g} misses={misses:g} "
                f"hit_rate={rate:.1%}"
            )
        fast = self.counters.get("sim.fast_samples")
        total_samples = self.counters.get("sim.samples")
        if fast is not None:
            share = (
                f" ({fast / total_samples:.1%} of {total_samples:g})"
                if total_samples
                else ""
            )
            lines.append(f"  batched samples: {fast:g}{share}")
        last_batch = self.gauges.get("sim.last_batch_samples")
        if last_batch is not None:
            lines.append(f"  last batch size: {last_batch:g}")
        return lines
