"""The telemetry recorder and the process-wide current-recorder slot.

Instrumented hot paths (`sim.link`, `core.maintenance`, the baselines,
...) fetch the active recorder with :func:`get_recorder` and bail out on
``recorder.enabled`` — with telemetry off that is one module-global load
and one attribute check, so the simulator's numeric behaviour and its
wall time are untouched.  Enabling telemetry is scoped::

    with use_recorder(TelemetryRecorder()) as recorder:
        LinkSimulator(...).run()
    print(recorder.summary().describe())

Each process (including every ensemble pool worker) has its own slot;
the executor installs a recorder inside the worker and ships the
captured events back to the parent as plain data.
"""

from __future__ import annotations

import itertools
import threading
from contextlib import contextmanager
from types import TracebackType
from typing import (
    TYPE_CHECKING,
    ContextManager,
    Iterable,
    Iterator,
    Optional,
    Protocol,
    Type,
)

from repro.telemetry.events import Event, EventKind, EventLog
from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    _Timer,
)

if TYPE_CHECKING:
    from repro.telemetry.summary import TelemetrySummary


class CounterLike(Protocol):
    """Anything a hot path can ``inc()`` (real counter or null sink)."""

    def inc(self, amount: float = 1.0) -> None: ...


class GaugeLike(Protocol):
    """Anything a hot path can ``set()``."""

    def set(self, value: float) -> None: ...


class HistogramLike(Protocol):
    """Anything a hot path can ``observe()``."""

    def observe(self, value: float) -> None: ...


class RecorderLike(Protocol):
    """The structural interface instrumentation sites program against.

    Both :class:`TelemetryRecorder` and :class:`NullRecorder` satisfy it;
    callers must branch on ``enabled`` before doing any work whose only
    purpose is feeding telemetry.
    """

    @property
    def enabled(self) -> bool: ...

    def emit(self, kind: str, time_s: float, **fields: object) -> None: ...

    def begin_run(self, label: str, time_s: float = 0.0) -> str: ...

    def end_run(self, time_s: float, **fields: object) -> None: ...

    def counter(self, name: str) -> CounterLike: ...

    def gauge(self, name: str) -> GaugeLike: ...

    def histogram(self, name: str) -> HistogramLike: ...

    def timer(self, name: str) -> ContextManager[object]: ...


class _NullTimer:
    """A reusable do-nothing context manager."""

    __slots__ = ()

    def __enter__(self) -> "_NullTimer":
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        pass


class _NullMetric:
    """Accepts any update and drops it."""

    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


_NULL_TIMER = _NullTimer()
_NULL_METRIC = _NullMetric()


class NullRecorder:
    """The disabled recorder: every operation is a no-op.

    A single module-level instance backs every disabled code path, so
    "telemetry off" costs one attribute check per instrumentation site.
    """

    __slots__ = ()
    enabled = False

    def emit(self, kind: str, time_s: float, **fields: object) -> None:
        pass

    def begin_run(self, label: str, time_s: float = 0.0) -> str:
        return ""

    def end_run(self, time_s: float, **fields: object) -> None:
        pass

    def counter(self, name: str) -> _NullMetric:
        return _NULL_METRIC

    def gauge(self, name: str) -> _NullMetric:
        return _NULL_METRIC

    def histogram(self, name: str) -> _NullMetric:
        return _NULL_METRIC

    def timer(self, name: str) -> _NullTimer:
        return _NULL_TIMER


NULL_RECORDER = NullRecorder()


class TelemetryRecorder:
    """Collects events into an :class:`EventLog` plus a metrics registry.

    ``scope`` prefixes every run label this recorder opens (the ensemble
    executor scopes each worker recorder to ``"<label>/seed<n>"``), so
    merged traces stay attributable.
    """

    enabled = True

    def __init__(self, scope: str = "") -> None:
        self.scope = scope
        self.events = EventLog()
        self.metrics = MetricsRegistry()
        self._run_sequence: Iterator[int] = itertools.count()
        self._current_run = scope

    @property
    def current_run(self) -> str:
        return self._current_run

    def emit(self, kind: str, time_s: float, **fields: object) -> None:
        """Record one event at simulation time ``time_s``."""
        self.events.append(
            Event(
                time_s=float(time_s),
                kind=kind,
                run=self._current_run,
                fields=fields,
            )
        )

    def begin_run(self, label: str, time_s: float = 0.0) -> str:
        """Open a run scope and emit its ``run_start`` event.

        Returns the full run label (unique within this recorder); all
        events emitted until :meth:`end_run` carry it.
        """
        sequence = next(self._run_sequence)
        name = f"{label}#{sequence}"
        self._current_run = f"{self.scope}:{name}" if self.scope else name
        self.counter("telemetry.runs").inc()
        self.emit(EventKind.RUN_START, time_s, label=label)
        return self._current_run

    def end_run(self, time_s: float, **fields: object) -> None:
        """Emit ``run_end`` and fall back to the recorder's base scope."""
        self.emit(EventKind.RUN_END, time_s, **fields)
        self._current_run = self.scope

    def absorb(self, events: Iterable[Event]) -> None:
        """Fold in events recorded elsewhere (e.g. by a pool worker)."""
        self.events.extend(events)

    def absorb_metrics(self, summary: "TelemetrySummary") -> None:
        """Fold a worker run's counter/gauge totals into this registry.

        Pool workers record onto private recorders; their events come
        back through :meth:`absorb` and their metric totals through a
        :class:`~repro.telemetry.TelemetrySummary`.  Counters add,
        gauges last-write-wins.  Histogram moments cannot be replayed
        into live histograms and stay summary-only.
        """
        for name, value in summary.counters.items():
            self.counter(name).inc(value)
        for name, value in summary.gauges.items():
            self.gauge(name).set(value)

    def counter(self, name: str) -> Counter:
        return self.metrics.counter(name)

    def gauge(self, name: str) -> Gauge:
        return self.metrics.gauge(name)

    def histogram(self, name: str) -> Histogram:
        return self.metrics.histogram(name)

    def timer(self, name: str) -> _Timer:
        return self.metrics.timer(name)

    def mark(self) -> int:
        """The current event count (for since-mark summaries)."""
        return len(self.events)

    def summary(self, since: int = 0) -> "TelemetrySummary":
        """A :class:`TelemetrySummary` of everything recorded so far."""
        from repro.telemetry.summary import TelemetrySummary

        return TelemetrySummary.from_recorder(self, since=since)


# The active recorder is thread-scoped (like repro.perf.backend's
# active-backend stack): the serve layer runs jobs on worker threads,
# and a process-wide slot would let one job's use_recorder() clobber
# another's mid-flight.  Single-threaded callers see the old behavior
# unchanged, and process-pool ensemble workers each install their own
# recorder inside _run_one_seed.
_ACTIVE = threading.local()


def get_recorder() -> RecorderLike:
    """The active recorder on this thread (the null recorder by default)."""
    return getattr(_ACTIVE, "recorder", NULL_RECORDER)


def set_recorder(recorder: Optional[RecorderLike]) -> RecorderLike:
    """Install ``recorder`` (or the null recorder for ``None``).

    Returns the previously installed recorder so callers can restore it;
    prefer :func:`use_recorder` which does so automatically.
    """
    previous = getattr(_ACTIVE, "recorder", NULL_RECORDER)
    _ACTIVE.recorder = NULL_RECORDER if recorder is None else recorder
    return previous


@contextmanager
def use_recorder(recorder: RecorderLike) -> Iterator[RecorderLike]:
    """Scope ``recorder`` as the active recorder for a ``with`` block."""
    previous = set_recorder(recorder)
    try:
        yield recorder
    finally:
        set_recorder(previous)
