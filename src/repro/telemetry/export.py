"""Trace exporters: JSONL event files and a human-readable timeline.

JSONL (one JSON object per line) keeps traces streamable and greppable:

    {"time_s": 0.005, "kind": "probe_tx", "run": "fig16#0", ...}

``read_events_jsonl`` is the exact inverse, so traces round-trip.  The
timeline renderer is what ``repro trace <file>`` prints.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional, TextIO

import numpy as np

from repro.telemetry.events import Event, EventLog


def _plain(value: object) -> object:
    """Degrade numpy scalars/arrays (and containers) to JSON-safe types."""
    if isinstance(value, np.ndarray):
        return [_plain(item) for item in value.tolist()]
    if isinstance(value, np.generic):
        value = value.item()
    if isinstance(value, float):
        if value != value:  # NaN
            return None
        if value in (float("inf"), float("-inf")):
            return "Infinity" if value > 0 else "-Infinity"
        return value
    if isinstance(value, (list, tuple)):
        return [_plain(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _plain(item) for key, item in value.items()}
    if value is None or isinstance(value, (bool, int, str)):
        return value
    return repr(value)


def event_to_jsonable(event: Event) -> Dict[str, object]:
    """One event as a plain JSON-serializable dict."""
    return {key: _plain(value) for key, value in event.to_dict().items()}


def write_events_jsonl(events: Iterable[Event], stream: TextIO) -> int:
    """Write events as JSONL; returns the number of lines written."""
    count = 0
    for event in events:
        stream.write(
            json.dumps(event_to_jsonable(event), allow_nan=False)
        )
        stream.write("\n")
        count += 1
    return count


def read_events_jsonl(stream: TextIO) -> EventLog:
    """Parse a JSONL trace back into an :class:`EventLog`."""
    log = EventLog()
    for line_number, line in enumerate(stream, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as error:
            raise ValueError(
                f"invalid JSONL trace at line {line_number}: {error}"
            ) from None
        log.append(Event.from_dict(payload))
    return log


def _format_field(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    if isinstance(value, (list, tuple)):
        return "[" + ",".join(_format_field(item) for item in value) + "]"
    return str(value)


def render_timeline(
    events: Iterable[Event],
    kind: Optional[str] = None,
    limit: Optional[int] = None,
) -> str:
    """Events as an aligned, per-run timeline (what ``repro trace`` prints).

    ``kind`` filters to one event kind; ``limit`` caps the rendered lines
    *per run* (earliest first), with an elision marker when truncated.
    """
    log = events if isinstance(events, EventLog) else EventLog(events)
    if kind is not None:
        log = log.filter(kind=kind)
    if not len(log):
        return "(empty trace)"
    lines: List[str] = []
    for run, run_log in log.by_run().items():
        run_events = list(run_log)
        lines.append(f"== run {run or '(unscoped)'} — {len(run_events)} events ==")
        shown = run_events if limit is None else run_events[:limit]
        for event in shown:
            fields = " ".join(
                f"{key}={_format_field(value)}"
                for key, value in event.fields.items()
            )
            lines.append(
                f"  t={event.time_s * 1e3:10.3f} ms  {event.kind:<24s} {fields}".rstrip()
            )
        if limit is not None and len(run_events) > limit:
            lines.append(f"  ... {len(run_events) - limit} more")
        counts = ", ".join(
            f"{k}={c}" for k, c in run_log.kinds().items()
        )
        lines.append(f"  [{counts}]")
    return "\n".join(lines)
