"""Counters, gauges, histograms, and timers for the telemetry recorder.

The registry is deliberately tiny: metrics are named scalars the hot
paths bump while a run executes, summarized into plain dicts afterwards.
Histograms keep streaming moments (count/total/min/max) rather than
samples, so a million observations cost four floats.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from types import TracebackType
from typing import Dict, Optional, Type, TypedDict


class MetricsSnapshot(TypedDict):
    """The plain-dict form of a registry (see :meth:`MetricsRegistry.snapshot`)."""

    counters: Dict[str, float]
    gauges: Dict[str, float]
    histograms: Dict[str, Dict[str, float]]


@dataclass
class Counter:
    """A monotonically increasing count."""

    name: str
    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter increment must be >= 0, got {amount!r}")
        self.value += amount


@dataclass
class Gauge:
    """A last-value-wins scalar."""

    name: str
    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


@dataclass
class Histogram:
    """Streaming distribution summary (no samples retained)."""

    name: str
    count: int = 0
    total: float = 0.0
    minimum: float = float("inf")
    maximum: float = float("-inf")

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> Dict[str, float]:
        if not self.count:
            return {"count": 0, "total": 0.0, "min": 0.0, "max": 0.0,
                    "mean": 0.0}
        return {
            "count": self.count,
            "total": self.total,
            "min": self.minimum,
            "max": self.maximum,
            "mean": self.mean,
        }


class _Timer:
    """Context manager feeding elapsed wall seconds into a histogram."""

    __slots__ = ("_histogram", "_started")

    def __init__(self, histogram: Histogram) -> None:
        self._histogram = histogram
        self._started = 0.0

    def __enter__(self) -> "_Timer":
        self._started = time.perf_counter()
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        self._histogram.observe(time.perf_counter() - self._started)


@dataclass
class MetricsRegistry:
    """Named metrics, created on first use."""

    counters: Dict[str, Counter] = field(default_factory=dict)
    gauges: Dict[str, Gauge] = field(default_factory=dict)
    histograms: Dict[str, Histogram] = field(default_factory=dict)

    def counter(self, name: str) -> Counter:
        try:
            return self.counters[name]
        except KeyError:
            metric = self.counters[name] = Counter(name)
            return metric

    def gauge(self, name: str) -> Gauge:
        try:
            return self.gauges[name]
        except KeyError:
            metric = self.gauges[name] = Gauge(name)
            return metric

    def histogram(self, name: str) -> Histogram:
        try:
            return self.histograms[name]
        except KeyError:
            metric = self.histograms[name] = Histogram(name)
            return metric

    def timer(self, name: str) -> _Timer:
        """Time a ``with`` block into the named histogram (seconds)."""
        return _Timer(self.histogram(name))

    def snapshot(self) -> MetricsSnapshot:
        """All metrics as plain nested dicts."""
        return {
            "counters": {n: c.value for n, c in self.counters.items()},
            "gauges": {n: g.value for n, g in self.gauges.items()},
            "histograms": {
                n: h.snapshot() for n, h in self.histograms.items()
            },
        }
