"""Structured link events with simulation-time timestamps.

Everything the maintenance machinery *does* — probes fired, per-beam
powers estimated, blockages detected and cleared, beams re-trained,
tracking realignments, MCS switches — becomes an :class:`Event` on an
:class:`EventLog`.  Events carry the *simulation* clock, not the wall
clock, so a trace lines up exactly with the SNR time series the
simulator records and with the paper's Fig. 16-18 timelines.

Events are plain picklable data: process-pool workers ship their logs
back to the parent through the ensemble executor unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Any,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Tuple,
    Union,
    overload,
)


class EventKind:
    """The event taxonomy (string constants, stable across versions)."""

    #: One or more reference-signal probes hit the air (SSB or CSI-RS).
    PROBE_TX = "probe_tx"
    #: Super-resolved per-beam powers from one maintenance sounding.
    PER_BEAM_POWER_ESTIMATE = "per_beam_power_estimate"
    #: A beam's power collapsed at blockage speed; it was dropped.
    BLOCKAGE_ONSET = "blockage_onset"
    #: A dropped beam's path returned; the beam was restored.
    BLOCKAGE_CLEARED = "blockage_cleared"
    #: A full beam-training episode (establishment or outage fallback).
    BEAM_RETRAIN = "beam_retrain"
    #: The mobility tracker realigned the multi-beam.
    TRACKING_UPDATE = "tracking_update"
    #: The link's decodable MCS changed between samples.
    MCS_SWITCH = "mcs_switch"
    #: One simulated run began / ended.
    RUN_START = "run_start"
    RUN_END = "run_end"
    #: A fault injector fired (probe loss, stuck elements, chaos, ...).
    FAULT_INJECTED = "fault_injected"
    #: A degenerate probe measurement was retried within the budget.
    PROBE_RETRY = "probe_retry"
    #: A consumer dropped to a degraded mode instead of failing.
    FALLBACK_ENGAGED = "fallback_engaged"
    #: The tracking-divergence watchdog forced a full retrain.
    WATCHDOG_TRIP = "watchdog_trip"
    #: The executor re-queued a failed run for another attempt.
    RUN_RETRY = "run_retry"
    #: Synthetic trailer event folding perf counters into a trace (CLI).
    PERF_COUNTERS = "perf_counters"
    #: A cell's slot plan was drawn up (network engine, per cell).
    SLOT_SCHEDULED = "slot_scheduled"
    #: Inter-cell interference was recomputed at an epoch boundary.
    INTERFERENCE_UPDATE = "interference_update"
    #: A user attached to / detached from a serving cell.
    USER_ATTACH = "user_attach"
    USER_DETACH = "user_detach"
    #: The job server accepted (or coalesced) a submission.
    JOB_SUBMITTED = "job_submitted"
    #: A job execution attempt began on a serving worker.
    JOB_STARTED = "job_started"
    #: A failed job was re-queued with backoff for another attempt.
    JOB_RETRIED = "job_retried"
    #: A job (or un-admitted arrival) was shed under overload.
    JOB_SHED = "job_shed"
    #: A job reached a terminal state (succeeded or failed).
    JOB_COMPLETED = "job_completed"

    @classmethod
    def all(cls) -> Tuple[str, ...]:
        return tuple(
            value
            for name, value in vars(cls).items()
            if not name.startswith("_") and isinstance(value, str)
        )


#: Every kind the subsystem itself emits, for validation/filters.
KNOWN_KINDS: Tuple[str, ...] = EventKind.all()


@dataclass(frozen=True)
class Event:
    """One timestamped link event.

    ``time_s`` is simulation time within the run named by ``run``;
    ``fields`` holds the kind-specific payload (plain scalars, lists of
    scalars, or strings — anything JSON-serializable and picklable).
    """

    time_s: float
    kind: str
    run: str = ""
    fields: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.kind:
            raise ValueError("event kind must be non-empty")

    def to_dict(self) -> Dict[str, object]:
        """Flat dict form (stable key order) for JSONL export."""
        payload: Dict[str, object] = {
            "time_s": float(self.time_s),
            "kind": self.kind,
            "run": self.run,
        }
        payload.update(self.fields)
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Event":
        """Inverse of :meth:`to_dict` (unknown keys become fields)."""
        reserved = {"time_s", "kind", "run"}
        return cls(
            time_s=float(payload["time_s"]),
            kind=str(payload["kind"]),
            run=str(payload.get("run", "")),
            fields={
                key: value
                for key, value in payload.items()
                if key not in reserved
            },
        )


class EventLog:
    """An append-only, iterable sequence of events."""

    __slots__ = ("_events",)

    def __init__(self, events: Iterable[Event] = ()) -> None:
        self._events: List[Event] = list(events)

    def append(self, event: Event) -> None:
        self._events.append(event)

    def extend(self, events: Iterable[Event]) -> None:
        self._events.extend(events)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    @overload
    def __getitem__(self, index: int) -> Event: ...

    @overload
    def __getitem__(self, index: slice) -> List[Event]: ...

    def __getitem__(self, index: Union[int, slice]) -> Union[Event, List[Event]]:
        return self._events[index]

    def filter(
        self, kind: Optional[str] = None, run: Optional[str] = None
    ) -> "EventLog":
        """Events matching the given kind and/or run."""
        return EventLog(
            event
            for event in self._events
            if (kind is None or event.kind == kind)
            and (run is None or event.run == run)
        )

    def kinds(self) -> Dict[str, int]:
        """Event counts by kind, in first-seen order."""
        counts: Dict[str, int] = {}
        for event in self._events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts

    def runs(self) -> Tuple[str, ...]:
        """Distinct run labels, in first-seen order."""
        seen: Dict[str, None] = {}
        for event in self._events:
            seen.setdefault(event.run)
        return tuple(seen)

    def by_run(self) -> Dict[str, "EventLog"]:
        """Events grouped by run label, preserving order."""
        groups: Dict[str, EventLog] = {}
        for event in self._events:
            groups.setdefault(event.run, EventLog()).append(event)
        return groups
