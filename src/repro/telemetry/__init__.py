"""Link-event tracing, metrics, and profiling for the reproduction.

Three pieces:

* an **event bus** — typed, simulation-time-stamped :class:`Event`
  records (``probe_tx``, ``blockage_onset``, ``beam_retrain``,
  ``mcs_switch``, ...) collected on an :class:`EventLog`;
* a **metrics registry** — counters, gauges, histograms, and ``timer()``
  context managers, free when telemetry is disabled (the
  :class:`NullRecorder` backs every instrumentation site by default);
* **exporters** — JSONL trace files, the mergeable
  :class:`TelemetrySummary` digest the executor aggregates across pool
  workers, and a human-readable timeline renderer.

Quickstart::

    from repro.telemetry import TelemetryRecorder, use_recorder

    with use_recorder(TelemetryRecorder()) as recorder:
        LinkSimulator(scenario=..., manager=...).run()
    print(recorder.summary().describe())

or from the CLI: ``repro run fig16 --trace out.jsonl`` then
``repro trace out.jsonl``.
"""

from repro.telemetry.events import Event, EventKind, EventLog, KNOWN_KINDS
from repro.telemetry.export import (
    event_to_jsonable,
    read_events_jsonl,
    render_timeline,
    write_events_jsonl,
)
from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.telemetry.recorder import (
    NULL_RECORDER,
    NullRecorder,
    RecorderLike,
    TelemetryRecorder,
    get_recorder,
    set_recorder,
    use_recorder,
)
from repro.telemetry.summary import TelemetrySummary

__all__ = [
    "Event",
    "EventKind",
    "EventLog",
    "KNOWN_KINDS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_RECORDER",
    "NullRecorder",
    "RecorderLike",
    "TelemetryRecorder",
    "TelemetrySummary",
    "get_recorder",
    "set_recorder",
    "use_recorder",
    "event_to_jsonable",
    "read_events_jsonl",
    "render_timeline",
    "write_events_jsonl",
]
