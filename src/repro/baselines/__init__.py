"""Comparison baselines from the paper's evaluation (Section 6.2).

* :class:`~repro.baselines.reactive.ReactiveSingleBeam` — the conventional
  single-beam link with fast reactive re-training on outage (Hassanieh et
  al. style).
* :class:`~repro.baselines.beamspy.BeamSpySingleBeam` — single beam that
  switches to the best alternate direction from its stored spatial profile
  when blocked, without a full re-scan (Sur et al., BeamSpy).
* :class:`~repro.baselines.widebeam.WideBeam` — a widened sector beam that
  trades gain for angular robustness.
* :class:`~repro.baselines.oracle.OracleBeam` — the per-antenna MRT
  upper bound with genie channel knowledge.

All managers share the informal protocol the simulator drives:
``establish(channel, time_s)``, ``step(channel, time_s)``,
``current_weights()``, plus ``budget`` and ``training_windows`` for
overhead/reliability accounting.
"""

from repro.baselines.reactive import ReactiveSingleBeam
from repro.baselines.beamspy import BeamSpySingleBeam
from repro.baselines.widebeam import WideBeam
from repro.baselines.oracle import OracleBeam

__all__ = [
    "ReactiveSingleBeam",
    "BeamSpySingleBeam",
    "WideBeam",
    "OracleBeam",
]
