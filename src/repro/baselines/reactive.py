"""Reactive single-beam baseline.

The conventional mmWave link: one directional beam toward the strongest
trained direction, no proactive maintenance.  When the SNR collapses below
the outage threshold the baseline *reacts* with a fresh (fast,
logarithmic-probe) beam-training sweep — during which the link carries no
data.  This is the "Reactive baseline" of Fig. 18, modelled on fast
beam-alignment systems.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.arrays.geometry import UniformLinearArray
from repro.arrays.steering import single_beam_weights
from repro.channel.geometric import GeometricChannel
from repro.phy.mcs import OUTAGE_SNR_DB
from repro.phy.ofdm import ChannelSounder
from repro.phy.reference_signals import ProbeBudget, ssb_duration_s
from repro.telemetry import EventKind, get_recorder


def emit_retrain(manager, time_s: float, num_probes: int) -> None:
    """Telemetry hook shared by every baseline's establish path."""
    recorder = get_recorder()
    if recorder.enabled:
        recorder.emit(
            EventKind.BEAM_RETRAIN,
            time_s,
            manager=type(manager).__name__,
            num_probes=int(num_probes),
            round=manager.training_rounds,
        )
        recorder.counter("maintenance.retrains").inc()


@dataclass(frozen=True)
class BaselineReport:
    """Per-step observation shared by all baseline managers."""

    time_s: float
    snr_db: float
    action: str
    probes_used: int


@dataclass
class ReactiveSingleBeam:
    """Single beam + reactive re-training on outage.

    ``reaction_delay_s`` models the end-to-end latency of real beam-failure
    recovery — outage declaration timers, waiting for the next SSB training
    opportunity, and the RACH exchange — which in deployed NR systems adds
    up to on the order of 100 ms.  The reactive system is what it is
    *because* this delay exists: it cannot act before the outage has been
    detected and the recovery machinery has spun up.
    """

    array: UniformLinearArray
    sounder: ChannelSounder
    trainer: object
    #: Detection + recovery latency before re-training begins.
    reaction_delay_s: float = 100e-3
    budget: ProbeBudget = field(default_factory=ProbeBudget)

    beam_angle_rad: Optional[float] = field(default=None, init=False)
    training_rounds: int = field(default=0, init=False)
    training_windows: List[Tuple[float, float]] = field(
        default_factory=list, init=False
    )
    _outage_since: Optional[float] = field(default=None, init=False)

    def establish(self, channel: GeometricChannel, time_s: float = 0.0) -> float:
        """Train and point the single beam at the strongest direction."""
        result = self.trainer.train(channel, budget=self.budget, time_s=time_s)
        self.training_rounds += 1
        self.training_windows.append(
            (time_s, result.num_probes * ssb_duration_s(self.budget.numerology))
        )
        self.beam_angle_rad = result.best_angle_rad
        self._outage_since = None
        emit_retrain(self, time_s, result.num_probes)
        return self.beam_angle_rad

    def current_weights(self) -> np.ndarray:
        if self.beam_angle_rad is None:
            raise RuntimeError("call establish() first")
        return single_beam_weights(self.array, self.beam_angle_rad)

    def link_snr_db(self, channel: GeometricChannel) -> float:
        return self.sounder.link_snr_db(channel, self.current_weights())

    def link_snr_db_batch(self, channels) -> np.ndarray:
        return self.sounder.link_snr_db_batch(channels, self.current_weights())

    def step(self, channel: GeometricChannel, time_s: float) -> BaselineReport:
        """Observe the link; retrain only after outage + recovery latency."""
        snr_db = self.link_snr_db(channel)
        if snr_db >= OUTAGE_SNR_DB:
            self._outage_since = None
            return BaselineReport(
                time_s=time_s, snr_db=snr_db, action="none", probes_used=0
            )
        if self._outage_since is None:
            self._outage_since = time_s
        if time_s - self._outage_since >= self.reaction_delay_s:
            self.establish(channel, time_s=time_s)
            return BaselineReport(
                time_s=time_s, snr_db=snr_db, action="retrain", probes_used=0
            )
        return BaselineReport(
            time_s=time_s, snr_db=snr_db, action="outage_wait", probes_used=0
        )
