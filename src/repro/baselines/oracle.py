"""Oracle (genie) MRT baseline.

The channel-dependent beam the paper calls the "oracle": per-antenna
maximum-ratio transmission ``h* / ||h||`` computed from perfect channel
knowledge, refreshed every step with no probing cost.  Physically this
requires per-element channel estimation whose overhead scales with the
array size (ACO-style, ~5N probes) — which is exactly why mmReliable's
3-beam approximation at fixed overhead is the interesting result
(Fig. 15d: 3 beams reach ~92% of oracle SNR gain).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.arrays.geometry import UniformLinearArray
from repro.baselines.reactive import BaselineReport
from repro.channel.geometric import GeometricChannel
from repro.core.multibeam import optimal_mrt_weights
from repro.phy.ofdm import ChannelSounder
from repro.phy.reference_signals import ProbeBudget


@dataclass
class OracleBeam:
    """Genie MRT beamforming with zero probing overhead."""

    array: UniformLinearArray
    sounder: ChannelSounder
    budget: ProbeBudget = field(default_factory=ProbeBudget)

    _weights: Optional[np.ndarray] = field(default=None, init=False)
    training_rounds: int = field(default=0, init=False)
    training_windows: List[Tuple[float, float]] = field(
        default_factory=list, init=False
    )

    def establish(self, channel: GeometricChannel, time_s: float = 0.0) -> None:
        self._weights = optimal_mrt_weights(channel)

    def current_weights(self) -> np.ndarray:
        if self._weights is None:
            raise RuntimeError("call establish() first")
        return self._weights

    def link_snr_db(self, channel: GeometricChannel) -> float:
        return self.sounder.link_snr_db(channel, self.current_weights())

    def link_snr_db_batch(self, channels) -> np.ndarray:
        return self.sounder.link_snr_db_batch(channels, self.current_weights())

    def step(self, channel: GeometricChannel, time_s: float) -> BaselineReport:
        """Refresh the genie weights against the instantaneous channel."""
        self._weights = optimal_mrt_weights(channel)
        return BaselineReport(
            time_s=time_s,
            snr_db=self.link_snr_db(channel),
            action="genie_refresh",
            probes_used=0,
        )
