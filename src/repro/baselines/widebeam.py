"""Wide-beam baseline.

A sector beam wide enough to tolerate user motion without tracking: fewer
active elements spread the main lobe, trading peak gain (and therefore
SNR/throughput) for angular robustness.  This is the "widebeam" baseline
whose reliability tops out around 0.5 in Fig. 18(b): it avoids
misalignment outages but its lower SNR sits much closer to the outage
threshold, so blockage still takes it down and its throughput never
reaches the directional systems'.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.arrays.geometry import UniformLinearArray
from repro.baselines.reactive import BaselineReport, emit_retrain
from repro.channel.geometric import GeometricChannel
from repro.phy.mcs import OUTAGE_SNR_DB
from repro.phy.ofdm import ChannelSounder
from repro.phy.reference_signals import ProbeBudget, ssb_duration_s


@dataclass
class WideBeam:
    """A static widened sector beam pointed at the trained direction."""

    array: UniformLinearArray
    sounder: ChannelSounder
    trainer: object
    #: Elements kept active; fewer elements -> wider (and weaker) beam.
    active_elements: int = 4
    budget: ProbeBudget = field(default_factory=ProbeBudget)

    beam_angle_rad: Optional[float] = field(default=None, init=False)
    training_rounds: int = field(default=0, init=False)
    training_windows: List[Tuple[float, float]] = field(
        default_factory=list, init=False
    )
    _bad_streak: int = field(default=0, init=False)
    outage_patience: int = 3

    def __post_init__(self) -> None:
        if not 1 <= self.active_elements <= self.array.num_elements:
            raise ValueError(
                f"active_elements must be in [1, {self.array.num_elements}], "
                f"got {self.active_elements!r}"
            )

    def establish(self, channel: GeometricChannel, time_s: float = 0.0) -> float:
        result = self.trainer.train(channel, budget=self.budget, time_s=time_s)
        self.training_rounds += 1
        self.training_windows.append(
            (time_s, result.num_probes * ssb_duration_s(self.budget.numerology))
        )
        self.beam_angle_rad = result.best_angle_rad
        self._bad_streak = 0
        emit_retrain(self, time_s, result.num_probes)
        return self.beam_angle_rad

    def current_weights(self) -> np.ndarray:
        if self.beam_angle_rad is None:
            raise RuntimeError("call establish() first")
        weights = np.zeros(self.array.num_elements, dtype=complex)
        n = np.arange(self.active_elements)
        weights[: self.active_elements] = np.exp(
            2j
            * np.pi
            * self.array.spacing_wavelengths
            * n
            * np.sin(self.beam_angle_rad)
        )
        return weights / np.sqrt(self.active_elements)

    def link_snr_db(self, channel: GeometricChannel) -> float:
        return self.sounder.link_snr_db(channel, self.current_weights())

    def link_snr_db_batch(self, channels) -> np.ndarray:
        return self.sounder.link_snr_db_batch(channels, self.current_weights())

    def step(self, channel: GeometricChannel, time_s: float) -> BaselineReport:
        """Mostly static; retrains only after a sustained outage."""
        snr_db = self.link_snr_db(channel)
        if snr_db < OUTAGE_SNR_DB:
            self._bad_streak += 1
        else:
            self._bad_streak = 0
        if self._bad_streak >= self.outage_patience:
            self.establish(channel, time_s=time_s)
            return BaselineReport(
                time_s=time_s, snr_db=snr_db, action="retrain", probes_used=0
            )
        return BaselineReport(
            time_s=time_s, snr_db=snr_db, action="none", probes_used=0
        )
