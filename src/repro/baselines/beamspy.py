"""BeamSpy-style single-beam baseline.

BeamSpy (Sur et al., NSDI'16) avoids a full re-scan on blockage by
exploiting the *spatial channel profile* captured at training time: when
the serving beam degrades, it switches directly to the best alternate
direction recorded in the profile.  It is still a single-beam system — it
reacts after the drop, loses the switching time, and if the stored
alternate is stale (the user moved) it must fall back to training.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.arrays.geometry import UniformLinearArray
from repro.arrays.steering import single_beam_weights
from repro.baselines.reactive import BaselineReport, emit_retrain
from repro.beamtraining.base import top_k_directions
from repro.channel.geometric import GeometricChannel
from repro.phy.mcs import OUTAGE_SNR_DB
from repro.phy.ofdm import ChannelSounder
from repro.phy.reference_signals import ProbeBudget, ProbeKind, ssb_duration_s


@dataclass
class BeamSpySingleBeam:
    """Single beam with profile-based blockage fallback."""

    array: UniformLinearArray
    sounder: ChannelSounder
    trainer: object
    #: How many alternate directions the spatial profile retains.
    profile_size: int = 3
    min_separation_rad: float = np.deg2rad(10.0)
    #: Outage-detection latency before the profile fallback fires.  Much
    #: shorter than full beam-failure recovery (that is BeamSpy's selling
    #: point) but still reactive — the drop must be observed first.
    reaction_delay_s: float = 20e-3
    budget: ProbeBudget = field(default_factory=ProbeBudget)
    _outage_since: object = field(default=None, init=False)

    beam_angle_rad: Optional[float] = field(default=None, init=False)
    profile: List[Tuple[float, float]] = field(default_factory=list, init=False)
    training_rounds: int = field(default=0, init=False)
    training_windows: List[Tuple[float, float]] = field(
        default_factory=list, init=False
    )

    def establish(self, channel: GeometricChannel, time_s: float = 0.0) -> float:
        """Train, keep the spatial profile, serve on the strongest beam."""
        result = self.trainer.train(channel, budget=self.budget, time_s=time_s)
        self.training_rounds += 1
        self.training_windows.append(
            (time_s, result.num_probes * ssb_duration_s(self.budget.numerology))
        )
        angles, powers = top_k_directions(
            result, self.profile_size, self.min_separation_rad
        )
        self.profile = list(zip(angles, powers))
        self.beam_angle_rad = angles[0]
        self._outage_since = None
        emit_retrain(self, time_s, result.num_probes)
        return self.beam_angle_rad

    def current_weights(self) -> np.ndarray:
        if self.beam_angle_rad is None:
            raise RuntimeError("call establish() first")
        return single_beam_weights(self.array, self.beam_angle_rad)

    def link_snr_db(self, channel: GeometricChannel) -> float:
        return self.sounder.link_snr_db(channel, self.current_weights())

    def link_snr_db_batch(self, channels) -> np.ndarray:
        return self.sounder.link_snr_db_batch(channels, self.current_weights())

    def step(self, channel: GeometricChannel, time_s: float) -> BaselineReport:
        """Serve; on outage, hop through the stored profile, then retrain."""
        snr_db = self.link_snr_db(channel)
        if snr_db >= OUTAGE_SNR_DB:
            self._outage_since = None
            return BaselineReport(
                time_s=time_s, snr_db=snr_db, action="none", probes_used=0
            )
        if self._outage_since is None:
            self._outage_since = time_s
        if time_s - self._outage_since < self.reaction_delay_s:
            return BaselineReport(
                time_s=time_s, snr_db=snr_db, action="outage_wait",
                probes_used=0,
            )
        # Blocked: try the stored alternates in decreasing trained power.
        probes = 0
        for angle, _power in sorted(self.profile, key=lambda ap: -ap[1]):
            if angle == self.beam_angle_rad:
                continue
            probes += 1
            self.budget.charge(ProbeKind.CSI_RS, time_s=time_s, count=1)
            candidate = single_beam_weights(self.array, angle)
            estimate = self.sounder.sound(channel, candidate, time_s=time_s)
            candidate_snr = self.sounder.config.snr_db(estimate.mean_power)
            if candidate_snr >= OUTAGE_SNR_DB:
                self.beam_angle_rad = angle
                self._outage_since = None
                return BaselineReport(
                    time_s=time_s,
                    snr_db=snr_db,
                    action="profile_switch",
                    probes_used=probes,
                )
        # Profile exhausted (stale after mobility): full retrain.
        self.establish(channel, time_s=time_s)
        return BaselineReport(
            time_s=time_s, snr_db=snr_db, action="retrain", probes_used=probes
        )
