"""Bench: the network engine at scale — 4 cells x 64 users.

Tracks the cost of one full ``NetworkSimulator.run`` at the largest
configuration the test matrix exercises (4 cells, 64 users, short
horizon so the bench stays wall-time bounded), plus the per-component
split the network layer adds on top of the per-user links: scheduling,
interference epochs, and metric aggregation.  Headline throughput,
reliability, and fairness land in ``extra_info`` so the
``BENCH_*.json`` history shows capacity regressions, not just timing.
"""

from repro.network import NetworkScenario, NetworkSimulator, row_of_cells

CELLS = 4
USERS = 64
DURATION_S = 0.05


def make_scenario() -> NetworkScenario:
    return NetworkScenario(
        cells=row_of_cells(CELLS),
        num_users=USERS,
        duration_s=DURATION_S,
    )


def test_network_scale_4x64(benchmark, once):
    scenario = make_scenario()
    trace = once(
        benchmark,
        lambda: NetworkSimulator(scenario=scenario, seed=0).run(),
    )
    metrics = trace.metrics()

    # Structural sanity: everyone simulated, interference evaluated.
    assert metrics.num_users == USERS
    assert len(trace.plans) == CELLS
    assert trace.penalties_db.shape[0] == USERS
    assert 0.0 < metrics.reliability <= 1.0
    assert metrics.cell_throughput_bps > 0.0
    # Round-robin scheduling keeps the cell fair even at 64 users.
    assert metrics.fairness > 0.9

    benchmark.extra_info["cells"] = CELLS
    benchmark.extra_info["users"] = USERS
    benchmark.extra_info["duration_s"] = DURATION_S
    benchmark.extra_info["cell_throughput_gbps"] = round(
        metrics.cell_throughput_bps / 1e9, 3
    )
    benchmark.extra_info["reliability"] = round(metrics.reliability, 4)
    benchmark.extra_info["fairness"] = round(metrics.fairness, 4)
    benchmark.extra_info["probe_slots_denied"] = metrics.probe_slots_denied
