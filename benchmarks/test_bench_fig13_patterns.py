"""Bench: Fig. 13(d) — multi-beam pattern fidelity on real hardware control."""

import pytest

from repro.experiments import fig13_patterns


def test_fig13d_pattern_fidelity(benchmark, once, capsys):
    comparisons = once(
        benchmark,
        lambda: {
            k: fig13_patterns.run_pattern_comparison(num_beams=k)
            for k in (2, 3)
        },
    )
    for comparison in comparisons.values():
        # Lobes land where the theory puts them...
        for error_deg in comparison.lobe_angle_errors_deg():
            assert error_deg < 0.5
        # ...at the theoretical levels...
        for error_db in comparison.lobe_level_errors_db():
            assert error_db < 0.5
        # ...with sub-dB pattern agreement across the main lobes.
        assert comparison.mainlobe_rmse_db() < 0.5
    # Coarse 2-bit hardware visibly distorts (the contrast that makes
    # 6-bit control worth having).
    coarse = fig13_patterns.run_pattern_comparison(num_beams=2, phase_bits=2)
    assert coarse.mainlobe_rmse_db() > comparisons[2].mainlobe_rmse_db()
    with capsys.disabled():
        print()
        print(fig13_patterns.report(comparisons))
