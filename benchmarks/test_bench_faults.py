"""Bench: fault-injection overhead and the chaos sweep.

Two contracts worth tracking over time:

* **Free when off** — a zero-rate campaign never draws randomness, so a
  run under an all-zero injector must be bitwise identical to a run with
  no injector, and the injector's disabled path must cost a negligible
  fraction of the run.
* **Chaos throughput** — the fault_tolerance sweep (the reliability vs
  fault-rate curve) at a reduced scale, timed, with the headline numbers
  (mmReliable vs reactive reliability at the top rate, total RunFailures)
  recorded in ``extra_info`` so regressions in graceful degradation show
  up in the ``BENCH_*.json`` history.
"""

import time
from functools import partial

from repro.experiments import fault_tolerance
from repro.experiments.common import make_manager
from repro.experiments.fig18_end2end import _mobile_scenario
from repro.faults import FaultInjector, FaultSpec, install_fault_injector
from repro.sim.link import LinkSimulator

ZERO_CAMPAIGN = (
    FaultSpec(kind="probe_loss", rate=0.0),
    FaultSpec(kind="probe_corruption", rate=0.0),
    FaultSpec(kind="stuck_elements", rate=0.0),
    FaultSpec(kind="feedback_dropout", rate=0.0),
)


def make_sim(seed=0, duration=0.25, faults=None):
    simulator = LinkSimulator(
        scenario=_mobile_scenario(
            seed, speed_mps=1.5, blockage_depth_db=30.0, distance_m=25.0
        ),
        manager=make_manager("mmreliable", seed),
        duration_s=duration,
    )
    if faults is not None:
        install_fault_injector(
            simulator.manager, FaultInjector(seed=seed, specs=faults)
        )
    return simulator


def test_zero_rate_injector_is_free(benchmark, once):
    started = time.perf_counter()
    plain = make_sim().run()
    plain_wall_s = time.perf_counter() - started

    injected = once(
        benchmark, lambda: make_sim(faults=ZERO_CAMPAIGN).run()
    )
    injected_wall_s = benchmark.stats.stats.mean

    # The bitwise-identity contract: all-zero rates never draw, so the
    # sounder's RNG stream — and therefore the physics — is untouched.
    assert (injected.snr_db == plain.snr_db).all()
    assert injected.actions == plain.actions

    benchmark.extra_info["plain_wall_s"] = round(plain_wall_s, 4)
    benchmark.extra_info["injected_wall_s"] = round(injected_wall_s, 4)


def test_fault_tolerance_sweep(benchmark, once):
    sweep = once(
        benchmark,
        partial(
            fault_tolerance.run_fault_rate_sweep,
            rates=(0.0, 0.3),
            seeds=range(3),
            duration_s=0.25,
        ),
    )
    print()
    print(fault_tolerance.report(sweep))

    curves = sweep["curves"]
    top = {system: points[-1] for system, points in curves.items()}
    # Graceful degradation: chaos costs reliability but never a run.
    total_failures = sum(
        p["failed_runs"] for points in curves.values() for p in points
    )
    assert total_failures == 0
    assert top["mmreliable"]["reliability"] > top["reactive"]["reliability"]

    benchmark.extra_info["mmreliable_rel_at_0.3"] = round(
        top["mmreliable"]["reliability"], 4
    )
    benchmark.extra_info["reactive_rel_at_0.3"] = round(
        top["reactive"]["reliability"], 4
    )
    benchmark.extra_info["total_run_failures"] = total_failures
