"""Bench: Fig. 16 — blockage resilience time series."""

from repro.experiments import fig16_blockage


def test_fig16_walking_blocker(benchmark, once, capsys):
    series = once(benchmark, fig16_blockage.run_walking_blocker)
    # Paper shape: single-beam LOS blockage costs ~26 dB and outages the
    # link; the multi-beam dips far less and never goes down.
    assert series.single_beam_max_drop_db > 18.0
    assert series.multibeam_max_drop_db < series.single_beam_max_drop_db
    assert series.multibeam_max_drop_db < 15.0
    assert series.single_beam_outage_ms > 100.0
    assert series.multibeam_outage_ms == 0.0
    with capsys.disabled():
        print()
        print(fig16_blockage.report(series))
