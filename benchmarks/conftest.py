"""Shared benchmark plumbing.

Each benchmark module regenerates one paper table/figure.  The heavy
experiment functions run once per benchmark (``pedantic`` with a single
round) — the timing numbers then reflect the cost of regenerating the
figure, and the printed report carries the reproduced rows/series.
"""

import pytest


def run_once(benchmark, func, *args, **kwargs):
    """Run ``func`` exactly once under the benchmark clock."""
    return benchmark.pedantic(
        func, args=args, kwargs=kwargs, rounds=1, iterations=1,
        warmup_rounds=0,
    )


@pytest.fixture
def once():
    return run_once
