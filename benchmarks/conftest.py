"""Shared benchmark plumbing.

Each benchmark module regenerates one paper table/figure.  The heavy
experiment functions run under ``pedantic`` with a small fixed round
count (``BENCH_ROUNDS``) — enough repetitions that the recorded mean is
not one scheduler hiccup, while the printed report still carries the
reproduced rows/series.  The committed ``BENCH_baseline.json`` is
regenerated with the same settings, so means are comparable.
"""

import pytest

#: Rounds per benchmark: means in BENCH_baseline.json average this many
#: repetitions (the baseline-refresh checklist requires >= 3).
BENCH_ROUNDS = 3


def run_once(benchmark, func, *args, **kwargs):
    """Run ``func`` once per round under the benchmark clock."""
    return benchmark.pedantic(
        func, args=args, kwargs=kwargs, rounds=BENCH_ROUNDS, iterations=1,
        warmup_rounds=0,
    )


@pytest.fixture
def once():
    return run_once
