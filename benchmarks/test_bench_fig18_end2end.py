"""Bench: Fig. 18 — end-to-end comparison against baselines."""

import pytest

from repro.experiments import fig18_end2end


def test_fig18a_static_with_blockers(benchmark, once, capsys):
    static = once(
        benchmark, fig18_end2end.run_static_blockers, (0, 1, 2), range(3)
    )
    # Paper shape: mmReliable's throughput barely drops with blockers
    # near the beams; the single-beam baselines drop much more.
    mmr = static["mmreliable-static"]
    for baseline in ("beamspy", "reactive"):
        row = static[baseline]
        mmr_drop = 1 - mmr[2] / mmr[0]
        baseline_drop = 1 - row[2] / row[0]
        assert mmr_drop < baseline_drop
    assert mmr[2] > 0.7 * mmr[0]


def test_fig18bc_mobile_reliability_and_product(benchmark, once, capsys):
    summaries = once(
        benchmark, fig18_end2end.run_mobile_ensembles, range(12)
    )
    mmr = summaries["mmreliable"]
    # Paper: mmReliable reliability close to 1 (median 1.0).
    assert mmr.median_reliability() > 0.93
    # Ordering: mmReliable beats every real baseline on reliability and
    # on the throughput x reliability product; the oracle bounds all.
    for baseline in ("reactive", "beamspy", "widebeam"):
        assert mmr.median_reliability() >= summaries[
            baseline
        ].median_reliability() - 1e-9
        assert mmr.mean_product() > summaries[baseline].mean_product()
    assert summaries["oracle"].mean_product() >= mmr.mean_product()
    # Widebeam pays for its robustness in throughput (paper Fig. 18c).
    assert summaries["widebeam"].mean_throughput_bps() == min(
        s.mean_throughput_bps() for s in summaries.values()
    )
    # T x R product gain over the reactive baseline (paper: 2.3x; the
    # reproduction's reactive recovers more gracefully -> smaller but
    # clear gain).
    gain = fig18_end2end.product_improvement(summaries, "reactive")
    assert gain > 1.25
    with capsys.disabled():
        print()
        for summary in summaries.values():
            print("  " + summary.describe())
        print(f"  T x R gain over reactive: {gain:.2f}x (paper: 2.3x)")


def test_fig18d_probing_overhead(benchmark, once, capsys):
    overhead = once(benchmark, fig18_end2end.run_probing_overhead)
    # Paper numbers: 3 ms at N=8 rising to 6 ms at N=64 for 5G NR
    # scanning; flat 0.4 / 0.6 ms for mmReliable 2- and 3-beam.
    nr = overhead["5G NR (log scan)"]
    assert nr[8] == pytest.approx(3.0, abs=0.01)
    assert nr[64] == pytest.approx(6.0, abs=0.01)
    two = overhead["mmReliable 2-beam"]
    three = overhead["mmReliable 3-beam"]
    assert two[8] == two[64] == pytest.approx(0.375, abs=0.01)
    assert three[8] == three[64] == pytest.approx(0.625, abs=0.01)
    for n in (8, 16, 32, 64):
        assert three[n] < nr[n]
    with capsys.disabled():
        print()
        print("Fig. 18(d) overhead (ms):", {k: v for k, v in overhead.items()})
