"""Bench: ensemble executor throughput, serial vs parallel.

Records the wall time of a 16-seed Fig.-18-style ensemble on the serial
path and on a 4-worker process pool, so ``BENCH_*.json`` tracks ensemble
throughput over time (``extra_info`` carries both wall times and the
pool utilization).  On a single-core runner the pool adds overhead
rather than speedup — the numbers are recorded, not asserted — but the
parallel path must reproduce the serial metrics bitwise.
"""

import time
from functools import partial

from repro.experiments.common import make_manager
from repro.experiments.fig18_end2end import _mobile_scenario
from repro.sim.executor import EnsembleSpec, execute_ensemble

SPEC = EnsembleSpec(
    label="mmreliable",
    scenario_factory=partial(
        _mobile_scenario, speed_mps=1.5, blockage_depth_db=30.0,
        distance_m=25.0,
    ),
    manager_factory=partial(make_manager, "mmreliable"),
    seeds=tuple(range(16)),
    duration_s=0.25,
)


def test_executor_serial_vs_parallel(benchmark, once, capsys):
    started = time.perf_counter()
    serial = execute_ensemble(SPEC)
    serial_wall_s = time.perf_counter() - started

    parallel = once(
        benchmark, execute_ensemble, SPEC.with_options(workers=4)
    )

    # The whole point of the pool: identical per-seed metrics.
    assert parallel.metrics == serial.metrics
    assert parallel.stats.backend == "process"
    assert parallel.stats.total_runs == 16
    assert parallel.stats.failed_runs == 0

    benchmark.extra_info["serial_wall_s"] = round(serial_wall_s, 3)
    benchmark.extra_info["parallel_wall_s"] = round(
        parallel.stats.wall_time_s, 3
    )
    benchmark.extra_info["parallel_utilization"] = round(
        parallel.stats.utilization, 3
    )
    benchmark.extra_info["runs_per_second_serial"] = round(
        serial.stats.runs_per_second, 2
    )
    benchmark.extra_info["runs_per_second_parallel"] = round(
        parallel.stats.runs_per_second, 2
    )
    with capsys.disabled():
        print()
        print("  serial:  ", serial.stats.describe())
        print("  parallel:", parallel.stats.describe())
