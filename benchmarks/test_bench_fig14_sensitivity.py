"""Bench: Fig. 14 — sensitivity of multi-beam gain to estimation errors."""

import numpy as np
import pytest

from repro.experiments import fig14_sensitivity


def test_fig14_sensitivity_grid(benchmark, once, capsys):
    grid = once(benchmark, fig14_sensitivity.run_sensitivity_grid)
    # Paper landmark: peak gain 1.76 dB for the -3 dB / -40 deg channel.
    assert grid.peak_gain_db == pytest.approx(1.76, abs=0.15)
    # Tolerant to phase error: gain stays positive out to ~+/-75 deg.
    tolerance_deg = np.rad2deg(grid.phase_tolerance_rad())
    assert 55.0 <= tolerance_deg <= 95.0
    # A 180-degree phase error is catastrophic (far below single beam).
    assert np.min(grid.gain_db) < -10.0
    # Amplitude tolerance: even a -20 dB under-weighted second beam never
    # drops below the single-beam baseline at the correct phase.
    phase_index = int(
        np.argmin(
            np.abs(
                np.angle(
                    np.exp(
                        1j
                        * (
                            grid.applied_phases_rad
                            - fig14_sensitivity.CHANNEL_SIGMA_RAD
                        )
                    )
                )
            )
        )
    )
    assert np.all(grid.gain_db[:, phase_index] > -0.5)
    with capsys.disabled():
        print()
        print(fig14_sensitivity.report(grid))
