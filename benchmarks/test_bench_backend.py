"""Bench: compute-backend kernel throughput, per registered backend.

Parametrized over every *available* backend so `scripts/bench_compare.py`
can gate both the NumPy reference and the compiled backend against the
committed baseline.  In environments without numba only the numpy leg
runs (the numba leg is skipped, and bench_compare tolerates the
one-sided baseline entries).
"""

import numpy as np
import pytest

from repro.perf.backend import available_backends, dispatch, use_backend

BACKENDS = [
    pytest.param(
        name,
        marks=()
        if available
        else pytest.mark.skip(reason=f"backend {name!r} unavailable"),
    )
    for name, available in available_backends().items()
]


def _superres_workload():
    rng = np.random.default_rng(11)
    num_candidates, num_taps, num_beams = 64, 128, 3
    delays = rng.uniform(0.0, 100e-9, size=(num_candidates, num_beams))
    cir = rng.standard_normal(num_taps) + 1j * rng.standard_normal(num_taps)
    return delays, cir


@pytest.mark.parametrize("backend_name", BACKENDS)
def test_backend_stacked_superres_solve(benchmark, once, backend_name):
    """Dictionary build + batched candidate solve, the fig18 hot loop."""
    delays, cir = _superres_workload()

    def solve():
        with use_backend(backend_name):
            dictionaries = dispatch(
                "stacked_dirichlet_dictionaries", delays, 400e6, cir.size
            )
            return dispatch(
                "stacked_candidate_solve", dictionaries, cir, 1e-3
            )

    alphas, residuals, objectives = once(benchmark, solve)
    assert alphas.shape == delays.shape
    assert np.all(residuals >= 0.0)
    assert np.all(objectives >= residuals ** 2 * (1.0 - 1e-9))


@pytest.mark.parametrize("backend_name", BACKENDS)
def test_backend_batch_channel_sampling(benchmark, once, backend_name):
    """Batched beamformed frequency response, the link-SNR hot loop."""
    rng = np.random.default_rng(12)
    num_samples, num_paths, num_elements, num_freqs = 512, 3, 16, 64
    steering = np.exp(
        1j * rng.uniform(0.0, 2.0 * np.pi, (num_samples, num_paths, num_elements))
    )
    rotation = np.exp(
        1j * rng.uniform(0.0, 2.0 * np.pi, (num_samples, num_freqs, num_paths))
    )
    gains = (
        rng.standard_normal((num_samples, num_paths))
        + 1j * rng.standard_normal((num_samples, num_paths))
    )
    weights = np.exp(1j * rng.uniform(0.0, 2.0 * np.pi, num_elements))

    def sample():
        with use_backend(backend_name):
            return dispatch(
                "batch_frequency_response", steering, rotation, gains, weights
            )

    response = once(benchmark, sample)
    assert response.shape == (num_samples, num_freqs)
    assert np.all(np.isfinite(response))
