"""Bench: telemetry overhead, instrumented vs null recorder.

The telemetry contract is "free when off": every instrumentation site
reduces to one module-global load plus one attribute check when the null
recorder is installed.  This benchmark measures that disabled-path cost
directly (a tight loop over ``get_recorder().enabled``), counts how many
instrumentation hits a representative traced run actually performs, and
bounds the implied disabled overhead at < 5% of the run's wall time.
``extra_info`` records the enabled/disabled wall times and the per-check
cost so regressions show up in ``BENCH_*.json`` history.
"""

import time

from repro.arrays import UniformLinearArray, uniform_codebook
from repro.beamtraining import ExhaustiveTrainer
from repro.core.maintenance import MultiBeamManager
from repro.phy.ofdm import ChannelSounder, OfdmConfig
from repro.sim.link import LinkSimulator
from repro.sim.scenarios import indoor_two_path_scenario
from repro.telemetry import TelemetryRecorder, get_recorder, use_recorder

ARRAY = UniformLinearArray(num_elements=8)


def make_sim(seed=0, duration=0.25):
    sounder = ChannelSounder(
        config=OfdmConfig(bandwidth_hz=400e6, num_subcarriers=64),
        rng=seed,
    )
    trainer = ExhaustiveTrainer(
        codebook=uniform_codebook(ARRAY, 17), sounder=sounder
    )
    manager = MultiBeamManager(
        array=ARRAY, sounder=sounder, trainer=trainer, num_beams=2
    )
    return LinkSimulator(
        scenario=indoor_two_path_scenario(ARRAY),
        manager=manager,
        duration_s=duration,
    )


def _disabled_check_cost_s(iterations=1_000_000):
    """Per-call cost of the disabled-path guard, averaged over a loop."""
    started = time.perf_counter()
    for _ in range(iterations):
        recorder = get_recorder()
        if recorder.enabled:  # pragma: no cover - telemetry is off here
            recorder.emit("probe_tx", 0.0)
    return (time.perf_counter() - started) / iterations


def test_telemetry_overhead(benchmark, once):
    # Reference: an untraced run under the null recorder.
    started = time.perf_counter()
    plain = make_sim().run()
    disabled_wall_s = time.perf_counter() - started

    # The traced run, under the benchmark clock, counting every event
    # (a lower bound on instrumentation-site hits).
    recorder = TelemetryRecorder()

    def traced_run():
        with use_recorder(recorder):
            return make_sim().run()

    traced = once(benchmark, traced_run)
    enabled_wall_s = benchmark.stats.stats.mean
    num_events = len(recorder.events)

    # Tracing never perturbs the simulated numbers.
    assert (traced.snr_db == plain.snr_db).all()
    assert traced.actions == plain.actions

    # The disabled path is a global load + attribute check per site;
    # bound its aggregate cost over this run's hit count at < 5% of the
    # untraced wall time.
    per_check_s = _disabled_check_cost_s()
    overhead_fraction = num_events * per_check_s / disabled_wall_s
    assert overhead_fraction < 0.05, (
        f"{num_events} instrumentation hits x {per_check_s:.2e}s "
        f"= {overhead_fraction:.2%} of the untraced run"
    )

    benchmark.extra_info["disabled_wall_s"] = round(disabled_wall_s, 4)
    benchmark.extra_info["enabled_wall_s"] = round(enabled_wall_s, 4)
    benchmark.extra_info["num_events"] = num_events
    benchmark.extra_info["disabled_check_ns"] = round(per_check_s * 1e9, 2)
    benchmark.extra_info["disabled_overhead_fraction"] = round(
        overhead_fraction, 6
    )
