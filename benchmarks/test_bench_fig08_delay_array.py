"""Bench: Fig. 7/8 — delay phased array band response."""

import numpy as np

from repro.experiments import fig08_delay_array


def test_fig08_band_responses(benchmark, once, capsys):
    result = once(benchmark, fig08_delay_array.run_band_responses)
    # Paper shape: delay-optimized response flat; uncompensated notches.
    for spread in ("5ns", "10ns"):
        compensated = result.ripple_db(f"mmreliable-delay-optimized-{spread}")
        uncompensated = result.ripple_db(f"multibeam-uncompensated-{spread}")
        single = result.ripple_db(f"single-beam-{spread}")
        assert compensated < 1.0
        assert single < 1.0
        assert uncompensated > 15.0
    # Notch spacing halves when the delay spread doubles: more notches
    # fall below the mean for 10 ns than for 5 ns across the same band.
    def notch_count(label):
        response = result.responses_db[label]
        threshold = np.median(response) - 6.0
        below = response < threshold
        return int(np.sum(np.diff(below.astype(int)) == 1) + below[0])

    assert notch_count("multibeam-uncompensated-10ns") > notch_count(
        "multibeam-uncompensated-5ns"
    )
    with capsys.disabled():
        print()
        print(fig08_delay_array.report(result))
