"""Bench: extension features (paper Sections 4.4 and 8).

Not paper figures, but the future-work systems DESIGN.md commits to:
the directional multi-beam UE, IRS-engineered reflections, hybrid
multi-user beamforming, compressive training, and a waveform-level
consistency check of the whole phy substrate.
"""

import numpy as np
import pytest

from repro.arrays import UniformLinearArray
from repro.arrays.hybrid import multiuser_multibeam, multiuser_single_beam
from repro.beamtraining import CompressiveTrainer, top_k_directions
from repro.channel.environment import Environment, trace_paths
from repro.channel.geometric import GeometricChannel
from repro.channel.irs import IntelligentSurface, add_irs_path
from repro.core.blockage import reallocate_gains
from repro.core.multibeam import multibeam_from_channel
from repro.phy.mcs import OUTAGE_SNR_DB
from repro.phy.ofdm import ChannelSounder, OfdmConfig
from repro.phy.waveform import run_ofdm_link
from repro.sim.scenarios import two_path_channel


ARRAY = UniformLinearArray(num_elements=8)


def test_directional_ue_recovery(benchmark, once, capsys):
    import sys

    sys.path.insert(0, "tests/core")
    from test_ue_link import directional_channel, make_manager

    def run():
        manager = make_manager(0)
        channel = directional_channel()
        manager.establish(channel)
        aligned = manager.link_snr_db(channel)
        offset = np.deg2rad(4.0)
        moved = channel.rotated([offset, offset], [-offset, -offset])
        degraded = manager.link_snr_db(moved)
        manager.step(moved, 0.1)
        return aligned, degraded, manager.link_snr_db(moved)

    aligned, degraded, recovered = once(benchmark, run)
    assert degraded < aligned - 1.0
    assert recovered > degraded + 1.0
    with capsys.disabled():
        print()
        print(
            f"directional UE: aligned {aligned:.1f} dB, misaligned "
            f"{degraded:.1f} dB, recovered {recovered:.1f} dB"
        )


def test_irs_turns_outage_into_survival(benchmark, once, capsys):
    def run():
        carrier = 28e9
        scale = 10 ** (-16.0 / 20.0)
        empty = Environment(reflectors=(), carrier_frequency_hz=carrier)
        tx, rx = (0.0, 0.0), (12.0, 0.0)
        bare_paths = tuple(
            p.attenuated(scale) for p in trace_paths(empty, tx, rx)
        )
        sounder = ChannelSounder(
            config=OfdmConfig(bandwidth_hz=400e6, num_subcarriers=64),
            rng=0,
        )
        surface = IntelligentSurface(
            position=(6.0, 5.0), num_elements=2048, max_gain_db=70.0
        )
        irs_paths = add_irs_path(bare_paths, surface, tx, rx, carrier)
        irs_paths = irs_paths[:-1] + (irs_paths[-1].attenuated(scale),)
        with_irs = GeometricChannel(tx_array=ARRAY, paths=irs_paths)
        multibeam = multibeam_from_channel(with_irs, 2)
        block = [10 ** (-26 / 20), 1.0]
        # Without the IRS: single beam on the lone LOS, blocked -> dead.
        bare = GeometricChannel(tx_array=ARRAY, paths=bare_paths)
        from repro.arrays.steering import single_beam_weights

        w = single_beam_weights(ARRAY, bare_paths[0].aod_rad)
        without = sounder.link_snr_db(
            bare.with_path_scaling([block[0]]), w
        )
        survived = sounder.link_snr_db(
            with_irs.with_path_scaling(block),
            reallocate_gains(multibeam, [True, False]).weights().vector,
        )
        return without, survived

    without, survived = once(benchmark, run)
    assert without < OUTAGE_SNR_DB
    assert survived > OUTAGE_SNR_DB
    with capsys.disabled():
        print()
        print(
            f"IRS: blocked-LOS SNR without panel {without:.1f} dB (outage), "
            f"with panel {survived:.1f} dB (alive)"
        )


def test_hybrid_multiuser_sum_rate(benchmark, once, capsys):
    def run():
        user_a = two_path_channel(
            ARRAY, los_angle_rad=np.deg2rad(-30.0),
            nlos_angle_rad=np.deg2rad(-55.0), delta_db=-4.0,
        )
        user_b = two_path_channel(
            ARRAY, los_angle_rad=np.deg2rad(30.0),
            nlos_angle_rad=np.deg2rad(55.0), delta_db=-4.0,
        )
        channels = [user_a, user_b]
        noise = 1e-9  # noise-limited (cell edge)
        multibeam = multiuser_multibeam(ARRAY, channels, num_beams=2)
        single = multiuser_single_beam(ARRAY, channels)
        return (
            multibeam.sum_spectral_efficiency(channels, 1.0, noise),
            single.sum_spectral_efficiency(channels, 1.0, noise),
        )

    multi_rate, single_rate = once(benchmark, run)
    assert multi_rate > single_rate
    with capsys.disabled():
        print()
        print(
            f"hybrid 2-user sum rate: multi-beam {multi_rate:.2f} vs "
            f"single-beam {single_rate:.2f} b/s/Hz"
        )


def test_compressive_training_probe_efficiency(benchmark, once, capsys):
    def run():
        channel = two_path_channel(ARRAY, delta_db=-4.0)
        sounder = ChannelSounder(
            config=OfdmConfig(bandwidth_hz=100e6, num_subcarriers=64),
            rng=0,
        )
        trainer = CompressiveTrainer(
            array=ARRAY, sounder=sounder, num_probes=14, rng=1
        )
        result = trainer.train(channel)
        angles, _ = top_k_directions(
            result, 2, min_separation_rad=np.deg2rad(10.0)
        )
        return result.num_probes, trainer.grid_size, sorted(
            np.rad2deg(angles)
        )

    probes, grid, found = once(benchmark, run)
    assert probes < grid  # fewer probes than directions
    assert found[0] == pytest.approx(0.0, abs=7.5)
    assert found[1] == pytest.approx(30.0, abs=7.5)
    with capsys.disabled():
        print()
        print(
            f"compressive training: {probes} probes over a {grid}-direction "
            f"grid found paths at {found} deg"
        )


def test_waveform_snr_consistency(benchmark, once, capsys):
    """The sounder's SNR matches what an actual OFDM receiver measures."""

    def run():
        config = OfdmConfig(bandwidth_hz=400e6, num_subcarriers=64)
        # A 2.5 ns excess delay is exactly one CIR tap at 400 MHz: the
        # beamformed channel is then an exact 2-tap CIR (no band-limited
        # pulse truncation to muddy the comparison).
        channel = two_path_channel(
            ARRAY, delta_db=-5.0, excess_delay_s=2.5e-9
        )
        multibeam = multibeam_from_channel(channel, 2)
        weights = multibeam.weights().vector
        taps = channel.beamformed_path_gains(weights)
        noise_power = config.noise_power_watt / config.transmit_power_watt
        # Analytic link SNR of the 2-tap channel (Parseval: mean |H|^2
        # over subcarriers equals the tap energy).
        link_snr = 10 * np.log10(
            float(np.sum(np.abs(taps) ** 2)) / noise_power
        )
        result = run_ofdm_link(
            taps, modulation="16qam", num_data_symbols=24,
            noise_power=noise_power, rng=1,
        )
        # The receiver's expected penalty relative to the mean-power link
        # SNR: 3 dB from the single-pilot LS estimate (its noise enters
        # the equalizer output too) plus zero-forcing noise enhancement
        # on the faded subcarriers, 10 log10(E[|H|^2] * E[1/|H|^2]).
        h = np.fft.fft(np.concatenate([taps, np.zeros(62, complex)]))
        zf_penalty_db = 10 * np.log10(
            float(np.mean(np.abs(h) ** 2))
            * float(np.mean(1.0 / np.abs(h) ** 2))
        )
        expected_gap_db = 3.01 + zf_penalty_db
        return (
            link_snr, result.snr_estimate_db, result.bit_error_rate,
            expected_gap_db,
        )

    link_snr, evm_snr, ber, expected_gap_db = once(benchmark, run)
    assert link_snr - evm_snr == pytest.approx(expected_gap_db, abs=1.0)
    assert ber < 1e-2
    with capsys.disabled():
        print()
        print(
            f"waveform consistency: link {link_snr:.1f} dB, OFDM EVM "
            f"{evm_snr:.1f} dB (expected LS+ZF penalty "
            f"{expected_gap_db:.1f} dB), BER {ber:.1e}"
        )


def test_handover_rescues_total_blockage(benchmark, once, capsys):
    import sys

    sys.path.insert(0, "tests/core")
    from test_handover import dual_scenarios, make_multi_gnb

    def run():
        manager = make_multi_gnb()
        serving, backup = dual_scenarios()
        manager.establish(
            [serving.channel_at(0.0), backup.channel_at(0.0)]
        )
        snrs = []
        for t in np.arange(0.005, 0.5, 0.005):
            channels = [
                serving.channel_at(float(t)), backup.channel_at(float(t))
            ]
            manager.step(channels, float(t))
            snrs.append(manager.link_snr_db(channels))
        return manager.handover_count, np.asarray(snrs)

    handovers, snrs = once(benchmark, run)
    assert handovers >= 1
    # After the handover (serving blocked 0.1-0.4 s) the link is healthy.
    post = snrs[40:70]  # 0.2-0.35 s
    assert np.all(post > OUTAGE_SNR_DB)
    with capsys.disabled():
        print()
        print(
            f"handover: {handovers} switch(es); min SNR during serving "
            f"outage {post.min():.1f} dB (alive on the backup gNB)"
        )


def test_olla_absorbs_cqi_bias(benchmark, once, capsys):
    from repro.phy.link_adaptation import simulate_olla

    def run():
        biased = simulate_olla(
            true_snr_db=18.0, cqi_bias_db=3.0, num_blocks=3000, rng=1
        )
        clean = simulate_olla(true_snr_db=18.0, num_blocks=3000, rng=0)
        return biased, clean

    biased, clean = once(benchmark, run)
    for loop in (biased, clean):
        assert loop.measured_bler == pytest.approx(0.1, abs=0.05)
    assert biased.margin_db > clean.margin_db + 1.0
    with capsys.disabled():
        print()
        print(
            f"OLLA: clean CQI margin {clean.margin_db:+.2f} dB, +3 dB "
            f"biased CQI margin {biased.margin_db:+.2f} dB, both at "
            f"~10% BLER"
        )
