"""Bench: Fig. 15 — constructive combining accuracy and SNR gains."""

import numpy as np
import pytest

from repro.experiments import fig15_combining


def test_fig15ab_combining_accuracy(benchmark, once, capsys):
    accuracy = once(benchmark, fig15_combining.run_combining_accuracy)
    # The two-probe estimate lands at the scan optimum (paper: 2.5 rad).
    phase_error = np.angle(
        np.exp(
            1j * (accuracy.estimated_phase_rad - accuracy.best_scan_phase_rad)
        )
    )
    assert abs(np.rad2deg(phase_error)) < 15.0
    # 180-degree error costs ~13 dB.
    assert accuracy.phase_penalty_at_opposite_db == pytest.approx(13.0, abs=3.0)
    # Amplitude estimate inside the paper's plateau (-5..-3 dB).
    assert -6.0 <= accuracy.estimated_amplitude_db <= -2.0
    with capsys.disabled():
        print()
        print(
            fig15_combining.report(
                accuracy,
                fig15_combining.run_phase_stability(),
                fig15_combining.run_snr_gains(num_trials=10),
            )
        )


def test_fig15c_phase_stability(benchmark, once):
    phases = once(benchmark, fig15_combining.run_phase_stability)
    drift = float(np.max(phases) - np.min(phases))
    # Paper: less than 1 rad of per-beam phase drift over 100 MHz.
    assert drift < 1.0


def test_fig15d_snr_gains(benchmark, once):
    gains = once(benchmark, fig15_combining.run_snr_gains, 20, 15)
    # Paper: 2-beam ~1.04 dB, 3-beam ~2.27 dB, oracle ~2.5 dB; 3-beam
    # reaches ~92% of the oracle.  Shape: ordering + fraction.
    assert 0.5 <= gains.gains_db["2-beam"] <= 2.0
    assert gains.gains_db["3-beam"] > gains.gains_db["2-beam"]
    assert gains.gains_db["oracle"] >= gains.gains_db["3-beam"] - 1e-6
    assert gains.fraction_of_oracle("3-beam") > 0.85
