"""Bench: Fig. 17 — tracking accuracy and throughput payoff."""

import numpy as np

from repro.experiments import fig17_tracking


def test_fig17a_per_beam_power_follows_pattern(benchmark, once):
    trace = once(benchmark, fig17_tracking.run_per_beam_power_trace)
    # Paper: the smoothed per-beam powers approximate the beam pattern
    # within ~1 dB.
    assert trace.fit_error_db() < 1.5


def test_fig17b_angle_accuracy(benchmark, once, capsys):
    errors = once(benchmark, fig17_tracking.run_angle_accuracy)
    # Paper: ~1 degree mean estimation error over 2-8 degree rotations.
    assert np.mean(list(errors.values())) < 1.5
    for error in errors.values():
        assert error < 2.0
    with capsys.disabled():
        print()
        print("Fig. 17(b) angle errors:", {k: round(v, 2) for k, v in errors.items()})


def test_fig17c_throughput_timeseries(benchmark, once, capsys):
    comparison = once(benchmark, fig17_tracking.run_throughput_timeseries)
    # Paper ordering: tracking + constructive combining sustains the
    # highest throughput; tracking alone is lower; no tracking decays.
    assert comparison.mean_mbps("tracking+CC") >= comparison.mean_mbps(
        "tracking-only"
    )
    assert comparison.mean_mbps("tracking-only") > comparison.mean_mbps(
        "no-tracking"
    )
    # No-tracking decays over the run (final << initial); the tracked
    # variants hold.
    no_tracking = comparison.series_mbps["no-tracking"]
    assert comparison.final_mbps("no-tracking") < np.mean(no_tracking[:100])
    tracked = comparison.series_mbps["tracking+CC"]
    assert comparison.final_mbps("tracking+CC") > 0.9 * np.mean(tracked[:100])
    with capsys.disabled():
        print()
        for label in ("no-tracking", "tracking-only", "tracking+CC"):
            print(
                f"Fig. 17(c) {label:<14s} mean "
                f"{comparison.mean_mbps(label):7.1f} Mbps final "
                f"{comparison.final_mbps(label):7.1f} Mbps"
            )
