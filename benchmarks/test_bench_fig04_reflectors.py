"""Bench: Fig. 4 — reflector-strength measurement study."""

import numpy as np

from repro.experiments import fig04_reflectors


def test_fig04a_attenuation_cdf(benchmark, once, capsys):
    study = once(
        benchmark, fig04_reflectors.run_attenuation_study, 150, 0
    )
    # Paper shape: medians near 7.2 dB indoor / 5 dB outdoor, with
    # outdoor reflections relatively stronger (lower attenuation).
    assert 3.0 <= study.indoor_median_db <= 12.0
    assert 2.0 <= study.outdoor_median_db <= 10.0
    assert study.outdoor_median_db <= study.indoor_median_db + 1.0
    # Most reflectors attenuate 1-10 dB.
    for samples in (study.indoor_samples_db, study.outdoor_samples_db):
        fraction_in_band = np.mean((samples >= 0.5) & (samples <= 12.0))
        assert fraction_in_band > 0.8
    with capsys.disabled():
        print()
        print(fig04_reflectors.report(study))


def test_fig04b_motion_heatmap(benchmark, once, capsys):
    heatmap = once(
        benchmark, fig04_reflectors.run_motion_heatmap, 12, 49, 0
    )
    assert heatmap.shape == (12, 49)
    # A strong ridge (the LOS) exists at every time step.
    assert np.all(np.max(heatmap, axis=1) > np.median(heatmap, axis=1) + 3)
    # And the ridge moves as the user moves.
    peaks = np.argmax(heatmap, axis=1)
    assert peaks.max() - peaks.min() >= 2
    with capsys.disabled():
        print()
        print(
            "Fig. 4(b) — LOS ridge angle index over time:",
            peaks.tolist(),
        )
