"""Bench: the end-to-end comparison on random clustered channels.

The paper's conclusions must not hinge on the hand-built two-path
geometry: this sweep redraws the channel from the 3GPP-flavoured cluster
generator per seed and re-checks the ordering.
"""

from repro.experiments import robustness


def test_clustered_channel_robustness(benchmark, once, capsys):
    summaries = once(
        benchmark, robustness.run_clustered_ensembles, range(8)
    )
    mmr = summaries["mmreliable"]
    oracle = summaries["oracle"]
    # Ordering holds on random channels too.
    assert mmr.median_reliability() > 0.93
    for baseline in ("reactive", "beamspy"):
        assert mmr.mean_product() > summaries[baseline].mean_product()
    # The genie refreshes a *frequency-flat* narrowband MRT beam; link
    # SNR averages |H(f)|^2 over the whole OFDM band.  On the clustered
    # channels' large delay spreads, mmReliable's delay-compensated
    # multi-beam combines paths coherently across the band and can beat
    # the flat MRT beam on some draws (seeds 3-6 here, by up to ~1.4 dB
    # mean SNR) — that is the paper's wideband point, not a regression,
    # so the genie is NOT asserted to dominate the TxR product per seed.
    # What the genie does guarantee: zero probing airtime, so its
    # reliability dominates, and the product stays in a tight band.
    assert oracle.median_reliability() >= mmr.median_reliability()
    assert oracle.mean_product() > 0.9 * mmr.mean_product()
    assert mmr.mean_product() > 0.9 * oracle.mean_product()
    # The constructive multi-beam tracks the oracle closely even on
    # channels it never saw at design time.
    assert mmr.mean_throughput_bps() > 0.9 * oracle.mean_throughput_bps()
    with capsys.disabled():
        print()
        print(robustness.report(summaries))
