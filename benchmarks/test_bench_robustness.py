"""Bench: the end-to-end comparison on random clustered channels.

The paper's conclusions must not hinge on the hand-built two-path
geometry: this sweep redraws the channel from the 3GPP-flavoured cluster
generator per seed and re-checks the ordering.
"""

from repro.experiments import robustness


def test_clustered_channel_robustness(benchmark, once, capsys):
    summaries = once(
        benchmark, robustness.run_clustered_ensembles, range(8)
    )
    mmr = summaries["mmreliable"]
    # Ordering holds on random channels too.
    assert mmr.median_reliability() > 0.93
    for baseline in ("reactive", "beamspy"):
        assert mmr.mean_product() > summaries[baseline].mean_product()
    assert summaries["oracle"].mean_product() >= mmr.mean_product()
    # The constructive multi-beam tracks the oracle closely even on
    # channels it never saw at design time.
    assert mmr.mean_throughput_bps() > 0.9 * summaries[
        "oracle"
    ].mean_throughput_bps()
    with capsys.disabled():
        print()
        print(robustness.report(summaries))
