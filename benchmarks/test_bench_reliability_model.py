"""Bench: Section 3.1 — the analytic reliability model 1 - beta^k."""

import numpy as np
import pytest

from repro.experiments import reliability_model


def test_reliability_model_curves(benchmark, once, capsys):
    curves = once(benchmark, reliability_model.run_analytic_curves)
    single = curves.curves["single-beam"]
    # Multi-beam dominates single beam at every beta, and more beams
    # dominate fewer.
    for k in (2, 3, 4):
        multi = curves.curves[f"{k}-beam"]
        assert np.all(multi >= single - 1e-12)
    assert np.all(curves.curves["3-beam"] >= curves.curves["2-beam"] - 1e-12)
    with capsys.disabled():
        print()
        print(
            reliability_model.report(
                curves, reliability_model.run_monte_carlo_check()
            )
        )


def test_reliability_monte_carlo_matches_analytic(benchmark, once):
    check = once(benchmark, reliability_model.run_monte_carlo_check)
    for beta, row in check.items():
        for k, simulated in row.items():
            analytic = reliability_model.analytic_multibeam_reliability(
                beta, k
            )
            assert simulated == pytest.approx(analytic, abs=0.02)
