"""Bench: design-choice ablations (DESIGN.md index)."""

import numpy as np

from repro.experiments import ablations


def test_cfo_ablation(benchmark, once, capsys):
    errors = once(benchmark, ablations.run_cfo_ablation)
    # The paper's estimation argument: complex-ratio probing breaks
    # under CFO (phase errors ~uniform, mean ~90 deg) while the
    # magnitude-only two-probe method stays accurate.
    assert errors["complex-ratio/cfo"] > 45.0
    assert errors["two-probe/cfo"] < 10.0
    assert errors["complex-ratio/clean"] < 10.0
    with capsys.disabled():
        print()
        print("CFO ablation (deg):", {k: round(v, 1) for k, v in errors.items()})


def test_quantization_ablation(benchmark, once, capsys):
    losses = once(benchmark, ablations.run_quantization_ablation)
    # Section 5.1: 2-bit phase control suffices for coherent multi-beams
    # (sub-dB loss); 6-bit is essentially ideal.
    assert losses[2] < 1.5
    assert losses[6] < 0.05
    values = [losses[b] for b in sorted(losses)]
    assert np.all(np.diff(values) <= 1e-9)  # monotone improvement
    with capsys.disabled():
        print()
        print("Quantization loss (dB):", {k: round(v, 3) for k, v in losses.items()})


def test_beam_count_ablation(benchmark, once, capsys):
    tradeoff = once(benchmark, ablations.run_beam_count_ablation)
    # Gain saturates (diminishing returns) while overhead grows linearly.
    gains = tradeoff.snr_gain_db
    increments = np.diff(gains)
    assert np.all(increments > -1e-9)
    assert increments[-1] < increments[0]  # diminishing returns
    overhead_increments = np.diff(tradeoff.overhead_ms)
    assert np.allclose(overhead_increments, overhead_increments[0])
    with capsys.disabled():
        print()
        for k, g, o in zip(
            tradeoff.num_beams, gains, tradeoff.overhead_ms
        ):
            print(f"  K={k}: gain {g:5.2f} dB, overhead {o:5.2f} ms")


def test_regularization_ablation(benchmark, once, capsys):
    mse = once(benchmark, ablations.run_regularization_ablation)
    lambdas = sorted(mse)
    # The default (1e-4) sits on the flat part of the curve; gross
    # over-regularization destroys the estimate.
    assert mse[1e-4] < -25.0
    assert mse[1e-1] > mse[1e-4] + 10.0
    with capsys.disabled():
        print()
        print("Superres lambda MSE (dB):", {k: round(v, 1) for k, v in mse.items()})


def test_reprobe_cadence_ablation(benchmark, once, capsys):
    results = once(
        benchmark, ablations.run_reprobe_ablation,
        (10e-3, 25e-3, 100e-3), (0.0, 30.0), 0.4,
    )
    static = results[0.0]
    drifting = results[30.0]
    intervals = sorted(static)
    # Quasi-static channel: cadence does not matter (within noise).
    assert max(static.values()) - min(static.values()) < 0.3
    # Drifting carrier phase: slower refresh costs SNR, monotonically.
    values = [drifting[i] for i in intervals]
    assert values[0] > values[-1] + 0.3
    # And the drift penalty is recovered by frequent reprobing.
    assert static[intervals[0]] - drifting[intervals[0]] < 0.5
    with capsys.disabled():
        print()
        for drift, row in results.items():
            print(
                f"reprobe ablation, drift {drift:4.1f} rad/s:",
                {f"{k * 1e3:.0f}ms": round(v, 2) for k, v in row.items()},
            )
