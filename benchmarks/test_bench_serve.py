"""Bench: sustained job-server throughput (submit -> execute -> done).

Drives an in-process :class:`JobServer` with a burst of distinct micro
ensemble jobs plus interleaved duplicates and measures wall time until
the queue drains, so ``BENCH_*.json`` tracks serving throughput over
time.  The journal runs with ``sync=True`` — the fsync-per-transition
cost is part of the serving contract, not overhead to hide.

``extra_info`` carries the jobs/sec figure the ISSUE asks to record,
plus the coalescing counters (duplicates must never execute twice).
"""

import asyncio

from repro.serve import JobServer

UNIQUE_JOBS = 16
DUPLICATES = 8
WORKERS = 2


async def _drive(journal_path):
    server = JobServer(
        str(journal_path), job_workers=WORKERS, queue_limit=256,
        shed_threshold=1.0,
    )
    await server.start()
    try:
        jobs = [
            {
                "kind": "ensemble",
                "seeds": 1,
                "duration_s": round(0.01 + 0.0001 * index, 6),
            }
            for index in range(UNIQUE_JOBS)
        ]
        jobs += [dict(jobs[index]) for index in range(DUPLICATES)]
        ids = []
        for job in jobs:
            response = await server.submit(job)
            assert response["ok"], response
            ids.append(response["id"])
        while any(not server.records[job_id].terminal for job_id in ids):
            await asyncio.sleep(0.005)
        return server.snapshot()
    finally:
        await server.stop()


def test_serve_throughput(benchmark, once, tmp_path):
    # A fresh coroutine AND a fresh journal per round: coroutines are
    # single-shot, and replaying a previous round's journal would serve
    # duplicates from the result cache, skewing the counters.
    rounds = iter(range(1000))

    def drive_once():
        journal = tmp_path / f"jobs-{next(rounds)}.jsonl"
        return asyncio.run(_drive(journal))

    stats = once(benchmark, drive_once)

    assert stats["completed"] == UNIQUE_JOBS
    assert stats["failed"] == 0
    # Duplicates coalesced or hit the result cache; never re-executed.
    assert stats["coalesced"] + stats["cached"] == DUPLICATES
    assert stats["executions"] == UNIQUE_JOBS

    benchmark.extra_info["jobs_per_second"] = round(
        stats["jobs_per_second"], 3
    )
    benchmark.extra_info["executions"] = stats["executions"]
    benchmark.extra_info["coalesced"] = stats["coalesced"]
    benchmark.extra_info["workers"] = WORKERS
