"""Bench: Fig. 19 (Appendix B) — 28 vs 60 GHz comparison."""

from repro.experiments import fig19_60ghz


def test_fig19_carrier_comparison(benchmark, once, capsys):
    comparison = once(benchmark, fig19_60ghz.run_carrier_comparison)
    # Paper shape: multi-beam outperforms the single-beam baseline at
    # both carriers (~1.18x), and 28 GHz delivers several times the
    # 60 GHz throughput for the same bandwidth (paper: 4.7x) because of
    # FSPL and O2 absorption.
    assert comparison.multibeam_gain("28GHz") > 1.05
    assert comparison.multibeam_gain("60GHz") > 1.0
    assert comparison.carrier_ratio() > 1.8
    with capsys.disabled():
        print()
        print(fig19_60ghz.report(comparison))
