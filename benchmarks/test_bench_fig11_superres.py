"""Bench: Fig. 11 — super-resolution efficiency."""

import numpy as np

from repro.experiments import fig11_superres


def test_fig11a_mse_vs_relative_tof(benchmark, once, capsys):
    sweep = once(benchmark, fig11_superres.run_mse_sweep)
    below = sweep.relative_tofs_s < sweep.resolution_s
    # Paper shape: low MSE persists well below the classical resolution
    # (down to ~1 ns at 400 MHz), with graceful degradation at the
    # smallest spacings.
    usable = sweep.mse_db[(sweep.relative_tofs_s >= 1e-9) & below]
    assert usable.size >= 2
    assert np.all(usable < -20.0)
    # At or above the resolution the estimate is excellent.
    assert np.all(sweep.mse_db[~below] < -30.0)
    # And the hardest (smallest) spacing is the worst case.
    assert sweep.mse_db[0] == max(sweep.mse_db)
    with capsys.disabled():
        print()
        print(
            fig11_superres.report(
                sweep, fig11_superres.run_two_sinc_recovery()
            )
        )


def test_fig11b_two_pulse_recovery(benchmark, once):
    recovery = once(benchmark, fig11_superres.run_two_sinc_recovery)
    # Both overlapping pulses (1.8 ns apart at 400 MHz) recovered.
    for k in range(2):
        np.testing.assert_allclose(
            abs(recovery.recovered_alphas[k]),
            abs(recovery.true_alphas[k]),
            rtol=0.1,
        )
