"""Tests for the perf-regression comparison tool (scripts/bench_compare.py)."""

import importlib.util
import json
import sys
from pathlib import Path

import pytest

SCRIPT = Path(__file__).resolve().parent.parent / "scripts" / "bench_compare.py"
spec = importlib.util.spec_from_file_location("bench_compare", SCRIPT)
bench_compare = importlib.util.module_from_spec(spec)
sys.modules["bench_compare"] = bench_compare
spec.loader.exec_module(bench_compare)


def write_run(path: Path, means: dict) -> Path:
    payload = {
        "benchmarks": [
            {"name": name, "stats": {"mean": mean}}
            for name, mean in means.items()
        ]
    }
    path.write_text(json.dumps(payload))
    return path


@pytest.fixture
def baseline(tmp_path):
    return write_run(
        tmp_path / "baseline.json", {"bench_a": 1.0, "bench_b": 0.010}
    )


def run_main(new, baseline, *extra):
    return bench_compare.main(
        [str(new), "--baseline", str(baseline), *extra]
    )


class TestBenchCompare:
    def test_ok_when_within_thresholds(self, tmp_path, baseline, capsys):
        new = write_run(
            tmp_path / "new.json", {"bench_a": 1.02, "bench_b": 0.009}
        )
        assert run_main(new, baseline) == 0
        out = capsys.readouterr().out
        assert "0 fail, 0 warn" in out

    def test_fails_past_20_percent(self, tmp_path, baseline, capsys):
        new = write_run(
            tmp_path / "new.json", {"bench_a": 1.25, "bench_b": 0.010}
        )
        assert run_main(new, baseline) == 1
        assert "FAIL  bench_a" in capsys.readouterr().out

    def test_warns_between_thresholds(self, tmp_path, baseline, capsys):
        new = write_run(
            tmp_path / "new.json", {"bench_a": 1.10, "bench_b": 0.010}
        )
        assert run_main(new, baseline) == 0
        assert "WARN  bench_a" in capsys.readouterr().out

    def test_custom_fail_threshold(self, tmp_path, baseline):
        new = write_run(
            tmp_path / "new.json", {"bench_a": 1.30, "bench_b": 0.010}
        )
        assert run_main(new, baseline, "--fail-above", "0.5") == 0

    def test_one_sided_benchmarks_never_fail(self, tmp_path, baseline, capsys):
        new = write_run(
            tmp_path / "new.json", {"bench_a": 1.0, "bench_new": 5.0}
        )
        assert run_main(new, baseline) == 0
        out = capsys.readouterr().out
        assert "not in this run" in out
        assert "new benchmark without baseline: bench_new" in out

    def test_no_overlap_passes_with_warning(self, tmp_path, baseline, capsys):
        # A -k filtered shard or a brand-new benchmark file legitimately
        # shares nothing with the baseline; that is a warning, not a
        # failure (one-sided entries never fail by design).
        new = write_run(tmp_path / "new.json", {"other": 1.0})
        assert run_main(new, baseline) == 0
        captured = capsys.readouterr()
        assert "no overlapping benchmarks" in captured.err
        assert "new benchmark without baseline: other" in captured.out

    def test_empty_run_is_an_error(self, tmp_path, baseline, capsys):
        new = write_run(tmp_path / "new.json", {})
        assert run_main(new, baseline) == 2
        assert "contains no benchmarks" in capsys.readouterr().err

    def test_malformed_json_exits_2(self, tmp_path, baseline):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(SystemExit) as excinfo:
            run_main(bad, baseline)
        assert excinfo.value.code == 2

    def test_missing_benchmarks_list_exits_2(self, tmp_path, baseline):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"machine_info": {}}))
        with pytest.raises(SystemExit) as excinfo:
            run_main(bad, baseline)
        assert excinfo.value.code == 2

    def test_thresholds_must_be_ordered(self, tmp_path, baseline):
        new = write_run(tmp_path / "new.json", {"bench_a": 1.0})
        with pytest.raises(SystemExit):
            run_main(
                new, baseline, "--fail-above", "0.05", "--warn-above", "0.2"
            )

    def test_committed_baseline_is_default_and_valid(self):
        means = bench_compare.load_means(
            SCRIPT.parent.parent / "BENCH_baseline.json"
        )
        assert "test_fig18bc_mobile_reliability_and_product" in means
        assert all(mean > 0 for mean in means.values())
