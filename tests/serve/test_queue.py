"""Admission queue: priority order, soft shedding, eviction, overload."""

import pytest

from repro.serve import AdmissionQueue, JobRecord, JobSpec, ServiceOverload


def _record(job_id, priority="batch"):
    spec = JobSpec(kind="ensemble", priority=priority)
    return JobRecord(job_id=job_id, key=job_id, spec=spec)


class TestOrdering:
    def test_priority_then_fifo(self):
        queue = AdmissionQueue(maxsize=8)
        queue.offer(_record("bulk-1", "bulk"))
        queue.offer(_record("batch-1", "batch"))
        queue.offer(_record("int-1", "interactive"))
        queue.offer(_record("batch-2", "batch"))
        popped = [queue.pop().job_id for _ in range(4)]
        assert popped == ["int-1", "batch-1", "batch-2", "bulk-1"]
        assert queue.pop() is None

    def test_len_and_iter_track_live_entries(self):
        queue = AdmissionQueue(maxsize=4)
        queue.offer(_record("a"))
        queue.offer(_record("b"))
        assert len(queue) == 2
        assert [record.job_id for record in queue] == ["a", "b"]
        queue.pop()
        assert len(queue) == 1


class TestSoftShedding:
    def test_low_priority_shed_above_threshold(self):
        queue = AdmissionQueue(maxsize=4, shed_threshold=0.5)
        queue.offer(_record("a"))
        queue.offer(_record("b"))
        # 50% occupancy: batch arrivals now shed, interactive admitted.
        with pytest.raises(ServiceOverload, match="occupancy"):
            queue.offer(_record("c", "batch"))
        queue.offer(_record("vip", "interactive"))
        assert len(queue) == 3

    def test_overload_payload_is_structured(self):
        queue = AdmissionQueue(maxsize=4, shed_threshold=0.25)
        queue.offer(_record("a"))
        with pytest.raises(ServiceOverload) as excinfo:
            queue.offer(_record("b", "bulk"))
        payload = excinfo.value.to_dict()
        assert payload["error"] == "overload"
        assert payload["queue_depth"] == 1
        assert payload["queue_limit"] == 4
        assert payload["retry_after_s"] > 0

    def test_protect_priority_widens_admission(self):
        queue = AdmissionQueue(
            maxsize=4, shed_threshold=0.25, protect_priority="batch"
        )
        queue.offer(_record("a"))
        queue.offer(_record("b", "batch"))  # protected: admitted
        with pytest.raises(ServiceOverload):
            queue.offer(_record("c", "bulk"))


class TestEviction:
    def test_urgent_arrival_evicts_newest_worst(self):
        queue = AdmissionQueue(maxsize=2, shed_threshold=1.0)
        queue.offer(_record("bulk-old", "bulk"))
        queue.offer(_record("bulk-new", "bulk"))
        evicted = queue.offer(_record("vip", "interactive"))
        assert evicted.job_id == "bulk-new"
        assert len(queue) == 2
        assert [record.job_id for record in queue] == ["vip", "bulk-old"]

    def test_full_queue_of_equals_rejects_arrival(self):
        queue = AdmissionQueue(maxsize=2, shed_threshold=1.0)
        queue.offer(_record("a"))
        queue.offer(_record("b"))
        with pytest.raises(ServiceOverload, match="queue full"):
            queue.offer(_record("c"))  # same class: nobody to evict

    def test_evicted_record_never_pops(self):
        queue = AdmissionQueue(maxsize=1, shed_threshold=1.0)
        queue.offer(_record("bulk-1", "bulk"))
        queue.offer(_record("vip", "interactive"))
        assert queue.pop().job_id == "vip"
        assert queue.pop() is None


class TestRequeue:
    def test_requeue_bypasses_admission(self):
        queue = AdmissionQueue(maxsize=2, shed_threshold=0.5)
        queue.offer(_record("a"))
        retrying = _record("retry-1", "bulk")
        # A fresh bulk offer would shed at 50% occupancy; a retry must not.
        queue.requeue(retrying)
        assert len(queue) == 2


class TestValidation:
    def test_bad_parameters_rejected(self):
        with pytest.raises(ValueError, match="maxsize"):
            AdmissionQueue(maxsize=0)
        with pytest.raises(ValueError, match="shed_threshold"):
            AdmissionQueue(shed_threshold=0.0)
        with pytest.raises(ValueError, match="priority"):
            AdmissionQueue(protect_priority="vip")
