"""Job model: spec validation, JSON round trip, content-key discipline."""

import pytest

from repro.faults import FaultSpec
from repro.serve import JobRecord, JobSpec, JobState, ServiceOverload, job_key
from repro.sim.spec import get_scenario_spec


class TestJobSpecValidation:
    def test_experiment_jobs_need_an_id(self):
        with pytest.raises(ValueError, match="experiment"):
            JobSpec(kind="experiment")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            JobSpec(kind="mystery")

    def test_unknown_priority_rejected(self):
        with pytest.raises(ValueError, match="priority"):
            JobSpec(kind="ensemble", priority="urgent")

    def test_bad_scalars_rejected(self):
        with pytest.raises(ValueError, match="seeds"):
            JobSpec(kind="ensemble", seeds=0)
        with pytest.raises(ValueError, match="workers"):
            JobSpec(kind="ensemble", workers=0)
        with pytest.raises(ValueError, match="duration_s"):
            JobSpec(kind="ensemble", duration_s=0.0)
        with pytest.raises(ValueError, match="deadline_s"):
            JobSpec(kind="ensemble", deadline_s=-1.0)

    def test_faults_must_be_specs(self):
        with pytest.raises(TypeError, match="FaultSpec"):
            JobSpec(kind="ensemble", faults=("probe_loss:0.1",))


class TestRoundTrip:
    def test_minimal_round_trip(self):
        spec = JobSpec(kind="ensemble", seeds=3)
        assert JobSpec.from_dict(spec.to_dict()) == spec

    def test_full_round_trip(self):
        spec = JobSpec(
            kind="experiment",
            experiment="network_scale",
            scenario=get_scenario_spec("network-smoke"),
            seeds=2,
            workers=4,
            faults=(FaultSpec(kind="probe_loss", rate=0.1),),
            priority="interactive",
            deadline_s=30.0,
            backend="numpy",
        )
        assert JobSpec.from_dict(spec.to_dict()) == spec

    def test_backend_normalized_and_validated(self):
        assert JobSpec(kind="ensemble", backend=" NumPy ").backend == "numpy"
        with pytest.raises(ValueError, match="unknown compute backend"):
            JobSpec(kind="ensemble", backend="cuda")

    def test_unknown_keys_rejected_loudly(self):
        with pytest.raises(ValueError, match="unknown job spec keys"):
            JobSpec.from_dict({"kind": "ensemble", "seedz": 3})


class TestJobKey:
    def test_key_is_stable(self):
        spec = JobSpec(kind="ensemble", seeds=3)
        assert job_key(spec) == job_key(JobSpec.from_dict(spec.to_dict()))

    def test_content_fields_change_the_key(self):
        base = JobSpec(kind="ensemble", seeds=3)
        assert job_key(base) != job_key(base.with_options(seeds=4))
        assert job_key(base) != job_key(base.with_options(duration_s=0.05))
        assert job_key(base) != job_key(
            base.with_options(faults=(FaultSpec(kind="probe_loss", rate=0.1),))
        )

    def test_serving_metadata_does_not_change_the_key(self):
        # The executor's output is backend-independent, and priority /
        # deadlines are serving concerns: none of them may split the
        # coalescing key.
        base = JobSpec(kind="ensemble", seeds=3)
        assert job_key(base) == job_key(base.with_options(workers=8))
        assert job_key(base) == job_key(base.with_options(priority="bulk"))
        assert job_key(base) == job_key(base.with_options(deadline_s=99.0))
        assert job_key(base) == job_key(base.with_options(ensemble_retries=7))

    def test_compute_backend_does_not_change_the_key(self):
        # Backends agree to the documented tolerance; the serving
        # backend is an operational knob, so submissions coalesce
        # across it (RL204 discipline: no serving field in the key).
        base = JobSpec(kind="ensemble", seeds=3)
        assert job_key(base) == job_key(base.with_options(backend="numpy"))
        assert job_key(base) == job_key(base.with_options(backend="numba"))

    def test_scenario_changes_the_key(self):
        base = JobSpec(
            kind="experiment",
            experiment="network_scale",
            scenario=get_scenario_spec("network-smoke"),
        )
        other = base.with_options(scenario=get_scenario_spec("dual-cell"))
        assert job_key(base) != job_key(other)


class TestJobRecord:
    def test_lifecycle_history(self):
        record = JobRecord(job_id="job-1", key="k", spec=JobSpec(kind="ensemble"))
        record.transition(JobState.RUNNING, 1.0)
        record.transition(JobState.PENDING, 2.0)  # retry
        record.transition(JobState.RUNNING, 3.0)
        record.transition(JobState.SUCCEEDED, 4.0)
        assert record.terminal
        assert record.finished_at_s == 4.0
        assert [state for state, _t in record.history] == [
            "running", "pending", "running", "succeeded",
        ]

    def test_terminal_states_are_final(self):
        record = JobRecord(job_id="job-1", key="k", spec=JobSpec(kind="ensemble"))
        record.transition(JobState.SHED, 1.0)
        with pytest.raises(ValueError, match="terminal"):
            record.transition(JobState.RUNNING, 2.0)

    def test_status_payload_is_json_safe(self):
        import json

        record = JobRecord(job_id="job-1", key="k", spec=JobSpec(kind="ensemble"))
        record.transition(JobState.SUCCEEDED, 1.0)
        record.result = {"runs": 2}
        payload = json.loads(json.dumps(record.to_dict()))
        assert payload["state"] == "succeeded"
        assert payload["result"] == {"runs": 2}


class TestServiceOverload:
    def test_structured_payload(self):
        overload = ServiceOverload(
            reason="queue full", queue_depth=64, queue_limit=64,
            retry_after_s=2.0,
        )
        payload = overload.to_dict()
        assert payload["error"] == "overload"
        assert payload["queue_depth"] == 64
        assert payload["retry_after_s"] == 2.0
