"""Job server integration: lifecycle, coalescing, retries, shedding,
journal replay, the wire protocol, and the blocking client.

pytest-asyncio is not a dependency, so every async test drives its own
loop through ``asyncio.run``; the blocking-client tests run the server
on a background thread's loop instead.
"""

import asyncio
import json

import pytest

from repro.serve import JobClient, JobServer, RetryPolicy, ServerError
from repro.telemetry import EventKind, TelemetryRecorder, use_recorder

#: A micro job cheap enough to run hundreds of times in the suite.
MICRO_JOB = {"kind": "ensemble", "seeds": 1, "duration_s": 0.01}

#: A job that fails every attempt: worker_crash at rate 1.0 crashes the
#: run on every seed and every executor retry, so the ensemble always
#: exceeds its failure budget and the *server's* retry layer engages.
DOOMED_JOB = {
    "kind": "ensemble",
    "seeds": 1,
    "duration_s": 0.01,
    "faults": [{"kind": "worker_crash", "rate": 1.0}],
    "ensemble_retries": 0,
}


async def _wait_terminal(server, job_id, timeout_s=30.0):
    deadline = asyncio.get_running_loop().time() + timeout_s
    while True:
        record = server.records[job_id]
        if record.terminal:
            return record
        if asyncio.get_running_loop().time() > deadline:
            raise AssertionError(
                f"job {job_id} not terminal after {timeout_s}s "
                f"(state={record.state})"
            )
        await asyncio.sleep(0.01)


class TestLifecycle:
    def test_submit_runs_to_success(self, tmp_path):
        async def scenario():
            server = JobServer(str(tmp_path / "jobs.jsonl"), job_workers=1)
            await server.start()
            try:
                response = await server.submit(dict(MICRO_JOB))
                assert response["ok"] and not response["coalesced"]
                record = await _wait_terminal(server, response["id"])
                assert record.state == "succeeded"
                assert record.result["runs"] == 1
                assert record.result["failures"] == 0
                assert server.stats.completed == 1
                assert server.stats.executions == 1
            finally:
                await server.stop()

        asyncio.run(scenario())

    def test_bad_spec_is_rejected_not_queued(self, tmp_path):
        async def scenario():
            server = JobServer(str(tmp_path / "jobs.jsonl"), job_workers=0)
            await server.start()
            try:
                response = await server.submit({"kind": "mystery"})
                assert not response["ok"]
                assert response["error"] == "bad_request"
                assert server.stats.submitted == 0
                assert len(server.queue) == 0
            finally:
                await server.stop()

        asyncio.run(scenario())


class TestCoalescing:
    def test_duplicate_of_pending_job_coalesces(self, tmp_path):
        async def scenario():
            # job_workers=0 freezes the queue: the first submission stays
            # pending, so the duplicate provably coalesces.
            server = JobServer(str(tmp_path / "jobs.jsonl"), job_workers=0)
            await server.start()
            try:
                first = await server.submit(dict(MICRO_JOB))
                second = await server.submit(dict(MICRO_JOB))
                assert second["coalesced"]
                assert second["id"] == first["id"]
                record = server.records[first["id"]]
                assert record.submissions == 2
                assert server.stats.submitted == 1
                assert server.stats.coalesced == 1
                # Serving metadata must not split the key.
                third = await server.submit(
                    dict(MICRO_JOB, priority="interactive", workers=4)
                )
                assert third["coalesced"] and third["id"] == first["id"]
            finally:
                await server.stop()

        asyncio.run(scenario())

    def test_succeeded_job_served_from_cache(self, tmp_path):
        async def scenario():
            server = JobServer(str(tmp_path / "jobs.jsonl"), job_workers=1)
            await server.start()
            try:
                first = await server.submit(dict(MICRO_JOB))
                await _wait_terminal(server, first["id"])
                again = await server.submit(dict(MICRO_JOB))
                assert again["ok"] and again.get("cached")
                assert again["id"] == first["id"]
                assert again["state"] == "succeeded"
                assert server.stats.executions == 1  # no re-run
                assert server.stats.cached == 1
            finally:
                await server.stop()

        asyncio.run(scenario())


class TestRetries:
    def test_failing_job_retries_then_fails(self, tmp_path):
        async def scenario():
            server = JobServer(
                str(tmp_path / "jobs.jsonl"),
                job_workers=1,
                retry_policy=RetryPolicy(max_retries=2, base_delay_s=0.01),
            )
            await server.start()
            try:
                response = await server.submit(dict(DOOMED_JOB))
                record = await _wait_terminal(server, response["id"])
                assert record.state == "failed"
                assert record.attempts == 3  # 1 first try + 2 retries
                assert "EnsembleError" in record.error
                assert server.stats.retries == 2
                assert server.stats.failed == 1
            finally:
                await server.stop()

        asyncio.run(scenario())

    def test_deadline_bounds_the_retry_loop(self, tmp_path):
        async def scenario():
            server = JobServer(
                str(tmp_path / "jobs.jsonl"),
                job_workers=1,
                retry_policy=RetryPolicy(
                    max_retries=50, base_delay_s=10.0, max_delay_s=10.0
                ),
            )
            await server.start()
            try:
                # The first backoff (10s) alone would cross the 0.5s
                # deadline, so the job fails terminally after one attempt.
                response = await server.submit(
                    dict(DOOMED_JOB, deadline_s=0.5)
                )
                record = await _wait_terminal(server, response["id"])
                assert record.state == "failed"
                assert record.attempts == 1
                assert server.stats.retries == 0
            finally:
                await server.stop()

        asyncio.run(scenario())


class TestShedding:
    def test_eviction_sheds_the_evicted_job_terminally(self, tmp_path):
        async def scenario():
            server = JobServer(
                str(tmp_path / "jobs.jsonl"),
                job_workers=0,
                queue_limit=2,
                shed_threshold=1.0,
            )
            await server.start()
            try:
                bulk = dict(MICRO_JOB, priority="bulk")
                first = await server.submit(dict(bulk, seeds=1))
                second = await server.submit(dict(bulk, seeds=2))
                vip = await server.submit(
                    dict(MICRO_JOB, seeds=3, priority="interactive")
                )
                assert vip["ok"]
                evicted = server.records[second["id"]]
                assert evicted.state == "shed"
                assert "evicted" in evicted.error
                assert server.records[first["id"]].state == "pending"
                assert server.stats.shed == 1
            finally:
                await server.stop()

        asyncio.run(scenario())

    def test_hard_overload_is_a_structured_rejection(self, tmp_path):
        async def scenario():
            server = JobServer(
                str(tmp_path / "jobs.jsonl"),
                job_workers=0,
                queue_limit=2,
                shed_threshold=1.0,
            )
            await server.start()
            try:
                vip = dict(MICRO_JOB, priority="interactive")
                await server.submit(dict(vip, seeds=1))
                await server.submit(dict(vip, seeds=2))
                rejected = await server.submit(dict(vip, seeds=3))
                assert not rejected["ok"]
                assert rejected["error"] == "overload"
                assert rejected["queue_depth"] == 2
                assert rejected["queue_limit"] == 2
                assert rejected["retry_after_s"] > 0
                assert server.stats.overloads == 1
            finally:
                await server.stop()

        asyncio.run(scenario())

    def test_soft_shedding_protects_interactive(self, tmp_path):
        async def scenario():
            server = JobServer(
                str(tmp_path / "jobs.jsonl"),
                job_workers=0,
                queue_limit=4,
                shed_threshold=0.5,
            )
            await server.start()
            try:
                await server.submit(dict(MICRO_JOB, seeds=1))
                await server.submit(dict(MICRO_JOB, seeds=2))
                shed = await server.submit(dict(MICRO_JOB, seeds=3))
                assert not shed["ok"] and shed["error"] == "overload"
                vip = await server.submit(
                    dict(MICRO_JOB, seeds=3, priority="interactive")
                )
                assert vip["ok"]
            finally:
                await server.stop()

        asyncio.run(scenario())


class TestReplay:
    def test_restart_resumes_unfinished_jobs(self, tmp_path):
        journal = str(tmp_path / "jobs.jsonl")

        async def before_crash():
            # Frozen server: accepts two jobs, runs neither, then the
            # process "dies" without a clean shutdown.
            server = JobServer(journal, job_workers=0)
            await server.start()
            first = await server.submit(dict(MICRO_JOB, seeds=1))
            second = await server.submit(dict(MICRO_JOB, seeds=2))
            server.journal.close()
            if server._server is not None:
                server._server.close()
                await server._server.wait_closed()
            return first["id"], second["id"]

        async def after_restart(job_ids):
            server = JobServer(journal, job_workers=2)
            await server.start()
            try:
                for job_id in job_ids:
                    record = await _wait_terminal(server, job_id)
                    assert record.state == "succeeded"
                # Replayed ids must not be reissued to new submissions.
                fresh = await server.submit(dict(MICRO_JOB, seeds=99))
                assert fresh["id"] not in job_ids
            finally:
                await server.stop()

        job_ids = asyncio.run(before_crash())
        asyncio.run(after_restart(job_ids))

    def test_restart_serves_finished_results_from_journal(self, tmp_path):
        journal = str(tmp_path / "jobs.jsonl")

        async def first_life():
            server = JobServer(journal, job_workers=1)
            await server.start()
            response = await server.submit(dict(MICRO_JOB))
            await _wait_terminal(server, response["id"])
            await server.stop()
            return response["id"]

        async def second_life(job_id):
            server = JobServer(journal, job_workers=1)
            await server.start()
            try:
                again = await server.submit(dict(MICRO_JOB))
                assert again["id"] == job_id
                assert again.get("cached")
                record = server.records[job_id]
                assert record.result["runs"] == 1
                assert server.stats.executions == 0
            finally:
                await server.stop()

        job_id = asyncio.run(first_life())
        asyncio.run(second_life(job_id))


class TestWireProtocol:
    @staticmethod
    async def _roundtrip(server, payload):
        reader, writer = await asyncio.open_connection(
            server.host, server.port
        )
        try:
            writer.write((json.dumps(payload) + "\n").encode())
            await writer.drain()
            line = await reader.readline()
            return json.loads(line)
        finally:
            writer.close()
            await writer.wait_closed()

    def test_core_ops(self, tmp_path):
        async def scenario():
            server = JobServer(str(tmp_path / "jobs.jsonl"), job_workers=1)
            await server.start()
            try:
                assert (await self._roundtrip(server, {"op": "ping"}))["ok"]
                submitted = await self._roundtrip(
                    server, {"op": "submit", "job": dict(MICRO_JOB)}
                )
                assert submitted["ok"]
                await _wait_terminal(server, submitted["id"])
                status = await self._roundtrip(
                    server, {"op": "status", "id": submitted["id"]}
                )
                assert status["job"]["state"] == "succeeded"
                stats = await self._roundtrip(server, {"op": "stats"})
                assert stats["stats"]["completed"] == 1
            finally:
                await server.stop()

        asyncio.run(scenario())

    def test_malformed_requests_get_structured_errors(self, tmp_path):
        async def scenario():
            server = JobServer(str(tmp_path / "jobs.jsonl"), job_workers=0)
            await server.start()
            try:
                unknown = await self._roundtrip(server, {"op": "frobnicate"})
                assert unknown["error"] == "bad_request"
                missing = await self._roundtrip(
                    server, {"op": "status", "id": "job-999999"}
                )
                assert missing["error"] == "not_found"
                no_job = await self._roundtrip(server, {"op": "submit"})
                assert no_job["error"] == "bad_request"

                reader, writer = await asyncio.open_connection(
                    server.host, server.port
                )
                try:
                    writer.write(b"this is not json\n")
                    await writer.drain()
                    garbled = json.loads(await reader.readline())
                    assert garbled["error"] == "bad_request"
                finally:
                    writer.close()
                    await writer.wait_closed()
            finally:
                await server.stop()

        asyncio.run(scenario())

    def test_wait_streams_progress_then_terminal_record(self, tmp_path):
        async def scenario():
            server = JobServer(
                str(tmp_path / "jobs.jsonl"),
                job_workers=1,
                retry_policy=RetryPolicy(max_retries=1, base_delay_s=0.01),
            )
            await server.start()
            try:
                # Park a filler job on the lone worker first: the doomed
                # job stays pending until after the wait subscription
                # below is live, so no lifecycle event can be missed.
                await server.submit(dict(MICRO_JOB))
                submitted = await server.submit(dict(DOOMED_JOB))
                reader, writer = await asyncio.open_connection(
                    server.host, server.port
                )
                try:
                    writer.write(
                        (json.dumps({"op": "wait", "id": submitted["id"]})
                         + "\n").encode()
                    )
                    await writer.drain()
                    payloads = []
                    while True:
                        line = await asyncio.wait_for(
                            reader.readline(), timeout=30.0
                        )
                        payload = json.loads(line)
                        payloads.append(payload)
                        if "ok" in payload:
                            break
                finally:
                    writer.close()
                    await writer.wait_closed()
                events = [p["event"] for p in payloads if "event" in p]
                assert "started" in events
                assert "retried" in events
                assert "failed" in events
                final = payloads[-1]
                assert final["ok"] and final["job"]["state"] == "failed"
            finally:
                await server.stop()

        asyncio.run(scenario())


class TestTelemetry:
    def test_job_lifecycle_hits_the_telemetry_bus(self, tmp_path):
        async def scenario():
            server = JobServer(
                str(tmp_path / "jobs.jsonl"),
                job_workers=1,
                retry_policy=RetryPolicy(max_retries=1, base_delay_s=0.01),
            )
            await server.start()
            try:
                ok = await server.submit(dict(MICRO_JOB))
                await _wait_terminal(server, ok["id"])
                doomed = await server.submit(dict(DOOMED_JOB))
                await _wait_terminal(server, doomed["id"])
            finally:
                await server.stop()

        recorder = TelemetryRecorder()
        with use_recorder(recorder):
            asyncio.run(scenario())
        kinds = recorder.events.kinds()
        assert kinds[EventKind.JOB_SUBMITTED] == 2
        assert kinds[EventKind.JOB_STARTED] == 3  # 1 + (1 try + 1 retry)
        assert kinds[EventKind.JOB_RETRIED] == 1
        assert kinds[EventKind.JOB_COMPLETED] == 2
        assert recorder.metrics.counter("serve.job_completed").value == 2


class TestBlockingClient:
    """Blocking-client tests: the server runs on the shared conftest
    thread harness (``server_thread_cls``)."""

    def test_submit_wait_and_stats(self, tmp_path, server_thread_cls):
        with server_thread_cls(
            str(tmp_path / "jobs.jsonl"), job_workers=2
        ) as server:
            client = JobClient(port=server.port, timeout_s=60.0)
            assert client.ping()
            submitted = client.submit(dict(MICRO_JOB))
            seen = []
            record = client.wait(submitted["id"], on_event=seen.append)
            assert record["state"] == "succeeded"
            # Events only stream if the subscription won the race with
            # the (fast) job; when it did, they must be well-formed.
            assert all("event" in event and "t" in event for event in seen)
            assert client.status(submitted["id"])["state"] == "succeeded"
            assert client.stats()["completed"] == 1

    def test_overload_raises_server_error(self, tmp_path, server_thread_cls):
        with server_thread_cls(
            str(tmp_path / "jobs.jsonl"),
            job_workers=0,
            queue_limit=2,
            shed_threshold=1.0,
        ) as server:
            client = JobClient(port=server.port)
            vip = dict(MICRO_JOB, priority="interactive")
            client.submit(dict(vip, seeds=1))
            client.submit(dict(vip, seeds=2))
            with pytest.raises(ServerError) as excinfo:
                client.submit(dict(vip, seeds=3))
            assert excinfo.value.error == "overload"
            assert excinfo.value.payload["retry_after_s"] > 0

    def test_shutdown_op_stops_the_server(self, tmp_path, server_thread_cls):
        import time

        with server_thread_cls(
            str(tmp_path / "jobs.jsonl"), job_workers=1
        ) as server:
            client = JobClient(port=server.port)
            client.shutdown()
            deadline = time.monotonic() + 30.0
            while not server._stopped.is_set():
                if time.monotonic() > deadline:
                    raise AssertionError("server did not stop after shutdown")
                time.sleep(0.01)
