"""CLI coverage for ``repro serve`` / ``repro submit`` / ``repro jobs``."""

import io
import json
import os
import subprocess
import sys
import time

import pytest

from repro.cli import build_parser, command_jobs, command_submit
from repro.serve import JobClient

MICRO_ARGS = dict(seeds=1, duration_s=0.01)


class TestParser:
    def test_serve_arguments(self):
        arguments = build_parser().parse_args(
            ["serve", "--port", "0", "--journal", "j.jsonl",
             "--job-workers", "4", "--queue-limit", "16",
             "--shed-threshold", "0.5", "--max-retries", "1",
             "--backoff-s", "0.2", "--deadline-s", "30", "--no-sync"]
        )
        assert arguments.command == "serve"
        assert arguments.port == 0
        assert arguments.journal == "j.jsonl"
        assert arguments.job_workers == 4
        assert arguments.queue_limit == 16
        assert arguments.shed_threshold == 0.5
        assert arguments.no_sync

    def test_submit_arguments(self):
        arguments = build_parser().parse_args(
            ["submit", "fig14", "--port", "1234", "--seeds", "3",
             "--priority", "interactive", "--wait",
             "--fault", "probe_loss:0.1"]
        )
        assert arguments.command == "submit"
        assert arguments.experiment == "fig14"
        assert arguments.priority == "interactive"
        assert arguments.wait

    def test_submit_experiment_is_optional(self):
        arguments = build_parser().parse_args(["submit"])
        assert arguments.experiment is None

    def test_submit_rejects_unknown_priority(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["submit", "--priority", "vip"])

    def test_jobs_arguments(self):
        arguments = build_parser().parse_args(
            ["jobs", "--port", "1234", "--id", "job-000001"]
        )
        assert arguments.command == "jobs"
        assert arguments.job_id == "job-000001"


class TestSubmitCommand:
    def test_submit_and_wait_round_trip(self, tmp_path, server_thread_cls):
        with server_thread_cls(
            str(tmp_path / "jobs.jsonl"), job_workers=2
        ) as server:
            out = io.StringIO()
            json_path = str(tmp_path / "record.json")
            status = command_submit(
                port=server.port, wait=True, json_path=json_path,
                out=out, **MICRO_ARGS,
            )
            assert status == 0
            text = out.getvalue()
            assert "job job-000001 pending" in text
            assert "job job-000001 succeeded" in text
            record = json.load(open(json_path, encoding="utf-8"))
            assert record["state"] == "succeeded"
            assert record["result"]["runs"] == 1

    def test_duplicate_submission_reports_cache(
        self, tmp_path, server_thread_cls
    ):
        with server_thread_cls(
            str(tmp_path / "jobs.jsonl"), job_workers=2
        ) as server:
            first = io.StringIO()
            assert command_submit(
                port=server.port, wait=True, out=first, **MICRO_ARGS
            ) == 0
            again = io.StringIO()
            assert command_submit(
                port=server.port, out=again, **MICRO_ARGS
            ) == 0
            assert "(cached)" in again.getvalue()

    def test_overload_exits_3_with_reason(self, tmp_path, server_thread_cls):
        with server_thread_cls(
            str(tmp_path / "jobs.jsonl"),
            job_workers=0,
            queue_limit=2,
            shed_threshold=1.0,
        ) as server:
            for seeds in (1, 2):
                assert command_submit(
                    port=server.port, seeds=seeds,
                    priority="interactive", out=io.StringIO(),
                ) == 0
            out = io.StringIO()
            status = command_submit(
                port=server.port, seeds=3, priority="interactive", out=out,
            )
            assert status == 3
            assert "overloaded" in out.getvalue()
            assert "queue 2/2" in out.getvalue()

    def test_unreachable_server_exits_2(self, tmp_path):
        out = io.StringIO()
        # An unbound ephemeral-range port: connection refused.
        status = command_submit(port=1, out=out, **MICRO_ARGS)
        assert status == 2
        assert "cannot reach server" in out.getvalue()

    def test_bad_spec_never_touches_the_network(self):
        out = io.StringIO()
        status = command_submit(port=1, seeds=0, out=out)
        assert status == 2
        assert "seeds" in out.getvalue()


class TestJobsCommand:
    def test_stats_and_status(self, tmp_path, server_thread_cls):
        with server_thread_cls(
            str(tmp_path / "jobs.jsonl"), job_workers=2
        ) as server:
            out = io.StringIO()
            assert command_submit(
                port=server.port, wait=True, out=out, **MICRO_ARGS
            ) == 0
            stats_out = io.StringIO()
            assert command_jobs(port=server.port, out=stats_out) == 0
            stats = json.loads(stats_out.getvalue())
            assert stats["completed"] == 1
            assert stats["jobs_per_second"] > 0
            status_out = io.StringIO()
            assert command_jobs(
                port=server.port, job_id="job-000001", out=status_out
            ) == 0
            assert json.loads(status_out.getvalue())["state"] == "succeeded"

    def test_unknown_job_exits_2(self, tmp_path, server_thread_cls):
        with server_thread_cls(
            str(tmp_path / "jobs.jsonl"), job_workers=0
        ) as server:
            out = io.StringIO()
            assert command_jobs(
                port=server.port, job_id="job-9", out=out
            ) == 2
            assert "error" in out.getvalue()


class TestServeCommand:
    """End-to-end: the real CLI process, shut down over the wire."""

    def test_serve_process_round_trip(self, tmp_path):
        ready_file = tmp_path / "ready"
        journal = tmp_path / "jobs.jsonl"
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src)
        process = subprocess.Popen(
            [sys.executable, "-c",
             "from repro.cli import main; raise SystemExit(main())",
             "serve", "--port", "0", "--journal", str(journal),
             "--job-workers", "1", "--ready-file", str(ready_file)],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
        )
        try:
            deadline = time.monotonic() + 60.0
            while not ready_file.exists():
                assert process.poll() is None, (
                    f"server died early:\n"
                    f"{process.stdout.read().decode(errors='replace')}"
                )
                assert time.monotonic() < deadline, "server never came up"
                time.sleep(0.05)
            port = int(ready_file.read_text().strip().rsplit(":", 1)[1])
            client = JobClient(port=port, timeout_s=60.0)
            submitted = client.submit(
                {"kind": "ensemble", "seeds": 1, "duration_s": 0.01}
            )
            record = client.wait(submitted["id"], timeout_s=60.0)
            assert record["state"] == "succeeded"
            client.shutdown()
            assert process.wait(timeout=60.0) == 0
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=30.0)
        assert journal.exists()
