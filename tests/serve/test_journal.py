"""Journal: durable append, crash-tolerant replay, resume semantics."""

import json

import pytest

from repro.serve import JobJournal, JobSpec, JobState, job_key, replay_journal


def _submit(journal, job_id, t=0.0, **spec_kwargs):
    spec = JobSpec(kind="ensemble", **spec_kwargs)
    journal.append(
        "submit", id=job_id, key=job_key(spec), t=t, job=spec.to_dict()
    )
    return spec


class TestAppend:
    def test_one_json_line_per_op(self, tmp_path):
        path = str(tmp_path / "jobs.jsonl")
        with JobJournal(path) as journal:
            _submit(journal, "job-1")
            journal.append("start", id="job-1", attempt=1, t=1.0)
        lines = open(path, encoding="utf-8").read().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[0])["op"] == "submit"
        assert json.loads(lines[1]) == {
            "attempt": 1, "id": "job-1", "op": "start", "t": 1.0,
        }

    def test_unknown_op_rejected(self, tmp_path):
        journal = JobJournal(str(tmp_path / "jobs.jsonl"))
        with pytest.raises(ValueError, match="unknown journal op"):
            journal.append("explode", id="job-1")

    def test_creates_parent_directories(self, tmp_path):
        path = tmp_path / "nested" / "deep" / "jobs.jsonl"
        with JobJournal(str(path)) as journal:
            _submit(journal, "job-1")
        assert path.exists()


class TestReplay:
    def test_missing_file_is_empty(self, tmp_path):
        records, resumable = replay_journal(str(tmp_path / "absent.jsonl"))
        assert records == {}
        assert resumable == []

    def test_full_lifecycle_replay(self, tmp_path):
        path = str(tmp_path / "jobs.jsonl")
        with JobJournal(path, sync=False) as journal:
            spec = _submit(journal, "job-1", t=0.5, seeds=3)
            journal.append("coalesce", id="job-1", t=0.6)
            journal.append("start", id="job-1", attempt=1, t=1.0)
            journal.append(
                "retry", id="job-1", attempt=1, delay_s=0.1,
                error="boom", t=2.0,
            )
            journal.append("start", id="job-1", attempt=2, t=3.0)
            journal.append(
                "done", id="job-1", state="succeeded",
                result={"runs": 3}, t=4.0,
            )
        records, resumable = replay_journal(path)
        assert resumable == []
        record = records["job-1"]
        assert record.state == JobState.SUCCEEDED
        assert record.spec == spec
        assert record.submissions == 2
        assert record.attempts == 2
        assert record.submitted_at_s == 0.5
        assert record.finished_at_s == 4.0
        assert record.result == {"runs": 3}

    def test_pending_and_running_jobs_resume_in_order(self, tmp_path):
        path = str(tmp_path / "jobs.jsonl")
        with JobJournal(path, sync=False) as journal:
            _submit(journal, "job-1", t=0.0, seeds=2)
            _submit(journal, "job-2", t=1.0, seeds=3)
            _submit(journal, "job-3", t=2.0, seeds=4)
            # job-2 was mid-run at the crash; job-1 finished; job-3 queued.
            journal.append("start", id="job-2", attempt=1, t=3.0)
            journal.append("start", id="job-1", attempt=1, t=3.0)
            journal.append("done", id="job-1", state="succeeded", t=4.0)
        records, resumable = replay_journal(path)
        assert resumable == ["job-2", "job-3"]
        # The interrupted run resumes as pending, not stuck running.
        assert records["job-2"].state == JobState.PENDING
        assert records["job-3"].state == JobState.PENDING

    def test_shed_is_terminal(self, tmp_path):
        path = str(tmp_path / "jobs.jsonl")
        with JobJournal(path, sync=False) as journal:
            _submit(journal, "job-1")
            journal.append("shed", id="job-1", reason="queue full", t=1.0)
        records, resumable = replay_journal(path)
        assert resumable == []
        assert records["job-1"].state == JobState.SHED
        assert records["job-1"].error == "queue full"

    def test_torn_final_line_is_dropped(self, tmp_path):
        path = str(tmp_path / "jobs.jsonl")
        with JobJournal(path, sync=False) as journal:
            _submit(journal, "job-1")
        with open(path, "a", encoding="utf-8") as stream:
            stream.write('{"op": "done", "id": "job-1", "sta')  # kill -9 here
        records, resumable = replay_journal(path)
        assert resumable == ["job-1"]
        assert records["job-1"].state == JobState.PENDING

    def test_corrupt_interior_line_is_loud(self, tmp_path):
        path = str(tmp_path / "jobs.jsonl")
        with JobJournal(path, sync=False) as journal:
            _submit(journal, "job-1")
        with open(path, "a", encoding="utf-8") as stream:
            stream.write("not json\n")
            stream.write('{"op": "start", "id": "job-1", "attempt": 1, "t": 1.0}\n')
        with pytest.raises(ValueError, match="corrupt journal line"):
            replay_journal(path)

    def test_op_for_unknown_job_is_loud(self, tmp_path):
        path = str(tmp_path / "jobs.jsonl")
        with JobJournal(path, sync=False) as journal:
            journal.append("start", id="ghost", attempt=1, t=1.0)
        with pytest.raises(ValueError, match="unknown job"):
            replay_journal(path)
