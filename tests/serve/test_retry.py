"""Retry policy: deterministic jitter, exponential growth, deadlines."""

import pytest

from repro.serve import RetryPolicy


class TestDelay:
    def test_deterministic_per_key(self):
        policy = RetryPolicy(base_delay_s=0.1)
        assert policy.delay_s("k1", 1) == policy.delay_s("k1", 1)
        # Different keys de-synchronize; different attempts too.
        assert policy.delay_s("k1", 1) != policy.delay_s("k2", 1)
        assert policy.delay_s("k1", 1) != policy.delay_s("k1", 2)

    def test_exponential_growth_within_jitter_band(self):
        policy = RetryPolicy(
            base_delay_s=0.1, max_delay_s=100.0, jitter_frac=0.5
        )
        for attempt in range(1, 6):
            base = 0.1 * 2 ** (attempt - 1)
            delay = policy.delay_s("key", attempt)
            assert base <= delay <= 1.5 * base

    def test_cap(self):
        policy = RetryPolicy(base_delay_s=1.0, max_delay_s=2.0)
        assert policy.delay_s("key", 10) == 2.0

    def test_zero_jitter_is_pure_exponential(self):
        policy = RetryPolicy(
            base_delay_s=0.1, max_delay_s=100.0, jitter_frac=0.0
        )
        assert policy.delay_s("any", 3) == pytest.approx(0.4)

    def test_attempt_must_be_positive(self):
        with pytest.raises(ValueError, match="attempt"):
            RetryPolicy().delay_s("key", 0)


class TestShouldRetry:
    def test_attempt_budget(self):
        policy = RetryPolicy(max_retries=2)
        assert policy.should_retry("k", 1, elapsed_s=0.0)
        assert policy.should_retry("k", 2, elapsed_s=0.0)
        assert not policy.should_retry("k", 3, elapsed_s=0.0)

    def test_deadline_budget(self):
        policy = RetryPolicy(
            max_retries=10, base_delay_s=1.0, max_delay_s=1.0,
            jitter_frac=0.0, deadline_s=5.0,
        )
        assert policy.should_retry("k", 1, elapsed_s=0.0)
        # Backoff alone would cross the deadline: not worth queueing.
        assert not policy.should_retry("k", 1, elapsed_s=4.5)

    def test_job_deadline_overrides_policy_default(self):
        policy = RetryPolicy(
            max_retries=10, base_delay_s=1.0, max_delay_s=1.0,
            jitter_frac=0.0, deadline_s=100.0,
        )
        assert not policy.should_retry(
            "k", 1, elapsed_s=1.0, job_deadline_s=1.5
        )
        assert policy.should_retry("k", 1, elapsed_s=1.0)

    def test_no_deadline_means_attempts_only(self):
        policy = RetryPolicy(max_retries=1)
        assert policy.should_retry("k", 1, elapsed_s=1e9)


class TestValidation:
    def test_bad_parameters_rejected(self):
        with pytest.raises(ValueError, match="max_retries"):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError, match="non-negative"):
            RetryPolicy(base_delay_s=-0.1)
        with pytest.raises(ValueError, match="max_delay_s"):
            RetryPolicy(base_delay_s=1.0, max_delay_s=0.5)
        with pytest.raises(ValueError, match="jitter_frac"):
            RetryPolicy(jitter_frac=1.5)
        with pytest.raises(ValueError, match="deadline_s"):
            RetryPolicy(deadline_s=0.0)
