"""Shared harness: run a JobServer on a background thread's event loop.

pytest-asyncio is not a dependency, so synchronous tests (blocking
client, CLI commands) get a real server via :class:`ServerThread`
instead of an async fixture.
"""

import asyncio
import threading

import pytest

from repro.serve import JobServer


class ServerThread:
    """Context manager: a live JobServer on a daemon thread."""

    def __init__(self, journal_path, **kwargs):
        self.server = JobServer(journal_path, **kwargs)
        self._ready = threading.Event()
        self._loop = None
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        self._loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self._loop)
        self._loop.run_until_complete(self.server.start())
        self._ready.set()
        self._loop.run_until_complete(self.server.wait_stopped())
        self._loop.close()

    def __enter__(self):
        self._thread.start()
        if not self._ready.wait(timeout=30.0):
            raise RuntimeError("server thread failed to start")
        return self.server

    def __exit__(self, *_exc):
        if not self.server._stopped.is_set():
            asyncio.run_coroutine_threadsafe(
                self.server.stop(), self._loop
            ).result(timeout=30.0)
        self._thread.join(timeout=30.0)


@pytest.fixture
def server_thread_cls():
    return ServerThread
