"""Tests for the CLI and experiment registry."""

import io

import pytest

from repro.cli import build_parser, command_list, command_run
from repro.experiments.registry import (
    REGISTRY,
    experiment_ids,
    get_experiment,
)


class TestRegistry:
    def test_all_paper_figures_registered(self):
        ids = experiment_ids()
        for expected in (
            "fig04", "fig08", "fig11", "fig14", "fig15", "fig16",
            "fig17", "fig18", "fig19", "reliability", "ablations",
        ):
            assert expected in ids

    def test_get_experiment(self):
        experiment = get_experiment("fig14")
        assert "Fig. 14" in experiment.title

    def test_unknown_experiment_lists_known(self):
        with pytest.raises(KeyError, match="fig14"):
            get_experiment("fig99")

    def test_entries_are_callable(self):
        for experiment in REGISTRY.values():
            assert callable(experiment.run_report)


class TestCli:
    def test_list(self):
        out = io.StringIO()
        assert command_list(out=out) == 0
        text = out.getvalue()
        assert "fig14" in text
        assert "Fig. 18" in text

    def test_run_fast_experiment(self):
        out = io.StringIO()
        assert command_run("reliability", out=out) == 0
        text = out.getvalue()
        assert "reliability model" in text
        assert "completed in" in text

    def test_run_unknown(self):
        out = io.StringIO()
        assert command_run("fig99", out=out) == 2
        assert "error" in out.getvalue()

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_parser_run(self):
        arguments = build_parser().parse_args(["run", "fig14"])
        assert arguments.command == "run"
        assert arguments.experiment == "fig14"


class TestStructuredExperimentApi:
    def test_run_returns_structured_result(self):
        from repro.experiments.registry import (
            ExperimentConfig,
            ExperimentResult,
        )

        experiment = get_experiment("reliability")
        result = experiment.run()
        assert isinstance(result, ExperimentResult)
        assert result.identifier == "reliability"
        assert result.config == ExperimentConfig()
        assert set(result.data) == {"analytic", "monte_carlo"}
        assert result.elapsed_s > 0

    def test_render_accepts_result_or_data(self):
        experiment = get_experiment("reliability")
        result = experiment.run()
        assert experiment.render(result) == experiment.render(result.data)
        assert "1 - beta^k" in experiment.render(result)

    def test_run_report_composes_but_is_deprecated(self):
        experiment = get_experiment("reliability")
        with pytest.warns(DeprecationWarning, match="run_report"):
            report = experiment.run_report()
        assert "1 - beta^k" in report

    def test_config_validation(self):
        from repro.experiments.registry import ExperimentConfig

        with pytest.raises(ValueError):
            ExperimentConfig(seeds=0)
        with pytest.raises(ValueError):
            ExperimentConfig(workers=0)
        assert ExperimentConfig(seeds=5).seed_range(10) == range(5)
        assert ExperimentConfig().seed_range(10) == range(10)


class TestCliStructuredFlags:
    def test_parser_accepts_new_flags(self):
        arguments = build_parser().parse_args(
            ["run", "fig18", "--workers", "4", "--seeds", "32",
             "--json", "/tmp/out.json"]
        )
        assert arguments.workers == 4
        assert arguments.seeds == 32
        assert arguments.json_path == "/tmp/out.json"

    def test_parser_flag_defaults(self):
        arguments = build_parser().parse_args(["run", "fig14"])
        assert arguments.workers == 1
        assert arguments.seeds is None
        assert arguments.json_path is None

    def test_run_with_json_dump(self, tmp_path):
        import json

        target = tmp_path / "reliability.json"
        out = io.StringIO()
        assert command_run("reliability", json_path=str(target), out=out) == 0
        assert f"{target}" in out.getvalue()
        parsed = json.loads(target.read_text())
        assert parsed["identifier"] == "reliability"
        assert parsed["config"] == {
            "seeds": None, "workers": 1, "telemetry": False,
            "faults": [], "scenario": None, "backend": None,
        }
        assert "analytic" in parsed["data"]

    def test_run_rejects_bad_workers(self):
        out = io.StringIO()
        assert command_run("reliability", workers=0, out=out) == 2
        assert "error" in out.getvalue()


class TestCliScenarioFlag:
    def test_parser_accepts_scenario(self):
        arguments = build_parser().parse_args(
            ["run", "--scenario", "network-smoke"]
        )
        assert arguments.experiment is None
        assert arguments.scenario == "network-smoke"

    def test_scenario_defaults_to_network_scale(self):
        out = io.StringIO()
        status = command_run(None, scenario="network-smoke", out=out)
        assert status == 0
        text = out.getvalue()
        assert "network-scale" in text
        assert "completed in" in text

    def test_unknown_scenario_exits_2(self):
        out = io.StringIO()
        status = command_run(None, scenario="no-such-scenario", out=out)
        assert status == 2
        assert "error" in out.getvalue()

    def test_scenario_from_json_file(self, tmp_path):
        import json

        from repro.sim.spec import ScenarioSpec

        spec = ScenarioSpec(
            name="cli-file", cells=2, users=2, duration_s=0.05
        )
        path = tmp_path / "cli-file.json"
        path.write_text(json.dumps(spec.to_dict()))
        out = io.StringIO()
        status = command_run(None, scenario=str(path), out=out)
        assert status == 0
        assert "network-scale" in out.getvalue()

    def test_no_experiment_and_no_scenario_exits_2(self):
        out = io.StringIO()
        assert command_run(None, out=out) == 2
        assert "error" in out.getvalue()


class TestCliFaultFlags:
    def test_parser_accepts_fault_flags(self):
        arguments = build_parser().parse_args(
            ["run", "fig18", "--fault", "probe_loss:0.1",
             "--fault", "slow_run:1.0:delay_s=0.5",
             "--faults", "/tmp/campaign.json"]
        )
        assert arguments.faults == ["probe_loss:0.1", "slow_run:1.0:delay_s=0.5"]
        assert arguments.faults_path == "/tmp/campaign.json"

    def test_parser_fault_defaults(self):
        arguments = build_parser().parse_args(["run", "fig14"])
        assert arguments.faults is None
        assert arguments.faults_path is None

    def test_bad_fault_text_exits_2(self):
        out = io.StringIO()
        status = command_run(
            "reliability", fault_args=["bogus:0.5"], out=out
        )
        assert status == 2
        assert "unknown fault kind" in out.getvalue()

    def test_bad_fault_rate_exits_2(self):
        out = io.StringIO()
        status = command_run(
            "reliability", fault_args=["probe_loss:not-a-number"], out=out
        )
        assert status == 2
        assert "error" in out.getvalue()

    def test_missing_faults_file_exits_2(self):
        out = io.StringIO()
        status = command_run(
            "reliability", faults_path="/nonexistent/faults.json", out=out
        )
        assert status == 2
        assert "cannot read" in out.getvalue()

    def test_faults_file_threaded_into_config(self, tmp_path):
        import json

        campaign = tmp_path / "faults.json"
        campaign.write_text(json.dumps([{"kind": "probe_loss", "rate": 0.0}]))
        out = io.StringIO()
        # reliability ignores faults, but the config must build cleanly.
        status = command_run(
            "reliability", faults_path=str(campaign), out=out
        )
        assert status == 0
        assert "completed in" in out.getvalue()


class TestCliBackendFlag:
    @pytest.fixture(autouse=True)
    def _clean_env(self, monkeypatch):
        from repro.perf.backend import BACKEND_ENV_VAR

        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)

    def test_parser_accepts_backend(self):
        arguments = build_parser().parse_args(
            ["run", "fig14", "--backend", "numba"]
        )
        assert arguments.backend == "numba"

    def test_parser_backend_defaults_to_none(self):
        arguments = build_parser().parse_args(["run", "fig14"])
        assert arguments.backend is None

    def test_parser_rejects_unknown_backend(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "fig14", "--backend", "cuda"])

    def test_config_validates_backend(self):
        from repro.experiments.registry import ExperimentConfig

        assert ExperimentConfig(backend=" NumPy ").backend == "numpy"
        with pytest.raises(ValueError, match="unknown compute backend"):
            ExperimentConfig(backend="cuda")

    def test_run_exports_env_for_pool_workers(self, monkeypatch):
        import os

        from repro.perf.backend import BACKEND_ENV_VAR

        out = io.StringIO()
        status = command_run("reliability", backend="numpy", out=out)
        assert status == 0
        assert os.environ.get(BACKEND_ENV_VAR) == "numpy"
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)

    def test_run_without_backend_leaves_env_alone(self):
        import os

        from repro.perf.backend import BACKEND_ENV_VAR

        out = io.StringIO()
        assert command_run("reliability", out=out) == 0
        assert BACKEND_ENV_VAR not in os.environ

    def test_experiment_run_threads_backend_through(self):
        from repro.experiments.registry import (
            ExperimentConfig,
            get_experiment,
        )
        from repro.perf.backend import get_backend

        seen = {}
        experiment = get_experiment("reliability")
        probe = experiment.__class__(
            identifier="probe",
            title="probe",
            runner=lambda config: seen.update(
                backend=get_backend().name
            ) or {},
            renderer=lambda data: "",
        )
        probe.run(ExperimentConfig(backend="numpy"))
        assert seen["backend"] == "numpy"

    def test_trace_includes_backend_counters(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        out = io.StringIO()
        status = command_run(
            "fig11", trace_path=str(trace), out=out
        )
        assert status == 0
        import json

        events = [
            json.loads(line)
            for line in trace.read_text().splitlines()
            if line
        ]
        perf = [e for e in events if e.get("kind") == "perf_counters"]
        assert perf, "expected a perf_counters trace event"
        names = set(perf[-1].get("fields", perf[-1]))
        assert any(n.startswith("perf.backend.numpy.") for n in names)
