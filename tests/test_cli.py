"""Tests for the CLI and experiment registry."""

import io

import pytest

from repro.cli import build_parser, command_list, command_run
from repro.experiments.registry import (
    REGISTRY,
    experiment_ids,
    get_experiment,
)


class TestRegistry:
    def test_all_paper_figures_registered(self):
        ids = experiment_ids()
        for expected in (
            "fig04", "fig08", "fig11", "fig14", "fig15", "fig16",
            "fig17", "fig18", "fig19", "reliability", "ablations",
        ):
            assert expected in ids

    def test_get_experiment(self):
        experiment = get_experiment("fig14")
        assert "Fig. 14" in experiment.title

    def test_unknown_experiment_lists_known(self):
        with pytest.raises(KeyError, match="fig14"):
            get_experiment("fig99")

    def test_entries_are_callable(self):
        for experiment in REGISTRY.values():
            assert callable(experiment.run_report)


class TestCli:
    def test_list(self):
        out = io.StringIO()
        assert command_list(out=out) == 0
        text = out.getvalue()
        assert "fig14" in text
        assert "Fig. 18" in text

    def test_run_fast_experiment(self):
        out = io.StringIO()
        assert command_run("reliability", out=out) == 0
        text = out.getvalue()
        assert "reliability model" in text
        assert "completed in" in text

    def test_run_unknown(self):
        out = io.StringIO()
        assert command_run("fig99", out=out) == 2
        assert "error" in out.getvalue()

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_parser_run(self):
        arguments = build_parser().parse_args(["run", "fig14"])
        assert arguments.command == "run"
        assert arguments.experiment == "fig14"
