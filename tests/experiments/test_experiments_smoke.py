"""Smoke + determinism tests for the experiment harness.

The heavyweight sweeps are exercised by the benchmarks; these tests pin
down that the fast experiments run, return well-formed data, are
deterministic under a fixed seed, and that their reports mention the
paper landmarks they claim to reproduce.
"""

import numpy as np
import pytest

from repro.experiments import (
    ablations,
    fig04_reflectors,
    fig08_delay_array,
    fig11_superres,
    fig14_sensitivity,
    fig15_combining,
    reliability_model,
)


class TestDeterminism:
    def test_fig04_deterministic(self):
        a = fig04_reflectors.run_attenuation_study(30, seed=7)
        b = fig04_reflectors.run_attenuation_study(30, seed=7)
        assert a.indoor_samples_db == pytest.approx(b.indoor_samples_db)

    def test_fig11_deterministic(self):
        a = fig11_superres.run_mse_sweep(num_trials=5, seed=3)
        b = fig11_superres.run_mse_sweep(num_trials=5, seed=3)
        assert a.mse_db == pytest.approx(b.mse_db)

    def test_fig15_gains_deterministic(self):
        a = fig15_combining.run_snr_gains(seed=5, num_trials=4)
        b = fig15_combining.run_snr_gains(seed=5, num_trials=4)
        assert a.gains_db == b.gains_db


class TestReports:
    def test_fig04_report_mentions_paper_values(self):
        report = fig04_reflectors.report(
            fig04_reflectors.run_attenuation_study(30, seed=0)
        )
        assert "7.2 dB" in report and "5.0 dB" in report

    def test_fig08_report_lists_all_variants(self):
        report = fig08_delay_array.report(
            fig08_delay_array.run_band_responses(num_frequencies=51)
        )
        assert "delay-optimized" in report
        assert "uncompensated" in report
        assert "single-beam" in report

    def test_fig14_report_mentions_landmark(self):
        report = fig14_sensitivity.report(
            fig14_sensitivity.run_sensitivity_grid(
                num_phases=25, num_amplitudes=9
            )
        )
        assert "1.76 dB" in report

    def test_reliability_report_rows(self):
        report = reliability_model.report(
            reliability_model.run_analytic_curves(),
            reliability_model.run_monte_carlo_check(betas=(0.3,)),
        )
        assert "1 - beta^k" in report


class TestShapes:
    def test_fig04_heatmap_shape(self):
        heatmap = fig04_reflectors.run_motion_heatmap(
            num_times=4, num_angles=11, seed=0
        )
        assert heatmap.shape == (4, 11)

    def test_fig08_series_lengths(self):
        result = fig08_delay_array.run_band_responses(num_frequencies=41)
        for series in result.responses_db.values():
            assert series.shape == result.frequencies_hz.shape

    def test_fig14_grid_shape(self):
        grid = fig14_sensitivity.run_sensitivity_grid(
            num_phases=13, num_amplitudes=5
        )
        assert grid.gain_db.shape == (5, 13)

    def test_ablation_quantization_keys(self):
        losses = ablations.run_quantization_ablation((2, 6))
        assert set(losses) == {2, 6}
        assert losses[6] <= losses[2]

    def test_fig11_sweep_custom_tofs(self):
        sweep = fig11_superres.run_mse_sweep(
            relative_tofs_s=np.array([1e-9, 3e-9]), num_trials=4, seed=0
        )
        assert sweep.mse_db.shape == (2,)
