"""Smoke tests for the fault_tolerance chaos-sweep experiment."""

import json

import pytest

from repro.experiments import fault_tolerance
from repro.experiments.registry import ExperimentConfig, get_experiment
from repro.faults import FaultSpec


@pytest.fixture(scope="module")
def sweep():
    return fault_tolerance.run_fault_rate_sweep(
        rates=(0.0, 0.3), seeds=range(2), duration_s=0.1
    )


class TestSweep:
    def test_shape(self, sweep):
        assert sweep["kind"] == "probe_loss"
        assert sweep["rates"] == [0.0, 0.3]
        assert set(sweep["curves"]) == {"mmreliable", "reactive"}
        for points in sweep["curves"].values():
            assert [p["rate"] for p in points] == [0.0, 0.3]
            for point in points:
                assert 0.0 <= point["reliability"] <= 1.0
                assert point["completed_runs"] == 2

    def test_acceptance_zero_failures_under_chaos(self, sweep):
        # ISSUE acceptance: every run completes even at rate 0.3.
        for points in sweep["curves"].values():
            assert all(p["failed_runs"] == 0 for p in points)

    def test_json_exportable(self, sweep):
        json.dumps(sweep)  # plain scalars only

    def test_report_mentions_the_story(self, sweep):
        text = fault_tolerance.report(sweep)
        assert "probe_loss" in text
        assert "mmReliable" in text
        assert "reactive" in text
        assert "0.30" in text


class TestRegistryIntegration:
    def test_registered(self):
        experiment = get_experiment("fault_tolerance")
        assert "fault" in experiment.title

    def test_runs_through_registry(self):
        experiment = get_experiment("fault_tolerance")
        result = experiment.run(ExperimentConfig(seeds=2))
        assert "sweep" in result.data
        assert "reliability" in experiment.render(result)

    def test_cli_fault_selects_kind(self):
        experiment = get_experiment("fault_tolerance")
        config = ExperimentConfig(
            seeds=2, faults=(FaultSpec(kind="feedback_dropout", rate=0.1),)
        )
        result = experiment.run(config)
        assert result.data["sweep"]["kind"] == "feedback_dropout"


class TestConfigFaults:
    def test_faults_validated(self):
        with pytest.raises(TypeError):
            ExperimentConfig(faults=("probe_loss:0.1",))

    def test_default_no_faults(self):
        assert ExperimentConfig().faults == ()
