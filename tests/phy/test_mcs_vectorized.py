"""Differential tests: vectorized MCS selection vs the scalar ladder."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.phy.mcs import (
    NR_MCS_TABLE,
    OUTAGE_SNR_DB,
    select_mcs,
    select_mcs_indices,
)


def scalar_index(snr_db: float) -> int:
    entry = select_mcs(snr_db)
    return -1 if entry is None else entry.index


class TestSelectMcsIndices:
    def test_matches_scalar_on_dense_sweep(self):
        snrs = np.linspace(-20.0, 40.0, 2401)
        indices = select_mcs_indices(snrs)
        expected = np.array([scalar_index(float(s)) for s in snrs])
        np.testing.assert_array_equal(indices, expected)

    def test_exact_thresholds_inclusive(self):
        thresholds = np.array([e.min_snr_db for e in NR_MCS_TABLE])
        indices = select_mcs_indices(thresholds)
        np.testing.assert_array_equal(
            indices, [e.index for e in NR_MCS_TABLE]
        )

    def test_outage_below_first_threshold(self):
        assert select_mcs_indices(np.array([OUTAGE_SNR_DB - 1e-9]))[0] == -1
        assert select_mcs_indices(np.array([-np.inf]))[0] == -1

    def test_nan_maps_to_outage(self):
        indices = select_mcs_indices(np.array([np.nan, 10.0]))
        assert indices[0] == -1 and indices[1] == scalar_index(10.0)

    def test_inf_maps_to_top_entry(self):
        assert select_mcs_indices(np.array([np.inf]))[0] == (
            NR_MCS_TABLE[-1].index
        )

    def test_scalar_input(self):
        assert select_mcs_indices(12.0) == scalar_index(12.0)

    @given(
        st.lists(
            st.floats(
                min_value=-50.0, max_value=50.0, allow_nan=False
            ),
            min_size=1,
            max_size=32,
        )
    )
    def test_property_matches_scalar(self, snrs):
        indices = select_mcs_indices(np.array(snrs))
        expected = [scalar_index(s) for s in snrs]
        np.testing.assert_array_equal(indices, expected)
