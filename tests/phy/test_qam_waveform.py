"""Tests for QAM constellations and the time-domain OFDM waveform layer."""

import numpy as np
import pytest

from repro.phy.qam import (
    MODULATION_BITS,
    bit_error_rate,
    constellation,
    demodulate,
    error_vector_magnitude,
    evm_to_snr_db,
    modulate,
)
from repro.phy.waveform import (
    LinkResult,
    OfdmWaveformConfig,
    apply_multipath,
    equalize,
    ls_channel_estimate,
    ofdm_demodulate,
    ofdm_modulate,
    run_ofdm_link,
)


class TestConstellations:
    @pytest.mark.parametrize("modulation", sorted(MODULATION_BITS))
    def test_unit_average_energy(self, modulation):
        points = constellation(modulation)
        assert np.mean(np.abs(points) ** 2) == pytest.approx(1.0)

    @pytest.mark.parametrize("modulation", sorted(MODULATION_BITS))
    def test_all_points_distinct(self, modulation):
        points = constellation(modulation)
        assert len(np.unique(np.round(points, 9))) == points.size

    def test_constellation_sizes(self):
        assert constellation("qpsk").size == 4
        assert constellation("64qam").size == 64
        assert constellation("256qam").size == 256

    def test_gray_mapping_adjacent_i_rail(self):
        # Adjacent I-levels at fixed Q differ in exactly one bit.
        points = constellation("16qam")
        bits = MODULATION_BITS["16qam"]
        side_bits = bits // 2
        for q in range(4):
            # Collect labels sorted by their I coordinate at this Q label.
            labels = [(i << side_bits) | q for i in range(4)]
            ordered = sorted(labels, key=lambda l: points[l].real)
            for a, b in zip(ordered, ordered[1:]):
                assert bin(a ^ b).count("1") == 1

    def test_unknown_modulation(self):
        with pytest.raises(ValueError, match="qpsk"):
            constellation("1024qam")


class TestModulateDemodulate:
    @pytest.mark.parametrize("modulation", sorted(MODULATION_BITS))
    def test_roundtrip_noiseless(self, modulation):
        rng = np.random.default_rng(0)
        bits = rng.integers(0, 2, 120 * MODULATION_BITS[modulation])
        symbols = modulate(bits, modulation)
        recovered = demodulate(symbols, modulation)
        assert np.array_equal(bits, recovered)

    def test_roundtrip_with_small_noise(self):
        rng = np.random.default_rng(1)
        bits = rng.integers(0, 2, 4000)
        symbols = modulate(bits, "qpsk")
        noisy = symbols + 0.05 * (
            rng.normal(size=symbols.size) + 1j * rng.normal(size=symbols.size)
        )
        assert bit_error_rate(bits, demodulate(noisy, "qpsk")) == 0.0

    def test_bit_count_validation(self):
        with pytest.raises(ValueError):
            modulate([0, 1, 1], "qpsk")
        with pytest.raises(ValueError):
            modulate([0, 2], "qpsk")


class TestEvm:
    def test_zero_for_perfect(self):
        symbols = constellation("qpsk")
        assert error_vector_magnitude(symbols, symbols) == 0.0

    def test_matches_noise_level(self):
        rng = np.random.default_rng(2)
        reference = modulate(rng.integers(0, 2, 40000), "qpsk")
        noise_std = 0.1
        received = reference + noise_std * (
            rng.normal(size=reference.size)
            + 1j * rng.normal(size=reference.size)
        ) / np.sqrt(2)
        evm = error_vector_magnitude(received, reference)
        assert evm == pytest.approx(noise_std, rel=0.05)
        assert evm_to_snr_db(evm) == pytest.approx(20.0, abs=0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            error_vector_magnitude(np.ones(2), np.ones(3))
        with pytest.raises(ValueError):
            evm_to_snr_db(0.0)
        with pytest.raises(ValueError):
            bit_error_rate([], [])


class TestOfdmWaveform:
    def test_modulate_demodulate_roundtrip(self):
        config = OfdmWaveformConfig(num_subcarriers=32, cyclic_prefix=4)
        rng = np.random.default_rng(3)
        grid = rng.normal(size=(3, 32)) + 1j * rng.normal(size=(3, 32))
        samples = ofdm_modulate(grid, config)
        assert samples.size == 3 * config.symbol_length
        recovered = ofdm_demodulate(samples, config)
        assert recovered == pytest.approx(grid)

    def test_power_preserved(self):
        config = OfdmWaveformConfig(num_subcarriers=64, cyclic_prefix=0)
        rng = np.random.default_rng(4)
        grid = (rng.normal(size=(1, 64)) + 1j * rng.normal(size=(1, 64)))
        samples = ofdm_modulate(grid, config)
        # Parseval with the sqrt(N) normalization.
        assert np.sum(np.abs(samples) ** 2) == pytest.approx(
            np.sum(np.abs(grid) ** 2)
        )

    def test_cp_makes_multipath_circular(self):
        config = OfdmWaveformConfig(num_subcarriers=32, cyclic_prefix=8)
        rng = np.random.default_rng(5)
        grid = rng.normal(size=(2, 32)) + 1j * rng.normal(size=(2, 32))
        taps = np.array([1.0, 0.0, 0.4 - 0.2j, 0.1j])
        rx = apply_multipath(ofdm_modulate(grid, config), taps)
        received = ofdm_demodulate(rx, config)
        # With CP > channel memory, the channel is a pure per-subcarrier
        # multiplication: the ratio must be identical across symbols.
        ratio0 = received[0] / grid[0]
        ratio1 = received[1] / grid[1]
        assert ratio1 == pytest.approx(ratio0, rel=1e-9)

    def test_validation(self):
        config = OfdmWaveformConfig(num_subcarriers=32, cyclic_prefix=4)
        with pytest.raises(ValueError):
            ofdm_modulate(np.ones((1, 16)), config)
        with pytest.raises(ValueError):
            ofdm_demodulate(np.ones(17), config)
        with pytest.raises(ValueError):
            OfdmWaveformConfig(num_subcarriers=16, cyclic_prefix=16)
        with pytest.raises(ValueError):
            apply_multipath(np.ones(4), np.array([]))


class TestChannelEstimation:
    def test_ls_estimate_exact(self):
        rng = np.random.default_rng(6)
        tx = np.exp(1j * 2 * np.pi * rng.random(16))
        h = rng.normal(size=16) + 1j * rng.normal(size=16)
        assert ls_channel_estimate(tx * h, tx) == pytest.approx(h)

    def test_equalize_inverts_channel(self):
        rng = np.random.default_rng(7)
        h = rng.normal(size=8) + 1j * rng.normal(size=8)
        data = rng.normal(size=(2, 8)) + 1j * rng.normal(size=(2, 8))
        assert equalize(data * h, h) == pytest.approx(data)

    def test_validation(self):
        with pytest.raises(ValueError):
            ls_channel_estimate(np.ones(4), np.ones(5))
        with pytest.raises(ValueError):
            ls_channel_estimate(np.ones(4), np.zeros(4))
        with pytest.raises(ValueError):
            equalize(np.ones((1, 4)), np.ones(5))


class TestEndToEndLink:
    def test_noiseless_link_is_error_free(self):
        taps = np.array([1.0, 0.3 - 0.1j, 0.05j])
        result = run_ofdm_link(taps, modulation="64qam", rng=0)
        assert isinstance(result, LinkResult)
        assert result.bit_error_rate == 0.0
        assert result.evm < 1e-9

    def test_noisy_link_reports_sane_snr(self):
        taps = np.array([1.0])
        noise_power = 10 ** (-20 / 10)  # 20 dB SNR at unit signal power
        result = run_ofdm_link(
            taps, modulation="qpsk", noise_power=noise_power,
            num_data_symbols=16, rng=1,
        )
        assert result.bit_error_rate < 1e-2
        # Effective SNR is 3 dB below the channel SNR: the single-pilot
        # LS channel estimate contributes noise equal to the data noise.
        assert result.snr_estimate_db == pytest.approx(17.0, abs=2.0)

    def test_low_snr_causes_errors_in_dense_qam(self):
        taps = np.array([1.0])
        result = run_ofdm_link(
            taps, modulation="256qam", noise_power=10 ** (-12 / 10),
            num_data_symbols=8, rng=2,
        )
        assert result.bit_error_rate > 0.01
