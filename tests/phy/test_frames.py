"""Tests for the NR frame schedule."""

import numpy as np
import pytest

from repro.phy.frames import (
    DEFAULT_SSB_PERIOD_S,
    FrameSchedule,
)


class TestFrameSchedule:
    def test_ssb_grid(self):
        schedule = FrameSchedule()
        times = schedule.ssb_times(0.1)
        assert times == pytest.approx(np.arange(5) * DEFAULT_SSB_PERIOD_S)

    def test_csi_rs_grid(self):
        schedule = FrameSchedule(csi_rs_period_s=5e-3)
        times = schedule.csi_rs_times(0.02)
        assert times == pytest.approx([0.0, 0.005, 0.01, 0.015])

    def test_next_csi_rs(self):
        schedule = FrameSchedule(csi_rs_period_s=5e-3)
        assert schedule.next_csi_rs(0.0) == pytest.approx(0.005)
        assert schedule.next_csi_rs(0.0049) == pytest.approx(0.005)
        assert schedule.next_csi_rs(0.005) == pytest.approx(0.010)

    def test_burst_airtime_scaling(self):
        schedule = FrameSchedule()
        # Paper: a full 64-beam burst takes 5 ms.
        assert schedule.ssb_burst_airtime_s(64) == pytest.approx(5e-3)
        assert schedule.ssb_burst_airtime_s(32) == pytest.approx(2.5e-3)

    def test_paper_25_percent_overhead(self):
        # Section 2.2: 5 ms of SSBs every 20 ms is a 25% overhead.
        schedule = FrameSchedule(ssb_period_s=20e-3)
        assert schedule.training_overhead_fraction(64) == pytest.approx(0.25)

    def test_stretched_period_drops_overhead(self):
        # Section 5.2: extending SSB periodicity to 1 s -> ~0.5%.
        schedule = FrameSchedule(ssb_period_s=1.0)
        assert schedule.training_overhead_fraction(64) == pytest.approx(
            0.005
        )

    def test_csi_rs_period_bounds(self):
        with pytest.raises(ValueError):
            FrameSchedule(csi_rs_period_s=0.1e-3)
        with pytest.raises(ValueError):
            FrameSchedule(csi_rs_period_s=100e-3)

    def test_csi_rs_slot_alignment(self):
        # 0.7 ms is not a whole number of 0.125 ms slots.
        with pytest.raises(ValueError, match="whole number of slots"):
            FrameSchedule(csi_rs_period_s=0.7e-3)

    def test_validation(self):
        schedule = FrameSchedule()
        with pytest.raises(ValueError):
            schedule.ssb_times(0.0)
        with pytest.raises(ValueError):
            schedule.csi_rs_times(-1.0)
        with pytest.raises(ValueError):
            schedule.ssb_burst_airtime_s(0)
        with pytest.raises(ValueError):
            FrameSchedule(ssb_period_s=0.0)
