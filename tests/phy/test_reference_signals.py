"""Tests for reference-signal probe accounting (Fig. 18d numbers)."""

import pytest

from repro.phy.reference_signals import (
    ProbeBudget,
    ProbeKind,
    beam_training_probes,
    beam_training_time_s,
    csi_rs_duration_s,
    maintenance_overhead_fraction,
    multibeam_maintenance_probes,
    multibeam_maintenance_time_s,
    ssb_duration_s,
)


class TestDurations:
    def test_ssb_half_millisecond(self):
        assert ssb_duration_s() == pytest.approx(0.5e-3)

    def test_csi_rs_slot(self):
        assert csi_rs_duration_s() == pytest.approx(0.125e-3)


class TestMaintenanceProbes:
    def test_two_beam_needs_three_probes(self):
        # Paper: "three channel estimates for a 2-beam multi-beam".
        assert multibeam_maintenance_probes(2) == 3

    def test_three_beam_needs_five_probes(self):
        # Paper: "five estimates for a 3-beam multi-beam".
        assert multibeam_maintenance_probes(3) == 5

    def test_two_beam_time_point_four_ms(self):
        # Paper Fig. 18d: ~0.4 ms for the 2-beam case.
        assert multibeam_maintenance_time_s(2) == pytest.approx(0.375e-3)

    def test_three_beam_time_point_six_ms(self):
        # Paper Fig. 18d: ~0.6 ms for the 3-beam case.
        assert multibeam_maintenance_time_s(3) == pytest.approx(0.625e-3)

    def test_independent_of_array_size(self):
        # The whole point: maintenance cost has no N anywhere.
        assert multibeam_maintenance_probes(2) == 3

    def test_rejects_zero_beams(self):
        with pytest.raises(ValueError):
            multibeam_maintenance_probes(0)


class TestBeamTraining:
    def test_exhaustive_scales_linearly(self):
        assert beam_training_probes(64, "exhaustive") == 64

    def test_logarithmic_paper_values(self):
        # Paper Fig. 18d: 3 ms at 8 antennas, 6 ms at 64 antennas.
        assert beam_training_time_s(8, "logarithmic") == pytest.approx(3e-3)
        assert beam_training_time_s(64, "logarithmic") == pytest.approx(6e-3)

    def test_mmreliable_cheaper_than_any_training(self):
        for antennas in (8, 16, 32, 64):
            assert multibeam_maintenance_time_s(3) < beam_training_time_s(
                antennas, "logarithmic"
            )

    def test_rejects_unknown_scheme(self):
        with pytest.raises(ValueError):
            beam_training_probes(8, "psychic")


class TestOverheadFraction:
    def test_paper_04_percent_figure(self):
        # One 2-beam maintenance round (3 CSI-RS symbols) every 20 ms:
        # < 0.04% -> actually ~0.13% for 3 symbols; the paper's 0.04% is
        # for a single CSI-RS symbol.  Check the single-symbol case.
        single = maintenance_overhead_fraction(1, maintenance_period_s=20e-3)
        assert single < 0.0005

    def test_overhead_grows_with_beams(self):
        assert maintenance_overhead_fraction(3) > maintenance_overhead_fraction(2)

    def test_rejects_bad_period(self):
        with pytest.raises(ValueError):
            maintenance_overhead_fraction(2, maintenance_period_s=0.0)


class TestProbeBudget:
    def test_counts_and_airtime(self):
        budget = ProbeBudget()
        budget.charge(ProbeKind.SSB, time_s=0.0, count=4)
        budget.charge(ProbeKind.CSI_RS, time_s=0.1, count=3)
        assert budget.total_probes() == 7
        assert budget.total_probes(ProbeKind.SSB) == 4
        assert budget.airtime_s() == pytest.approx(4 * 0.5e-3 + 3 * 0.125e-3)

    def test_overhead_fraction(self):
        budget = ProbeBudget()
        budget.charge(ProbeKind.SSB, count=2)
        assert budget.overhead_fraction(1.0) == pytest.approx(1e-3)

    def test_overhead_capped_at_one(self):
        budget = ProbeBudget()
        budget.charge(ProbeKind.SSB, count=10_000)
        assert budget.overhead_fraction(1.0) == 1.0

    def test_log_records_times(self):
        budget = ProbeBudget()
        budget.charge(ProbeKind.CSI_RS, time_s=0.25, count=2)
        assert budget.log == [(0.25, ProbeKind.CSI_RS)] * 2

    def test_rejects_negative_count(self):
        budget = ProbeBudget()
        with pytest.raises(ValueError):
            budget.charge(ProbeKind.SSB, count=-1)

    def test_rejects_bad_observation(self):
        budget = ProbeBudget()
        with pytest.raises(ValueError):
            budget.overhead_fraction(0.0)
