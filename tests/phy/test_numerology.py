"""Tests for 5G NR numerology."""

import pytest

from repro.phy import FR2_120KHZ, Numerology


class TestNumerology:
    def test_fr2_subcarrier_spacing(self):
        assert FR2_120KHZ.subcarrier_spacing_hz == pytest.approx(120e3)

    def test_fr2_slot_duration(self):
        # Paper: one CSI-RS slot is 0.125 ms at 120 kHz SCS.
        assert FR2_120KHZ.slot_duration_s == pytest.approx(0.125e-3)

    def test_fr2_symbol_duration(self):
        # Paper: one CSI-RS symbol is 8.93 us at 120 kHz.
        assert FR2_120KHZ.symbol_duration_s == pytest.approx(8.93e-6, rel=0.01)

    def test_mu0_is_lte_like(self):
        mu0 = Numerology(mu=0)
        assert mu0.subcarrier_spacing_hz == pytest.approx(15e3)
        assert mu0.slot_duration_s == pytest.approx(1e-3)

    def test_slots_per_subframe(self):
        assert Numerology(mu=3).slots_per_subframe == 8

    def test_num_subcarriers(self):
        assert FR2_120KHZ.num_subcarriers(400e6) == 3333

    def test_rejects_bad_mu(self):
        with pytest.raises(ValueError):
            Numerology(mu=5)
        with pytest.raises(ValueError):
            Numerology(mu=-1)

    def test_rejects_bad_bandwidth(self):
        with pytest.raises(ValueError):
            FR2_120KHZ.num_subcarriers(0.0)
