"""Tests for outer-loop link adaptation."""

import numpy as np
import pytest

from repro.phy.link_adaptation import (
    OuterLoopLinkAdaptation,
    block_error_probability,
    simulate_olla,
)
from repro.phy.mcs import NR_MCS_TABLE


class TestBlerModel:
    def test_ten_percent_at_switching_point(self):
        for entry in NR_MCS_TABLE:
            assert block_error_probability(
                entry.min_snr_db, entry
            ) == pytest.approx(0.1, abs=0.02)

    def test_monotone_decreasing_in_snr(self):
        entry = NR_MCS_TABLE[5]
        snrs = np.linspace(entry.min_snr_db - 5, entry.min_snr_db + 5, 21)
        blers = [block_error_probability(s, entry) for s in snrs]
        assert np.all(np.diff(blers) < 0)

    def test_collapses_above_threshold(self):
        entry = NR_MCS_TABLE[3]
        assert block_error_probability(entry.min_snr_db + 3, entry) < 1e-2

    def test_validation(self):
        with pytest.raises(ValueError):
            block_error_probability(10.0, NR_MCS_TABLE[0], slope=0.0)


class TestOllaController:
    def test_step_ratio_matches_target(self):
        loop = OuterLoopLinkAdaptation(target_bler=0.1, step_up_db=0.9)
        assert loop.step_down_db == pytest.approx(0.1)

    def test_nack_raises_margin(self):
        loop = OuterLoopLinkAdaptation()
        loop.feedback(ack=False)
        assert loop.margin_db > 0

    def test_margin_clamped(self):
        loop = OuterLoopLinkAdaptation(step_up_db=5.0, max_margin_db=10.0)
        for _ in range(10):
            loop.feedback(ack=False)
        assert loop.margin_db == 10.0

    def test_validation(self):
        with pytest.raises(ValueError):
            OuterLoopLinkAdaptation(target_bler=0.0)
        with pytest.raises(ValueError):
            OuterLoopLinkAdaptation(step_up_db=0.0)


class TestClosedLoop:
    def test_converges_to_target_bler(self):
        loop = simulate_olla(true_snr_db=18.0, rng=0)
        assert loop.measured_bler == pytest.approx(0.1, abs=0.04)

    def test_absorbs_optimistic_cqi(self):
        # A +3 dB optimistic channel report would wreck a naive selector;
        # the outer loop absorbs it into the margin.
        loop = simulate_olla(true_snr_db=18.0, cqi_bias_db=3.0, rng=1)
        assert loop.measured_bler == pytest.approx(0.1, abs=0.05)
        assert loop.margin_db > 1.0

    def test_absorbs_pessimistic_cqi(self):
        loop = simulate_olla(true_snr_db=18.0, cqi_bias_db=-3.0, rng=2)
        assert loop.measured_bler == pytest.approx(0.1, abs=0.05)
        assert loop.margin_db < -1.0

    def test_different_targets(self):
        strict = simulate_olla(
            true_snr_db=18.0, target_bler=0.01, num_blocks=8000, rng=3
        )
        assert strict.measured_bler < 0.05
        assert strict.measured_bler == pytest.approx(0.01, abs=0.015)
