"""Tests for OFDM channel sounding."""

import numpy as np
import pytest

from repro.arrays import UniformLinearArray, single_beam_weights
from repro.channel.impairments import CfoSfoModel
from repro.phy.ofdm import ChannelSounder, OfdmConfig
from repro.sim.scenarios import two_path_channel


@pytest.fixture
def array():
    return UniformLinearArray(num_elements=8)


@pytest.fixture
def channel(array):
    return two_path_channel(array)


class TestOfdmConfig:
    def test_grid_matches_subcarriers(self):
        config = OfdmConfig(bandwidth_hz=400e6, num_subcarriers=128)
        grid = config.frequency_grid()
        assert grid.shape == (128,)
        assert abs(grid).max() <= 200e6

    def test_noise_power_matches_bandwidth(self):
        narrow = OfdmConfig(bandwidth_hz=100e6)
        wide = OfdmConfig(bandwidth_hz=400e6)
        assert wide.noise_power_watt == pytest.approx(
            4 * narrow.noise_power_watt
        )

    def test_snr_db_known_value(self):
        config = OfdmConfig(bandwidth_hz=400e6, transmit_power_watt=1.0)
        power = config.noise_power_watt  # channel power equal to noise
        assert config.snr_db(power) == pytest.approx(0.0)

    def test_zero_power_is_minus_inf(self):
        config = OfdmConfig()
        assert config.snr_db(0.0) == -np.inf

    def test_validation(self):
        with pytest.raises(ValueError):
            OfdmConfig(bandwidth_hz=0.0)
        with pytest.raises(ValueError):
            OfdmConfig(num_subcarriers=0)
        with pytest.raises(ValueError):
            OfdmConfig(transmit_power_watt=0.0)


class TestChannelSounder:
    def test_estimate_shape(self, array, channel):
        sounder = ChannelSounder(config=OfdmConfig(num_subcarriers=64), rng=0)
        estimate = sounder.sound(channel, single_beam_weights(array, 0.0))
        assert estimate.csi.shape == (64,)
        assert estimate.frequencies_hz.shape == (64,)

    def test_estimate_close_to_truth_at_high_snr(self, array, channel):
        config = OfdmConfig(num_subcarriers=64)
        sounder = ChannelSounder(config=config, rng=0)
        w = single_beam_weights(array, 0.0)
        truth = channel.frequency_response(w, config.frequency_grid())
        estimate = sounder.sound(channel, w)
        error = np.linalg.norm(estimate.csi - truth) / np.linalg.norm(truth)
        assert error < 0.2

    def test_noise_floor_visible_at_zero_signal(self, array, channel):
        config = OfdmConfig(num_subcarriers=256)
        sounder = ChannelSounder(config=config, rng=1)
        # Steer far from both paths: mostly noise.
        w = single_beam_weights(array, np.deg2rad(-60.0))
        estimate = sounder.sound(channel, w)
        noise_var = config.noise_power_watt / config.transmit_power_watt
        assert estimate.mean_power < 100 * noise_var

    def test_cfo_rotation_applied(self, array, channel):
        config = OfdmConfig(num_subcarriers=32)
        clean = ChannelSounder(config=config, rng=2)
        dirty = ChannelSounder(
            config=config, cfo_model=CfoSfoModel(rng=3), rng=2
        )
        w = single_beam_weights(array, 0.0)
        a = clean.sound(channel, w)
        b = dirty.sound(channel, w)
        # Same noise realization, same magnitudes, rotated phases.
        assert np.abs(b.csi) == pytest.approx(np.abs(a.csi))
        assert not np.allclose(np.angle(b.csi), np.angle(a.csi))

    def test_link_snr_in_sane_range(self, array, channel):
        sounder = ChannelSounder(config=OfdmConfig(), rng=4)
        snr = sounder.link_snr_db(channel, single_beam_weights(array, 0.0))
        # 7 m indoor 28 GHz with an 8-element beam: tens of dB.
        assert 15.0 < snr < 45.0

    def test_band_weights_path(self, array, channel):
        config = OfdmConfig(num_subcarriers=16)
        sounder = ChannelSounder(config=config, rng=5)
        w = single_beam_weights(array, 0.0)
        stacked = np.tile(w, (16, 1))
        estimate = sounder.sound_with_band_weights(channel, stacked)
        assert estimate.csi.shape == (16,)

    def test_estimate_power_db(self, array, channel):
        sounder = ChannelSounder(config=OfdmConfig(), rng=6)
        estimate = sounder.sound(channel, single_beam_weights(array, 0.0))
        assert estimate.power_db() == pytest.approx(
            10 * np.log10(estimate.mean_power)
        )
