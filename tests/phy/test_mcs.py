"""Tests for the SNR -> MCS -> throughput mapping."""

import numpy as np
import pytest

from repro.phy.mcs import (
    NR_MCS_TABLE,
    OUTAGE_SNR_DB,
    is_outage,
    select_mcs,
    shannon_spectral_efficiency,
    spectral_efficiency,
    throughput_bps,
)


class TestMcsTable:
    def test_thresholds_increase(self):
        thresholds = [e.min_snr_db for e in NR_MCS_TABLE]
        assert np.all(np.diff(thresholds) > 0)

    def test_efficiency_increases(self):
        efficiencies = [e.spectral_efficiency for e in NR_MCS_TABLE]
        assert np.all(np.diff(efficiencies) > 0)

    def test_lowest_mcs_at_outage_threshold(self):
        assert NR_MCS_TABLE[0].min_snr_db == OUTAGE_SNR_DB

    def test_efficiency_below_shannon(self):
        # Every MCS must be decodable at its threshold: efficiency below
        # capacity at the switching SNR.
        for entry in NR_MCS_TABLE:
            assert entry.spectral_efficiency < shannon_spectral_efficiency(
                entry.min_snr_db
            )


class TestSelectMcs:
    def test_outage_below_threshold(self):
        assert select_mcs(OUTAGE_SNR_DB - 0.1) is None
        assert is_outage(5.9)
        assert not is_outage(6.0)

    def test_lowest_at_threshold(self):
        assert select_mcs(OUTAGE_SNR_DB).index == 0

    def test_highest_at_high_snr(self):
        assert select_mcs(40.0).index == NR_MCS_TABLE[-1].index

    def test_monotone_in_snr(self):
        indices = [
            (select_mcs(snr).index if select_mcs(snr) else -1)
            for snr in np.linspace(0, 35, 71)
        ]
        assert np.all(np.diff(indices) >= 0)


class TestThroughput:
    def test_zero_in_outage(self):
        assert throughput_bps(0.0, 400e6) == 0.0
        assert spectral_efficiency(3.0) == 0.0

    def test_paper_regime(self):
        # The paper reports ~1.5 b/s/Hz average: reachable in the table.
        efficiencies = [e.spectral_efficiency for e in NR_MCS_TABLE]
        assert min(efficiencies) < 1.0 < max(efficiencies)

    def test_overhead_subtracts(self):
        full = throughput_bps(20.0, 400e6)
        with_overhead = throughput_bps(20.0, 400e6, overhead_fraction=0.25)
        assert with_overhead == pytest.approx(0.75 * full)

    def test_validation(self):
        with pytest.raises(ValueError):
            throughput_bps(20.0, 0.0)
        with pytest.raises(ValueError):
            throughput_bps(20.0, 1e6, overhead_fraction=1.0)


class TestShannon:
    def test_zero_snr(self):
        assert shannon_spectral_efficiency(-np.inf) == pytest.approx(0.0)

    def test_known_value(self):
        # SNR = 0 dB -> log2(2) = 1 b/s/Hz.
        assert shannon_spectral_efficiency(0.0) == pytest.approx(1.0)
