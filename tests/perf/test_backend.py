"""Tests for the compute-backend registry, resolution, and dispatch."""

import threading

import numpy as np
import pytest

from repro.perf import backend as backend_module
from repro.perf.backend import (
    BACKEND_ENV_VAR,
    DEFAULT_BACKEND,
    ComputeBackend,
    available_backends,
    dispatch,
    get_backend,
    register_backend,
    resolve_backend,
    set_backend,
    use_backend,
)
from repro.perf.kernels_numba import NUMBA_AVAILABLE
from repro.telemetry import TelemetryRecorder, use_recorder


@pytest.fixture(autouse=True)
def _clean_backend_state(monkeypatch):
    """Each test starts from env-default resolution on this thread."""
    monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
    backend_module._ACTIVE.stack = []
    yield
    backend_module._ACTIVE.stack = []


class TestRegistry:
    def test_both_backends_are_registered(self):
        names = available_backends()
        assert names["numpy"] is True
        assert "numba" in names

    def test_numba_availability_tracks_import(self):
        assert available_backends()["numba"] is NUMBA_AVAILABLE

    def test_duplicate_registration_is_an_error(self):
        with pytest.raises(ValueError, match="already exists"):
            register_backend(ComputeBackend("numpy", {}))

    def test_backend_name_must_be_non_empty(self):
        with pytest.raises(ValueError, match="non-empty"):
            ComputeBackend("", {})

    def test_repr_reports_availability(self):
        stub = ComputeBackend("stub", {}, available=False, requires="dep")
        assert "unavailable" in repr(stub)
        assert "dep" in repr(stub)


class TestResolution:
    def test_default_is_numpy(self):
        assert resolve_backend(None).name == DEFAULT_BACKEND

    def test_unknown_name_is_an_error(self):
        with pytest.raises(ValueError, match="unknown compute backend"):
            resolve_backend("cuda")

    def test_name_is_normalized(self):
        assert resolve_backend("  NumPy  ").name == "numpy"

    def test_env_var_is_consulted(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "numpy")
        assert resolve_backend(None).name == "numpy"

    def test_empty_env_var_means_default(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "")
        assert resolve_backend(None).name == DEFAULT_BACKEND

    def test_unavailable_backend_falls_back_with_one_warning(
        self, monkeypatch
    ):
        monkeypatch.setattr(backend_module, "_WARNED", set())
        stub = ComputeBackend(
            "stub-unavailable", {}, available=False, requires="nothing"
        )
        monkeypatch.setitem(
            backend_module._BACKENDS, "stub-unavailable", stub
        )
        with pytest.warns(RuntimeWarning, match="falling back"):
            resolved = resolve_backend("stub-unavailable")
        assert resolved.name == DEFAULT_BACKEND
        # Second resolution: silent (the warning is once per backend).
        import warnings as warnings_module

        with warnings_module.catch_warnings():
            warnings_module.simplefilter("error")
            assert resolve_backend("stub-unavailable").name == DEFAULT_BACKEND

    def test_fallback_bumps_telemetry_counter(self, monkeypatch):
        monkeypatch.setattr(backend_module, "_WARNED", {"stub-fb"})
        stub = ComputeBackend("stub-fb", {}, available=False)
        monkeypatch.setitem(backend_module._BACKENDS, "stub-fb", stub)
        recorder = TelemetryRecorder()
        with use_recorder(recorder):
            resolve_backend("stub-fb")
        snapshot = recorder.metrics.snapshot()
        assert snapshot["counters"]["perf.backend.fallback"] == 1


class TestActivation:
    def test_use_backend_scopes_to_the_block(self):
        assert get_backend().name == DEFAULT_BACKEND
        with use_backend("numpy") as active:
            assert active.name == "numpy"
            assert get_backend() is active
        assert get_backend().name == DEFAULT_BACKEND

    def test_use_backend_nests(self):
        with use_backend("numpy"):
            with use_backend(None):
                assert get_backend().name == DEFAULT_BACKEND
            assert get_backend().name == "numpy"

    def test_set_backend_pins_until_reset(self):
        set_backend("numpy")
        assert get_backend().name == "numpy"

    def test_activation_is_thread_scoped(self, monkeypatch):
        stub = ComputeBackend("stub-thread", {})
        monkeypatch.setitem(backend_module._BACKENDS, "stub-thread", stub)
        seen = {}

        def worker():
            seen["other"] = get_backend().name

        with use_backend("stub-thread"):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
            assert get_backend().name == "stub-thread"
        # The spawned thread never saw this thread's activation.
        assert seen["other"] == DEFAULT_BACKEND


class TestDispatch:
    def test_dispatch_runs_the_active_backends_kernel(self, monkeypatch):
        calls = []
        stub = ComputeBackend(
            "stub-k", {"array_factor": lambda *a: calls.append(a) or 7}
        )
        monkeypatch.setitem(backend_module._BACKENDS, "stub-k", stub)
        with use_backend("stub-k"):
            assert dispatch("array_factor", 1, 2) == 7
        assert calls == [(1, 2)]

    def test_missing_kernel_is_served_by_the_reference(self, monkeypatch):
        stub = ComputeBackend("stub-empty", {})
        monkeypatch.setitem(backend_module._BACKENDS, "stub-empty", stub)
        steering = np.exp(1j * np.arange(6.0)).reshape(2, 3)
        weights = np.ones(3, dtype=complex)
        with use_backend("stub-empty"):
            result = dispatch("array_factor", steering, weights)
        np.testing.assert_array_equal(result, steering @ weights)

    def test_dispatch_counts_the_serving_backend(self, monkeypatch):
        stub = ComputeBackend("stub-count", {})
        monkeypatch.setitem(backend_module._BACKENDS, "stub-count", stub)
        steering = np.ones((1, 2), dtype=complex)
        weights = np.ones(2, dtype=complex)
        recorder = TelemetryRecorder()
        with use_recorder(recorder):
            with use_backend("stub-count"):
                dispatch("array_factor", steering, weights)
            dispatch("array_factor", steering, weights)
        counters = recorder.metrics.snapshot()["counters"]
        # Both calls were *served* by numpy: one via fallthrough from
        # the kernel-less stub, one directly.
        assert counters["perf.backend.numpy.array_factor"] == 2

    def test_dispatch_is_silent_without_telemetry(self):
        steering = np.ones((1, 2), dtype=complex)
        weights = np.ones(2, dtype=complex)
        result = dispatch("array_factor", steering, weights)
        np.testing.assert_array_equal(result, steering @ weights)
