"""Differential fast-vs-reference tests for every registered kernel.

Each compiled kernel's *algorithm* (the undecorated Python function in
``PY_KERNELS``) is compared against the NumPy reference on small inputs,
so the parity contract is checked even in environments without numba.
When numba is importable, the JIT-compiled kernels are additionally
checked against the same references — compilation must not change the
arithmetic.

Tolerances: sinc dictionaries are elementwise identical arithmetic and
must match bitwise; the remaining kernels reassociate float reductions
(or, for dirichlet, use the closed-form sum instead of an IFFT) and are
held to well inside the documented backend tolerance of ``rtol=1e-7``.
"""

import numpy as np
import pytest

from repro.perf import kernels_numpy
from repro.perf.kernels_numba import KERNELS, NUMBA_AVAILABLE, PY_KERNELS

#: Documented cross-backend agreement (DESIGN.md "Compute backends").
BACKEND_RTOL = 1e-7


def _rng():
    return np.random.default_rng(20210813)  # mmReliable's SIGCOMM slot


def _dictionary_inputs():
    rng = _rng()
    delays = rng.uniform(0.0, 80e-9, size=(5, 3))
    # Include exact on-grid delays: the closed-form dirichlet path has a
    # dedicated near-integer branch that must agree with the IFFT.
    delays[0, 0] = 0.0
    delays[1, 1] = 4.0 / 400e6  # exactly 4 taps at B = 400 MHz
    return delays, 400e6, 64


def _solve_inputs():
    rng = _rng()
    shape = (6, 32, 3)
    dictionaries = rng.standard_normal(shape) + 1j * rng.standard_normal(shape)
    cir = rng.standard_normal(32) + 1j * rng.standard_normal(32)
    return dictionaries, cir, 1e-3


def _batch_inputs():
    rng = _rng()
    steering = (
        rng.standard_normal((4, 3, 8)) + 1j * rng.standard_normal((4, 3, 8))
    )
    rotation = (
        rng.standard_normal((4, 16, 3)) + 1j * rng.standard_normal((4, 16, 3))
    )
    gains = (
        rng.standard_normal((4, 3)) + 1j * rng.standard_normal((4, 3))
    )
    weights = rng.standard_normal(8) + 1j * rng.standard_normal(8)
    return steering, rotation, gains, weights


def test_every_kernel_has_a_python_reference_pair():
    assert set(PY_KERNELS) == set(kernels_numpy.KERNELS)
    assert set(KERNELS) == set(kernels_numpy.KERNELS)


class TestPyKernelParity:
    """PY_KERNELS (undecorated loop algorithms) vs the NumPy reference."""

    def test_sinc_dictionaries_bitwise(self):
        delays, bandwidth, taps = _dictionary_inputs()
        reference = kernels_numpy.stacked_sinc_dictionaries(
            delays, bandwidth, taps, 1e-9
        )
        fast = PY_KERNELS["stacked_sinc_dictionaries"](
            delays, bandwidth, taps, 1e-9
        )
        np.testing.assert_array_equal(fast, reference)

    def test_dirichlet_dictionaries(self):
        delays, bandwidth, taps = _dictionary_inputs()
        reference = kernels_numpy.stacked_dirichlet_dictionaries(
            delays, bandwidth, taps
        )
        fast = PY_KERNELS["stacked_dirichlet_dictionaries"](
            delays, bandwidth, taps
        )
        np.testing.assert_allclose(
            fast, reference, rtol=BACKEND_RTOL, atol=1e-12
        )

    def test_dirichlet_on_grid_columns_are_exact(self):
        # An on-grid delay's column is a unit impulse on the matching
        # tap; the closed-form branch must return exactly 1 there.
        delays = np.array([[4.0 / 400e6]])
        fast = PY_KERNELS["stacked_dirichlet_dictionaries"](
            delays, 400e6, 64
        )
        assert fast[0, 4, 0] == 1.0 + 0.0j

    def test_candidate_solve(self):
        dictionaries, cir, reg = _solve_inputs()
        ref_alphas, ref_res, ref_obj = kernels_numpy.stacked_candidate_solve(
            dictionaries, cir, reg
        )
        alphas, residuals, objectives = PY_KERNELS["stacked_candidate_solve"](
            dictionaries, cir, reg
        )
        np.testing.assert_allclose(alphas, ref_alphas, rtol=BACKEND_RTOL)
        np.testing.assert_allclose(residuals, ref_res, rtol=BACKEND_RTOL)
        np.testing.assert_allclose(objectives, ref_obj, rtol=BACKEND_RTOL)

    def test_batch_frequency_response(self):
        steering, rotation, gains, weights = _batch_inputs()
        reference = kernels_numpy.batch_frequency_response(
            steering, rotation, gains, weights
        )
        fast = PY_KERNELS["batch_frequency_response"](
            steering, rotation, gains, weights
        )
        np.testing.assert_allclose(fast, reference, rtol=BACKEND_RTOL)

    def test_array_factor(self):
        rng = _rng()
        steering = (
            rng.standard_normal((11, 8)) + 1j * rng.standard_normal((11, 8))
        )
        weights = rng.standard_normal(8) + 1j * rng.standard_normal(8)
        reference = kernels_numpy.array_factor(steering, weights)
        fast = PY_KERNELS["array_factor"](steering, weights)
        np.testing.assert_allclose(fast, reference, rtol=BACKEND_RTOL)


@pytest.mark.skipif(not NUMBA_AVAILABLE, reason="numba not installed")
class TestJitKernelParity:
    """The JIT-compiled kernels vs the NumPy reference (numba only)."""

    def test_sinc_dictionaries_bitwise(self):
        delays, bandwidth, taps = _dictionary_inputs()
        reference = kernels_numpy.stacked_sinc_dictionaries(
            delays, bandwidth, taps, 1e-9
        )
        fast = KERNELS["stacked_sinc_dictionaries"](
            delays, bandwidth, taps, 1e-9
        )
        np.testing.assert_array_equal(fast, reference)

    def test_dirichlet_dictionaries(self):
        delays, bandwidth, taps = _dictionary_inputs()
        reference = kernels_numpy.stacked_dirichlet_dictionaries(
            delays, bandwidth, taps
        )
        fast = KERNELS["stacked_dirichlet_dictionaries"](
            delays, bandwidth, taps
        )
        np.testing.assert_allclose(
            fast, reference, rtol=BACKEND_RTOL, atol=1e-12
        )

    def test_candidate_solve(self):
        dictionaries, cir, reg = _solve_inputs()
        ref_alphas, ref_res, ref_obj = kernels_numpy.stacked_candidate_solve(
            dictionaries, cir, reg
        )
        alphas, residuals, objectives = KERNELS["stacked_candidate_solve"](
            dictionaries, cir, reg
        )
        np.testing.assert_allclose(alphas, ref_alphas, rtol=BACKEND_RTOL)
        np.testing.assert_allclose(residuals, ref_res, rtol=BACKEND_RTOL)
        np.testing.assert_allclose(objectives, ref_obj, rtol=BACKEND_RTOL)

    def test_batch_frequency_response(self):
        steering, rotation, gains, weights = _batch_inputs()
        reference = kernels_numpy.batch_frequency_response(
            steering, rotation, gains, weights
        )
        fast = KERNELS["batch_frequency_response"](
            steering, rotation, gains, weights
        )
        np.testing.assert_allclose(fast, reference, rtol=BACKEND_RTOL)

    def test_array_factor(self):
        rng = _rng()
        steering = (
            rng.standard_normal((11, 8)) + 1j * rng.standard_normal((11, 8))
        )
        weights = rng.standard_normal(8) + 1j * rng.standard_normal(8)
        reference = kernels_numpy.array_factor(steering, weights)
        fast = KERNELS["array_factor"](steering, weights)
        np.testing.assert_allclose(fast, reference, rtol=BACKEND_RTOL)


class TestNumpyKernelsMatchPreSeamArithmetic:
    """The reference kernels reproduce the former call-site code bitwise."""

    def test_sinc_matches_normalized_sinc_formula(self):
        from repro.utils import normalized_sinc

        delays, bandwidth, taps = _dictionary_inputs()
        sample_times = 1e-9 + np.arange(taps) / bandwidth
        expected = normalized_sinc(
            bandwidth * (sample_times[None, :, None] - delays[:, None, :])
        )
        actual = kernels_numpy.stacked_sinc_dictionaries(
            delays, bandwidth, taps, 1e-9
        )
        np.testing.assert_array_equal(actual, expected)

    def test_dirichlet_matches_per_column_ifft(self):
        from repro.channel.wideband import (
            cir_from_frequency_response,
            ofdm_frequency_grid,
        )

        delays, bandwidth, taps = _dictionary_inputs()
        actual = kernels_numpy.stacked_dirichlet_dictionaries(
            delays, bandwidth, taps
        )
        freqs = ofdm_frequency_grid(bandwidth, taps)
        for c in range(delays.shape[0]):
            for k in range(delays.shape[1]):
                response = np.exp(-2j * np.pi * freqs * delays[c, k])
                column = cir_from_frequency_response(response)
                np.testing.assert_allclose(
                    actual[c, :, k], column, rtol=1e-12, atol=1e-15
                )
