"""Tests for the bounded hot-path caches.

Covers the perf contract: keyed reuse, LRU bounding, explicit
invalidation, hit/miss accounting (both local tallies and telemetry
counters), and value freezing.
"""

import numpy as np
import pytest

from repro.perf import BoundedCache, array_key, cache_stats, clear_caches
from repro.perf.cache import _REGISTRY
from repro.telemetry import TelemetryRecorder, use_recorder


@pytest.fixture
def cache():
    name = "test.cache.scratch"
    _REGISTRY.pop(name, None)
    cache = BoundedCache(name, maxsize=3)
    yield cache
    _REGISTRY.pop(name, None)


class TestBoundedCache:
    def test_build_once_then_hit(self, cache):
        builds = []

        def build():
            builds.append(1)
            return np.arange(4.0)

        first = cache.get_or_build("k", build)
        second = cache.get_or_build("k", build)
        assert first is second
        assert len(builds) == 1
        assert cache.hits == 1 and cache.misses == 1

    def test_values_are_frozen(self, cache):
        value = cache.get_or_build("k", lambda: np.arange(3.0))
        with pytest.raises(ValueError):
            value[0] = 99.0

    def test_bounded_size_evicts_lru(self, cache):
        for key in "abc":
            cache.get_or_build(key, lambda: key)
        # Touch "a" so "b" becomes least recently used, then overflow.
        cache.get_or_build("a", lambda: "a")
        cache.get_or_build("d", lambda: "d")
        assert len(cache) == 3
        rebuilds = []
        cache.get_or_build("b", lambda: rebuilds.append(1) or "b")
        assert rebuilds, "evicted entry must be rebuilt"
        cache.get_or_build("a", lambda: rebuilds.append(1) or "a")
        assert len(rebuilds) == 1, "recently used entry must survive"

    def test_invalidate_single_key(self, cache):
        cache.get_or_build("k", lambda: 1)
        assert cache.invalidate("k") is True
        assert cache.invalidate("k") is False
        builds = []
        cache.get_or_build("k", lambda: builds.append(1) or 2)
        assert builds

    def test_clear_caches_by_name_and_globally(self, cache):
        cache.get_or_build("k", lambda: 1)
        clear_caches(cache.name)
        assert len(cache) == 0
        cache.get_or_build("k", lambda: 1)
        clear_caches()
        assert len(cache) == 0

    def test_stats_snapshot(self, cache):
        cache.get_or_build("k", lambda: 1)
        cache.get_or_build("k", lambda: 1)
        stats = cache_stats()[cache.name]
        assert stats == {
            "hits": 1, "misses": 1, "lookups": 2, "size": 1, "maxsize": 3,
        }

    def test_duplicate_name_rejected(self, cache):
        with pytest.raises(ValueError, match="already exists"):
            BoundedCache(cache.name)

    def test_maxsize_validated(self):
        with pytest.raises(ValueError, match="maxsize"):
            BoundedCache("test.cache.bad", maxsize=0)

    def test_telemetry_counters(self, cache):
        with use_recorder(TelemetryRecorder()) as recorder:
            cache.get_or_build("k", lambda: 1)
            cache.get_or_build("k", lambda: 1)
            counters = recorder.metrics.snapshot()["counters"]
        assert counters[f"perf.cache.{cache.name}.misses"] == 1
        assert counters[f"perf.cache.{cache.name}.hits"] == 1


class TestArrayKey:
    def test_distinguishes_contents(self):
        assert array_key([1.0, 2.0]) == array_key(np.array([1.0, 2.0]))
        assert array_key([1.0, 2.0]) != array_key([1.0, 2.0 + 1e-12])


class TestLiveCaches:
    def test_steering_single_beam_cache_hits(self):
        from repro.arrays import UniformLinearArray
        from repro.arrays.steering import _WEIGHTS_CACHE, single_beam_weights

        array = UniformLinearArray(num_elements=8)
        _WEIGHTS_CACHE.clear()
        first = single_beam_weights(array, 0.123)
        second = single_beam_weights(array, 0.123)
        assert first is second
        other = single_beam_weights(
            UniformLinearArray(num_elements=16), 0.123
        )
        assert other.shape == (16,)

    def test_multibeam_weights_cache_and_invalidation(self):
        from repro.arrays import UniformLinearArray
        from repro.core.multibeam import _WEIGHTS_CACHE, MultiBeam

        array = UniformLinearArray(num_elements=8)
        beam = MultiBeam(
            array=array,
            angles_rad=(0.0, 0.3),
            relative_gains=(1.0 + 0j, 0.5 + 0j),
        )
        _WEIGHTS_CACHE.clear()
        first = beam.weights()
        assert _WEIGHTS_CACHE.misses >= 1
        hits_before = _WEIGHTS_CACHE.hits
        second = beam.weights()
        assert _WEIGHTS_CACHE.hits == hits_before + 1
        np.testing.assert_array_equal(first.vector, second.vector)
        clear_caches("multibeam.weights")
        assert len(_WEIGHTS_CACHE) == 0
        third = beam.weights()
        np.testing.assert_array_equal(first.vector, third.vector)

    def test_codebook_cache_returns_equal_beams(self):
        from repro.arrays import UniformLinearArray, uniform_codebook

        array = UniformLinearArray(num_elements=8)
        clear_caches("arrays.codebook")
        first = uniform_codebook(array, 9)
        second = uniform_codebook(array, 9)
        assert first is second


class TestConcurrency:
    """The serve thread pool hammers the process-wide caches; the lock
    must keep the LRU bound and the hit/miss tallies consistent."""

    @pytest.fixture
    def shared(self):
        name = "test.cache.concurrent"
        _REGISTRY.pop(name, None)
        cache = BoundedCache(name, maxsize=8)
        yield cache
        _REGISTRY.pop(name, None)

    def _hammer(self, cache, num_threads, calls_per_thread, key_space):
        import threading

        builds = []
        build_lock = threading.Lock()
        barrier = threading.Barrier(num_threads)
        errors = []

        def worker(seed):
            rng = np.random.default_rng(seed)
            barrier.wait()
            try:
                for _ in range(calls_per_thread):
                    key = int(rng.integers(key_space))

                    def build(key=key):
                        with build_lock:
                            builds.append(key)
                        return np.full(4, float(key))

                    value = cache.get_or_build(key, build)
                    assert value[0] == float(key)
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [
            threading.Thread(target=worker, args=(seed,))
            for seed in range(num_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        return builds

    def test_tallies_stay_consistent_under_contention(self, shared):
        num_threads, calls = 8, 200
        builds = self._hammer(shared, num_threads, calls, key_space=32)
        total = num_threads * calls
        # Every call is exactly one hit or one miss, and every miss ran
        # exactly one build (no lost updates, no double builds).
        assert shared.hits + shared.misses == total
        assert shared.misses == len(builds)
        assert shared.hits == total - len(builds)

    def test_eviction_bound_holds_under_contention(self, shared):
        self._hammer(shared, 8, 200, key_space=64)
        assert len(shared) <= shared.maxsize
        assert shared.stats()["size"] <= shared.maxsize

    def test_single_build_per_key_when_keys_fit(self, shared):
        # Key space within maxsize: no evictions, so each key must have
        # been built exactly once no matter how many threads raced it.
        builds = self._hammer(shared, 8, 100, key_space=8)
        assert sorted(set(builds)) == sorted(builds)
