"""Network simulator end-to-end: determinism, metrics, executor reuse."""

from functools import partial

import numpy as np
import pytest

from repro.experiments.common import TESTBED_ULA, make_manager
from repro.network import (
    NetworkScenario,
    NetworkSimulator,
    build_network_simulator,
    row_of_cells,
)
from repro.sim.executor import EnsembleSpec, execute_ensemble
from repro.sim.link import LinkSimulator
from repro.sim.scenarios import indoor_two_path_scenario


def small_scenario(num_cells=2, num_users=4, duration_s=0.05):
    return NetworkScenario(
        cells=row_of_cells(num_cells),
        num_users=num_users,
        duration_s=duration_s,
    )


def _wrap_scenario(seed):
    return indoor_two_path_scenario(TESTBED_ULA)


def _wrap_manager(seed):
    return make_manager("mmreliable", seed=seed)


class TestRun:
    def test_smoke_and_shapes(self):
        scenario = small_scenario()
        trace = NetworkSimulator(scenario=scenario, seed=1).run()
        assert len(trace.user_traces) == 4
        assert len(trace.plans) == 2
        assert trace.penalties_db.shape == (
            4, trace.epoch_times_s.shape[0]
        )
        metrics = trace.metrics()
        assert metrics.num_users == 4
        assert 0.0 <= metrics.reliability <= 1.0
        assert metrics.cell_throughput_bps >= metrics.mean_throughput_bps
        assert metrics.product <= metrics.mean_throughput_bps

    def test_same_seed_bitwise_repeatable(self):
        scenario = small_scenario()
        first = NetworkSimulator(scenario=scenario, seed=7).run()
        second = NetworkSimulator(scenario=scenario, seed=7).run()
        for a, b in zip(first.user_traces, second.user_traces):
            np.testing.assert_array_equal(a.snr_db, b.snr_db)
        np.testing.assert_array_equal(
            first.penalties_db, second.penalties_db
        )

    def test_different_seeds_differ(self):
        scenario = small_scenario()
        first = NetworkSimulator(scenario=scenario, seed=0).run()
        second = NetworkSimulator(scenario=scenario, seed=1).run()
        assert any(
            not np.array_equal(a.snr_db, b.snr_db)
            for a, b in zip(first.user_traces, second.user_traces)
        )

    def test_growing_users_preserves_existing_placement(self):
        scenario = small_scenario(num_users=3)
        bigger = scenario.with_options(num_users=6)
        small_batch = scenario.user_batch(9)
        big_batch = bigger.user_batch(9)
        np.testing.assert_array_equal(
            small_batch.positions_m, big_batch.positions_m[:3]
        )

    def test_attach_detach_events(self):
        from repro.telemetry import TelemetryRecorder, use_recorder

        recorder = TelemetryRecorder()
        with use_recorder(recorder):
            NetworkSimulator(scenario=small_scenario(), seed=0).run()
        attaches = [
            e for e in recorder.events if e.kind == "user_attach"
        ]
        detaches = [
            e for e in recorder.events if e.kind == "user_detach"
        ]
        assert len(attaches) == 4
        assert len(detaches) == 4
        assert {e.fields["user"] for e in attaches} == set(range(4))


class TestMetricsAggregation:
    def test_user_values_back_the_aggregates(self):
        metrics = NetworkSimulator(
            scenario=small_scenario(), seed=3
        ).run().metrics()
        tputs = metrics.throughput_values_bps()
        rels = metrics.reliability_values()
        assert tputs.shape == (4,)
        assert metrics.mean_throughput_bps == pytest.approx(tputs.mean())
        assert metrics.cell_throughput_bps == pytest.approx(tputs.sum())
        assert metrics.reliability == pytest.approx(rels.mean())
        assert metrics.fairness > 0.9

    def test_ensemble_summary_compatible_attributes(self):
        metrics = NetworkSimulator(
            scenario=small_scenario(), seed=3
        ).run().metrics()
        for attribute in (
            "reliability",
            "mean_throughput_bps",
            "mean_spectral_efficiency",
            "mean_snr_db",
            "product",
            "training_rounds",
            "probe_airtime_s",
        ):
            assert np.isfinite(float(getattr(metrics, attribute)))


class TestExecutorReuse:
    def test_network_ensemble_through_executor(self):
        scenario = small_scenario(num_users=2)
        summary = execute_ensemble(
            EnsembleSpec(
                label="network",
                simulator_factory=partial(
                    build_network_simulator, scenario
                ),
                seeds=(0, 1, 2),
            )
        )
        assert len(summary.metrics) == 3
        assert summary.mean_reliability() > 0.0

    def test_parallel_matches_serial(self):
        scenario = small_scenario(num_users=2, duration_s=0.03)
        spec = EnsembleSpec(
            label="network",
            simulator_factory=partial(build_network_simulator, scenario),
            seeds=(0, 1, 2, 3),
        )
        serial = execute_ensemble(spec)
        parallel = execute_ensemble(spec.with_options(workers=2))
        assert serial.throughput_values().tolist() == (
            parallel.throughput_values().tolist()
        )

    def test_fault_target_protocol(self):
        from repro.faults import FaultInjector, FaultSpec, FaultTarget

        simulator = NetworkSimulator(scenario=small_scenario(), seed=0)
        assert isinstance(simulator, FaultTarget)
        injector = FaultInjector(
            seed=0, specs=(FaultSpec(kind="probe_loss", rate=1.0),)
        )
        simulator.install_fault_injector(injector)
        simulator.run()
        # Probe faults actually fired inside the per-user links.
        assert any(kind == "probe_loss" for _, kind in injector.injected)


class TestSingleLinkDifferential:
    """The 1x1 network wrap must be bitwise identical to LinkSimulator."""

    def test_trace_and_metrics_bitwise_identical(self):
        seed = 11
        duration = 0.2
        link_trace = LinkSimulator(
            scenario=_wrap_scenario(seed),
            manager=_wrap_manager(seed),
            duration_s=duration,
        ).run()
        network = NetworkScenario.single_link(
            _wrap_scenario, _wrap_manager, duration_s=duration
        )
        net_trace = NetworkSimulator(scenario=network, seed=seed).run()
        user_trace = net_trace.user_traces[0]
        np.testing.assert_array_equal(link_trace.snr_db, user_trace.snr_db)
        np.testing.assert_array_equal(
            link_trace.times_s, user_trace.times_s
        )
        assert link_trace.actions == user_trace.actions
        assert link_trace.training_windows == user_trace.training_windows

        link_metrics = link_trace.metrics()
        net_metrics = net_trace.metrics()
        assert net_metrics.users[0].slot_share == 1.0
        for attribute in (
            "reliability",
            "mean_throughput_bps",
            "mean_spectral_efficiency",
            "mean_snr_db",
            "product",
        ):
            assert getattr(link_metrics, attribute) == getattr(
                net_metrics, attribute
            )
        assert link_metrics.training_rounds == net_metrics.training_rounds
        assert link_metrics.probe_airtime_s == net_metrics.probe_airtime_s

    def test_single_link_requires_factory_pair(self):
        with pytest.raises(ValueError, match="together"):
            NetworkScenario(
                cells=row_of_cells(1),
                num_users=1,
                link_scenario_factory=_wrap_scenario,
            )
        with pytest.raises(ValueError, match="1 cell"):
            NetworkScenario(
                cells=row_of_cells(2),
                num_users=2,
                link_scenario_factory=_wrap_scenario,
                link_manager_factory=_wrap_manager,
            )


class TestScenarioValidation:
    def test_rejects_bad_configs(self):
        with pytest.raises(ValueError, match="at least one cell"):
            NetworkScenario(cells=(), num_users=1)
        with pytest.raises(ValueError, match="num_users"):
            NetworkScenario(cells=row_of_cells(1), num_users=0)
        with pytest.raises(ValueError, match="probe_slot_budget"):
            NetworkScenario(
                cells=row_of_cells(1), num_users=1, probe_slot_budget=0
            )
        with pytest.raises(ValueError, match="unknown manager kind"):
            scenario = NetworkScenario(
                cells=row_of_cells(1),
                num_users=1,
                manager_kind="nonsense",
            )
            batch = scenario.user_batch(0)
            scenario.build_manager(0, batch, 0)
