"""Interference-model invariants: sign, monotonicity, bitwise identity."""

import numpy as np
import pytest

from repro.network import (
    InterferenceModel,
    NetworkScenario,
    NetworkSimulator,
    apply_penalty_db,
    row_of_cells,
)


def model_for(num_cells: int, num_users: int, seed: int = 0):
    scenario = NetworkScenario(
        cells=row_of_cells(num_cells),
        num_users=num_users,
        duration_s=0.05,
    )
    simulator = NetworkSimulator(scenario=scenario, seed=seed)
    batch = scenario.user_batch(seed)
    link_scenarios = tuple(
        scenario.link_scenario(seed, batch, u) for u in range(num_users)
    )
    from repro.network.scheduler import SlotScheduler
    from repro.phy.reference_signals import ProbeBudget

    scheduler = SlotScheduler(
        duration_s=scenario.duration_s,
        sample_period_s=scenario.sample_period_s,
        maintenance_period_s=scenario.maintenance_period_s,
        probe_slot_budget=scenario.probe_slot_budget,
    )
    plans = tuple(
        scheduler.plan_cell(batch, c, ProbeBudget())
        for c in range(num_cells)
    )
    return (
        InterferenceModel(
            scenario=scenario,
            batch=batch,
            link_scenarios=link_scenarios,
            plans=plans,
        ),
        simulator,
    )


class TestPenalties:
    def test_single_cell_is_all_zero(self):
        model, _ = model_for(num_cells=1, num_users=3)
        penalties = model.penalties_db()
        np.testing.assert_array_equal(penalties, 0.0)

    def test_penalties_are_nonnegative_and_finite(self):
        model, _ = model_for(num_cells=3, num_users=6)
        penalties = model.penalties_db()
        assert np.all(penalties >= 0.0)
        assert np.all(np.isfinite(penalties))

    def test_active_interferer_penalizes_cross_cell_victims(self):
        model, _ = model_for(num_cells=2, num_users=4)
        penalties = model.penalties_db()
        # Both cells host users, so every user sees some interference.
        assert np.all(penalties.max(axis=1) > 0.0)

    def test_more_users_never_raise_victim_sinr(self):
        """Adding users (activating new cells) only adds interference.

        Users fill cells round-robin and user streams are keyed by user
        index, so growing U from 1..C keeps existing users' channels
        and placements fixed while switching on more interferers; user
        0's penalty must be non-decreasing along the way.
        """
        cells = 3
        previous = None
        for users in range(1, cells + 1):
            model, _ = model_for(num_cells=cells, num_users=users, seed=2)
            penalty_user0 = model.penalties_db()[0]
            if previous is not None:
                assert np.all(penalty_user0 >= previous - 1e-12)
            previous = penalty_user0

    def test_epoch_grid_matches_update_period(self):
        model, _ = model_for(num_cells=2, num_users=2)
        epochs = model.epoch_times_s()
        assert epochs[0] == 0.0
        spacing = np.diff(epochs)
        np.testing.assert_allclose(spacing, 5e-3)


class TestApplyPenalty:
    def test_zero_penalty_returns_same_object(self):
        snr = np.linspace(10.0, 20.0, 50)
        times = np.arange(50) * 1e-3
        epochs = np.arange(0.0, 0.05, 5e-3)
        out = apply_penalty_db(snr, times, epochs, np.zeros(epochs.shape))
        assert out is snr

    def test_penalty_is_subtracted_piecewise(self):
        snr = np.full(10, 30.0)
        times = np.arange(10) * 1e-3
        epochs = np.array([0.0, 5e-3])
        penalty = np.array([1.0, 3.0])
        out = apply_penalty_db(snr, times, epochs, penalty)
        np.testing.assert_allclose(out[:5], 29.0)
        np.testing.assert_allclose(out[5:], 27.0)
        # Input untouched (copy-on-write).
        assert np.all(snr == 30.0)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="does not match"):
            apply_penalty_db(
                np.zeros(4), np.zeros(4), np.zeros(3), np.zeros(2)
            )


class TestSimulatorIntegration:
    def test_network_snr_below_isolated_snr(self):
        """Interference can only lower the recorded SINR."""
        scenario = NetworkScenario(
            cells=row_of_cells(2), num_users=2, duration_s=0.05
        )
        seed = 4
        with_interference = NetworkSimulator(
            scenario=scenario, seed=seed
        ).run()
        # Same links, interference skipped: recompute from raw traces.
        for u, trace in enumerate(with_interference.user_traces):
            penalty = with_interference.penalties_db[u]
            assert np.all(penalty >= 0.0)
            if penalty.max() > 0:
                # At least one sample was actually penalized.
                assert trace.snr_db.min() < np.inf

    def test_telemetry_interference_events(self):
        from repro.telemetry import TelemetryRecorder, use_recorder

        scenario = NetworkScenario(
            cells=row_of_cells(2), num_users=2, duration_s=0.03
        )
        recorder = TelemetryRecorder()
        with use_recorder(recorder):
            NetworkSimulator(scenario=scenario, seed=0).run()
        kinds = {e.kind for e in recorder.events}
        assert "interference_update" in kinds
        updates = [
            e for e in recorder.events if e.kind == "interference_update"
        ]
        assert all(
            e.fields["max_penalty_db"] >= e.fields["mean_penalty_db"] >= 0
            for e in updates
        )
