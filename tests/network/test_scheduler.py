"""Scheduler invariants: fairness, probe budgets, determinism.

Property-based (hypothesis) over user counts, clock ratios, and budget
caps — the invariants the network engine's metrics lean on:

* every slot is owned once (no double-booking, no idle slots while
  users are attached);
* per maintenance period, probe-slot grants never exceed the cell's
  budget cap, and every grant charges exactly one CSI-RS to the shared
  :class:`~repro.phy.reference_signals.ProbeBudget`;
* data slots are round-robin fair — per-user totals differ by at most
  the probe-slot imbalance plus one;
* a sole attached user's share is exactly ``1.0`` (the bitwise anchor
  for the 1x1 differential test).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.scheduler import (
    CellSlotPlan,
    SlotScheduler,
    jain_fairness_index,
)
from repro.network.state import UserBatch
from repro.phy.reference_signals import ProbeBudget, ProbeKind


def batch_for(num_users: int, num_cells: int = 1) -> UserBatch:
    """All users attached to cell 0 at known geometry."""
    positions = np.stack(
        [np.linspace(-3.0, 3.0, num_users), np.full(num_users, 7.0)],
        axis=1,
    )
    cells = np.stack(
        [np.arange(num_cells) * 100.0, np.zeros(num_cells)], axis=1
    )
    return UserBatch.from_geometry(
        positions_m=positions,
        cell_positions_m=cells,
        cell_boresights_rad=np.full(num_cells, np.pi / 2.0),
    )


def plan_for(
    num_users: int,
    duration_s: float = 0.1,
    maintenance_period_s: float = 5e-3,
    budget: int = 64,
) -> tuple:
    scheduler = SlotScheduler(
        duration_s=duration_s,
        sample_period_s=1e-3,
        maintenance_period_s=maintenance_period_s,
        probe_slot_budget=budget,
    )
    probe_budget = ProbeBudget()
    plan = scheduler.plan_cell(batch_for(num_users), 0, probe_budget)
    return plan, probe_budget


user_counts = st.integers(min_value=1, max_value=12)
budgets = st.integers(min_value=1, max_value=8)
maintenance_ticks = st.integers(min_value=2, max_value=10)


class TestSlotOwnership:
    @given(users=user_counts)
    @settings(max_examples=25, deadline=None)
    def test_every_slot_owned_and_probe_slots_marked(self, users):
        plan, _ = plan_for(users)
        assert np.all(plan.owners >= 0)
        assert np.all(plan.owners < users)
        assert np.all(plan.owners[plan.is_probe] >= 0)

    @given(users=user_counts)
    @settings(max_examples=25, deadline=None)
    def test_shares_sum_to_one(self, users):
        plan, _ = plan_for(users)
        shares = plan.shares(np.arange(users))
        assert float(np.sum(shares)) == pytest.approx(1.0)

    def test_sole_user_share_is_exactly_one(self):
        plan, _ = plan_for(1)
        assert plan.share(0) == 1.0

    def test_no_users_leaves_cell_idle(self):
        scheduler = SlotScheduler(
            duration_s=0.05,
            sample_period_s=1e-3,
            maintenance_period_s=5e-3,
            probe_slot_budget=4,
        )
        batch = batch_for(2, num_cells=2)
        # Force everyone onto cell 0; cell 1 has no attached users.
        empty_cell = 1 - int(batch.serving_cell[0])
        budget = ProbeBudget()
        plan = scheduler.plan_cell(batch, empty_cell, budget)
        assert np.all(plan.owners == -1)
        assert budget.total_probes() == 0
        assert plan.share(0) == 0.0


class TestProbeBudget:
    @given(users=user_counts, budget=budgets)
    @settings(max_examples=30, deadline=None)
    def test_grants_capped_per_maintenance_period(self, users, budget):
        period = 5e-3
        plan, _ = plan_for(
            users, duration_s=0.1, maintenance_period_s=period,
            budget=budget,
        )
        probe_times = plan.slot_times_s[plan.is_probe]
        windows = np.floor(probe_times / period).astype(int)
        if probe_times.size:
            counts = np.bincount(windows)
            # A granted slot can spill past its requesting tick's window
            # when earlier slots are taken, so allow one slot of drift.
            assert counts.max() <= budget + 1

    @given(users=user_counts, budget=budgets)
    @settings(max_examples=30, deadline=None)
    def test_every_grant_charges_one_csi_rs(self, users, budget):
        plan, probe_budget = plan_for(users, budget=budget)
        assert (
            probe_budget.total_probes(ProbeKind.CSI_RS)
            == plan.num_probe_slots
        )
        assert probe_budget.total_probes(ProbeKind.SSB) == 0

    @given(users=user_counts, ticks=maintenance_ticks)
    @settings(max_examples=30, deadline=None)
    def test_denials_account_for_unserved_requests(self, users, ticks):
        period = 5e-3
        duration = ticks * period + 1e-3
        budget = 2
        plan, _ = plan_for(
            users, duration_s=duration, maintenance_period_s=period,
            budget=budget,
        )
        requests = users * ticks
        assert plan.num_probe_slots + plan.probe_slots_denied == requests


class TestFairness:
    @given(users=user_counts)
    @settings(max_examples=25, deadline=None)
    def test_slot_totals_nearly_equal(self, users):
        plan, _ = plan_for(users)
        counts = np.array(
            [plan.slots_owned(u) for u in range(users)]
        )
        # Probe grants can run out of slots once near the horizon (tail
        # users lose at most one probe) and round-robin data is +-1, so
        # totals differ by at most two slots.
        assert counts.max() - counts.min() <= 2

    @given(users=user_counts)
    @settings(max_examples=25, deadline=None)
    def test_jain_index_near_one(self, users):
        plan, _ = plan_for(users)
        assert plan.fairness(np.arange(users)) >= 0.98

    def test_jain_index_edge_cases(self):
        assert jain_fairness_index(np.array([])) == 1.0
        assert jain_fairness_index(np.zeros(4)) == 1.0
        assert jain_fairness_index(np.ones(5)) == pytest.approx(1.0)
        skewed = jain_fairness_index(np.array([1.0, 0.0, 0.0, 0.0]))
        assert skewed == pytest.approx(0.25)


class TestDeterminism:
    @given(users=user_counts)
    @settings(max_examples=10, deadline=None)
    def test_same_inputs_same_plan(self, users):
        first, _ = plan_for(users)
        second, _ = plan_for(users)
        np.testing.assert_array_equal(first.owners, second.owners)
        np.testing.assert_array_equal(first.is_probe, second.is_probe)

    def test_plan_shape_validation(self):
        with pytest.raises(ValueError, match="shape"):
            CellSlotPlan(
                cell_index=0,
                slot_times_s=np.zeros(4),
                owners=np.zeros(3, dtype=int),
                is_probe=np.zeros(4, dtype=bool),
                probe_slots_denied=0,
            )


class TestTelemetry:
    def test_slot_scheduled_event_emitted(self):
        from repro.telemetry import TelemetryRecorder, use_recorder

        recorder = TelemetryRecorder()
        with use_recorder(recorder):
            plan, _ = plan_for(3)
        events = [
            e for e in recorder.events if e.kind == "slot_scheduled"
        ]
        assert len(events) == 1
        assert events[0].fields["slots"] == plan.num_slots
        assert events[0].fields["users"] == 3
