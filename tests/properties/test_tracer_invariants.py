"""Property-based tests for the image-method ray tracer."""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.channel.environment import Reflector
from repro.utils import SPEED_OF_LIGHT

coords = st.floats(min_value=-20.0, max_value=20.0, allow_nan=False)


@st.composite
def wall_and_endpoints(draw):
    """A horizontal wall with tx/rx strictly below it."""
    wall_y = draw(st.floats(min_value=1.0, max_value=15.0))
    x0 = draw(st.floats(min_value=-30.0, max_value=-21.0))
    x1 = draw(st.floats(min_value=21.0, max_value=30.0))
    tx = (draw(coords), draw(st.floats(min_value=-10.0, max_value=wall_y - 1.0)))
    rx = (draw(coords), draw(st.floats(min_value=-10.0, max_value=wall_y - 1.0)))
    assume(abs(tx[0] - rx[0]) > 0.5 or abs(tx[1] - rx[1]) > 0.5)
    wall = Reflector(start=(x0, wall_y), end=(x1, wall_y), material="metal")
    return wall, np.asarray(tx), np.asarray(rx)


class TestReflectionLaw:
    @settings(max_examples=60, deadline=None)
    @given(case=wall_and_endpoints())
    def test_angle_in_equals_angle_out(self, case):
        wall, tx, rx = case
        spec = wall.specular_point(tx, rx)
        assume(spec is not None)
        incoming = spec - tx
        outgoing = rx - spec
        # Horizontal wall: the tangential (x) components keep their
        # ratio, the normal (y) components mirror.
        angle_in = np.arctan2(incoming[1], incoming[0])
        angle_out = np.arctan2(-outgoing[1], outgoing[0])
        assert angle_in == pytest.approx(angle_out, abs=1e-9)

    @settings(max_examples=60, deadline=None)
    @given(case=wall_and_endpoints())
    def test_path_length_equals_image_distance(self, case):
        wall, tx, rx = case
        spec = wall.specular_point(tx, rx)
        assume(spec is not None)
        bounce_length = np.linalg.norm(spec - tx) + np.linalg.norm(rx - spec)
        image = wall.mirror_point(rx)
        assert bounce_length == pytest.approx(
            np.linalg.norm(image - tx), rel=1e-9
        )

    @settings(max_examples=60, deadline=None)
    @given(case=wall_and_endpoints())
    def test_specular_point_on_wall(self, case):
        wall, tx, rx = case
        spec = wall.specular_point(tx, rx)
        assume(spec is not None)
        assert spec[1] == pytest.approx(wall.start[1])
        assert min(wall.start[0], wall.end[0]) <= spec[0] <= max(
            wall.start[0], wall.end[0]
        )

    @settings(max_examples=60, deadline=None)
    @given(case=wall_and_endpoints())
    def test_mirror_is_involution(self, case):
        wall, tx, _rx = case
        assert wall.mirror_point(wall.mirror_point(tx)) == pytest.approx(tx)

    @settings(max_examples=40, deadline=None)
    @given(case=wall_and_endpoints())
    def test_bounce_always_longer_than_direct(self, case):
        wall, tx, rx = case
        spec = wall.specular_point(tx, rx)
        assume(spec is not None)
        direct = np.linalg.norm(rx - tx)
        bounce = np.linalg.norm(spec - tx) + np.linalg.norm(rx - spec)
        assert bounce >= direct - 1e-12
