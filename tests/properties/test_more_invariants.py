"""Additional property-based tests: wideband, delays, blockage, QAM."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.channel.blockage import BlockageEvent, BlockageSchedule
from repro.channel.wideband import (
    cir_from_frequency_response,
    dirichlet_dictionary,
    ofdm_frequency_grid,
)
from repro.core.delay_opt import compensating_delays
from repro.phy.qam import MODULATION_BITS, demodulate, modulate
from repro.phy.waveform import OfdmWaveformConfig, ofdm_demodulate, ofdm_modulate


class TestWidebandRoundtrip:
    @settings(max_examples=25, deadline=None)
    @given(
        delay_taps=st.floats(min_value=0.0, max_value=20.0),
        magnitude=st.floats(min_value=0.1, max_value=10.0),
        phase=st.floats(min_value=0.0, max_value=2 * np.pi),
    )
    def test_dirichlet_dictionary_matches_ifft(
        self, delay_taps, magnitude, phase
    ):
        """The dictionary column IS the IFFT of the path's response."""
        bandwidth, n = 400e6, 64
        delay = delay_taps / bandwidth
        alpha = magnitude * np.exp(1j * phase)
        freqs = ofdm_frequency_grid(bandwidth, n)
        cir = cir_from_frequency_response(
            alpha * np.exp(-2j * np.pi * freqs * delay)
        )
        column = dirichlet_dictionary([delay], bandwidth, n)[:, 0]
        assert cir == pytest.approx(alpha * column, rel=1e-9, abs=1e-12)

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_cir_preserves_energy(self, seed):
        """Parseval: IFFT of the response conserves energy (up to 1/N)."""
        rng = np.random.default_rng(seed)
        response = rng.normal(size=32) + 1j * rng.normal(size=32)
        cir = cir_from_frequency_response(response)
        assert np.sum(np.abs(cir) ** 2) * 32 == pytest.approx(
            np.sum(np.abs(response) ** 2)
        )


class TestDelayCompensation:
    @settings(max_examples=50, deadline=None)
    @given(
        delays=st.lists(
            st.floats(min_value=0.0, max_value=100e-9),
            min_size=1,
            max_size=5,
        )
    )
    def test_compensation_equalizes_arrivals(self, delays):
        compensation = compensating_delays(delays)
        arrivals = np.asarray(delays) + compensation
        assert np.all(compensation >= 0)
        assert arrivals == pytest.approx(np.full(len(delays), max(delays)))


class TestBlockageInvariants:
    @settings(max_examples=50, deadline=None)
    @given(
        start=st.floats(min_value=0.0, max_value=1.0),
        duration=st.floats(min_value=1e-3, max_value=0.5),
        depth=st.floats(min_value=0.0, max_value=40.0),
        t=st.floats(min_value=-0.5, max_value=2.0),
    )
    def test_attenuation_bounded_by_depth(self, start, duration, depth, t):
        event = BlockageEvent(
            path_index=0, start_s=start, duration_s=duration, depth_db=depth
        )
        attenuation = event.attenuation_db(t)
        assert 0.0 <= attenuation <= depth + 1e-12

    @settings(max_examples=50, deadline=None)
    @given(
        t=st.floats(min_value=0.0, max_value=1.0),
        num_paths=st.integers(min_value=1, max_value=4),
    )
    def test_amplitude_factors_in_unit_interval(self, t, num_paths):
        schedule = BlockageSchedule(
            events=(
                BlockageEvent(path_index=0, start_s=0.2, duration_s=0.3,
                              depth_db=26.0),
            )
        )
        factors = schedule.amplitude_factors(t, num_paths)
        assert np.all(factors > 0.0)
        assert np.all(factors <= 1.0)


class TestQamRoundtrip:
    @settings(max_examples=20, deadline=None)
    @given(
        modulation=st.sampled_from(sorted(MODULATION_BITS)),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_modulate_demodulate_identity(self, modulation, seed):
        rng = np.random.default_rng(seed)
        bits = rng.integers(0, 2, 16 * MODULATION_BITS[modulation])
        assert np.array_equal(
            demodulate(modulate(bits, modulation), modulation), bits
        )


class TestOfdmWaveformRoundtrip:
    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        cp=st.integers(min_value=0, max_value=15),
    )
    def test_modulate_demodulate_identity(self, seed, cp):
        config = OfdmWaveformConfig(num_subcarriers=32, cyclic_prefix=cp)
        rng = np.random.default_rng(seed)
        grid = rng.normal(size=(2, 32)) + 1j * rng.normal(size=(2, 32))
        recovered = ofdm_demodulate(ofdm_modulate(grid, config), config)
        assert recovered == pytest.approx(grid)
