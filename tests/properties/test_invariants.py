"""Property-based tests (hypothesis) for core invariants.

These pin down the algebraic guarantees the paper's derivations rest on:
TRP conservation, optimality of constructive combining, exactness of the
two-probe estimator, and monotonicity of the reliability model.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arrays import UniformLinearArray, WeightQuantizer, single_beam_weights
from repro.arrays.patterns import first_null_offset, invert_pattern_offset, ula_power_pattern
from repro.core.multibeam import constructive_multibeam, optimal_mrt_weights
from repro.core.probing import two_probe_ratio
from repro.core.superres import ridge_solve
from repro.sim.metrics import (
    analytic_multibeam_reliability,
    analytic_single_beam_reliability,
)
from repro.sim.scenarios import two_path_channel
from repro.utils import wrap_angle, wrap_phase

ARRAY = UniformLinearArray(num_elements=8)

angles = st.floats(
    min_value=-1.0, max_value=1.0, allow_nan=False, allow_infinity=False
)
phases = st.floats(
    min_value=0.0, max_value=2 * np.pi - 1e-9, allow_nan=False
)
amplitudes = st.floats(min_value=0.05, max_value=1.0, allow_nan=False)


class TestWeightInvariants:
    @given(angle=angles)
    def test_single_beam_always_unit_norm(self, angle):
        w = single_beam_weights(ARRAY, angle)
        assert np.linalg.norm(w) == pytest.approx(1.0)

    @given(a1=angles, a2=angles, delta=amplitudes, sigma=phases)
    def test_constructive_multibeam_unit_norm(self, a1, a2, delta, sigma):
        gains = [1.0, delta * np.exp(1j * sigma)]
        w = constructive_multibeam(ARRAY, [a1, a2], gains)
        assert np.linalg.norm(w) == pytest.approx(1.0)

    @given(angle=angles, bits=st.integers(min_value=2, max_value=8))
    def test_quantizer_preserves_trp(self, angle, bits):
        from repro.arrays import BeamWeights

        quantizer = WeightQuantizer(phase_bits=bits, amplitude_range_db=27.0)
        beam = quantizer.apply(BeamWeights(single_beam_weights(ARRAY, angle)))
        assert np.linalg.norm(beam.vector) == pytest.approx(1.0)


class TestOptimalityInvariants:
    @settings(max_examples=30, deadline=None)
    @given(
        delta_db=st.floats(min_value=-20.0, max_value=0.0),
        sigma=phases,
        nlos=st.floats(min_value=0.2, max_value=1.0),
    )
    def test_multibeam_never_below_single_beam_at_band_center(
        self, delta_db, sigma, nlos
    ):
        """Section 3.2: optimal multi-beam SNR >= single-beam SNR, always."""
        channel = two_path_channel(
            ARRAY, nlos_angle_rad=nlos, delta_db=delta_db, sigma_rad=sigma
        )
        w_single = single_beam_weights(ARRAY, 0.0)
        w_mrt = optimal_mrt_weights(channel)

        def center_power(weights):
            return abs(np.sum(channel.beamformed_path_gains(weights))) ** 2

        assert center_power(w_mrt) >= center_power(w_single) * (1 - 1e-9)

    @settings(max_examples=30, deadline=None)
    @given(
        delta_db=st.floats(min_value=-15.0, max_value=0.0),
        sigma=phases,
    )
    def test_mrt_snr_follows_one_plus_delta_squared(self, delta_db, sigma):
        channel = two_path_channel(
            ARRAY, delta_db=delta_db, sigma_rad=sigma
        )
        w_single = single_beam_weights(ARRAY, 0.0)
        w_mrt = optimal_mrt_weights(channel)

        def center_power(weights):
            return abs(np.sum(channel.beamformed_path_gains(weights))) ** 2

        gain = center_power(w_mrt) / center_power(w_single)
        expected = 1 + 10 ** (delta_db / 10)
        # Beam sidelobe interactions allow small deviations.
        assert gain == pytest.approx(expected, rel=0.1)


class TestTwoProbeInvariants:
    @given(
        h1=st.floats(min_value=0.1, max_value=10.0),
        delta=amplitudes,
        sigma=phases,
    )
    def test_two_probe_ratio_exact(self, h1, delta, sigma):
        """Eq. 12 is algebraically exact for any noiseless channel pair."""
        h2 = h1 * delta * np.exp(1j * sigma)
        ratio = two_probe_ratio(
            abs(h1) ** 2,
            abs(h2) ** 2,
            abs(h1 + h2) ** 2,
            abs(h1 + 1j * h2) ** 2,
        )
        assert ratio == pytest.approx(h2 / h1, abs=1e-9)


class TestPatternInvariants:
    @given(offset_fraction=st.floats(min_value=0.01, max_value=0.9))
    def test_pattern_inverse_roundtrip(self, offset_fraction):
        offset = offset_fraction * first_null_offset(8) * 0.999
        power = ula_power_pattern(8, offset)
        if power <= 0:
            return  # numerically at the null; nothing to invert
        drop_db = -10 * np.log10(power)
        recovered = invert_pattern_offset(8, drop_db)
        assert recovered == pytest.approx(offset, abs=1e-6)


class TestReliabilityModel:
    @given(
        beta=st.floats(min_value=0.0, max_value=1.0),
        k=st.integers(min_value=2, max_value=6),
    )
    def test_multibeam_at_least_single(self, beta, k):
        assert analytic_multibeam_reliability(
            beta, k
        ) >= analytic_single_beam_reliability(beta) - 1e-12

    @given(beta=st.floats(min_value=0.01, max_value=0.99))
    def test_strictly_better_for_interior_beta(self, beta):
        assert analytic_multibeam_reliability(
            beta, 2
        ) > analytic_single_beam_reliability(beta)


class TestRidgeInvariants:
    @settings(max_examples=25, deadline=None)
    @given(
        scale=st.floats(min_value=1e-6, max_value=1e3),
        seed=st.integers(min_value=0, max_value=1000),
    )
    def test_ridge_solution_scales_linearly(self, scale, seed):
        rng = np.random.default_rng(seed)
        s = rng.normal(size=(16, 3))
        y = rng.normal(size=16) + 1j * rng.normal(size=16)
        base = ridge_solve(s, y, 1e-3)
        scaled = ridge_solve(s, y * scale, 1e-3)
        assert scaled == pytest.approx(base * scale, rel=1e-8)


class TestAngleWrapInvariants:
    @given(angle=st.floats(min_value=-100.0, max_value=100.0))
    def test_wrap_angle_in_range(self, angle):
        wrapped = wrap_angle(angle)
        assert -np.pi < wrapped <= np.pi + 1e-12
        # Wrapping preserves the angle modulo 2 pi.
        assert np.cos(wrapped) == pytest.approx(np.cos(angle), abs=1e-9)
        assert np.sin(wrapped) == pytest.approx(np.sin(angle), abs=1e-9)

    @given(phase=st.floats(min_value=-100.0, max_value=100.0))
    def test_wrap_phase_in_range(self, phase):
        wrapped = wrap_phase(phase)
        assert 0.0 <= wrapped < 2 * np.pi
