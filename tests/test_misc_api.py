"""Tests for small public API surfaces not covered elsewhere."""

import numpy as np
import pytest

from repro.channel.environment import Environment, Reflector
from repro.experiments.common import format_series, make_manager
from repro.sim.scenarios import GeometricScenario
from repro.channel.mobility import StaticPose


class TestFormatSeries:
    def test_renders_rows(self):
        text = format_series(
            "snr vs angle", [0.0, 1.0, 2.0], [10.0, 20.0, 30.0],
            unit_x="deg", unit_y="dB",
        )
        assert "snr vs angle" in text
        assert "deg" in text and "dB" in text
        assert len(text.splitlines()) == 4  # header + 3 rows

    def test_decimates_long_series(self):
        xs = np.arange(100)
        text = format_series("long", xs, xs, max_rows=10)
        assert len(text.splitlines()) <= 12


class TestEnvironmentTraceMethod:
    def test_delegates_to_trace_paths(self):
        wall = Reflector(start=(-10.0, 4.0), end=(10.0, 4.0),
                         material="metal")
        env = Environment(reflectors=(wall,))
        paths = env.trace((0.0, 0.0), (8.0, 0.0), tx_boresight_rad=0.0,
                          rx_boresight_rad=np.pi)
        labels = sorted(p.label for p in paths)
        assert labels == ["los", "reflection:metal"]


class TestMakeManagerFactory:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown manager kind"):
            make_manager("psychic", 0)

    @pytest.mark.parametrize(
        "kind",
        [
            "mmreliable", "mmreliable-static", "mmreliable-nocc",
            "mmreliable-notrack-nocc", "reactive", "beamspy", "widebeam",
            "oracle",
        ],
    )
    def test_all_kinds_construct(self, kind):
        manager = make_manager(kind, 0)
        assert manager is not None


class TestGeometricScenarioName:
    def test_scenario_carries_name(self):
        wall = Reflector(start=(-10.0, 4.0), end=(10.0, 4.0))
        env = Environment(reflectors=(wall,))
        from repro.arrays import UniformLinearArray

        scenario = GeometricScenario(
            environment=env,
            array=UniformLinearArray(num_elements=8),
            tx_position=(0.0, 0.0),
            trajectory=StaticPose(position=(8.0, 0.0),
                                  orientation_rad=np.pi),
            tx_boresight_rad=0.0,
            name="street",
        )
        assert scenario.name == "street"
        channel = scenario.channel_at(0.0)
        assert channel.num_paths >= 1
