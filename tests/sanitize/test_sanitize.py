"""Runtime concurrency sanitizer: gating, the report store, the
loop-lag monitor, cache coherence sweeps, and the serve integration.

pytest-asyncio is not a dependency, so the async tests drive their own
loops through ``asyncio.run`` (same convention as tests/serve).
"""

import asyncio
import threading
import time

import pytest

from repro import sanitize
from repro.perf.cache import BoundedCache


@pytest.fixture(autouse=True)
def _clean_reports():
    sanitize.clear_reports()
    yield
    sanitize.clear_reports()


class TestGating:
    def test_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv(sanitize.ENV_VAR, raising=False)
        assert not sanitize.enabled()

    @pytest.mark.parametrize("value", ["1", "true", "ON", " yes "])
    def test_truthy_values_enable(self, monkeypatch, value):
        monkeypatch.setenv(sanitize.ENV_VAR, value)
        assert sanitize.enabled()

    @pytest.mark.parametrize("value", ["0", "off", "no", "", "2"])
    def test_other_values_stay_off(self, monkeypatch, value):
        monkeypatch.setenv(sanitize.ENV_VAR, value)
        assert not sanitize.enabled()

    def test_threshold_default(self, monkeypatch):
        monkeypatch.delenv(sanitize.THRESHOLD_ENV_VAR, raising=False)
        assert sanitize.threshold_s() == sanitize.DEFAULT_THRESHOLD_S

    def test_threshold_override(self, monkeypatch):
        monkeypatch.setenv(sanitize.THRESHOLD_ENV_VAR, "0.5")
        assert sanitize.threshold_s() == 0.5

    @pytest.mark.parametrize("junk", ["fast", "", "-1", "0"])
    def test_threshold_junk_falls_back(self, monkeypatch, junk):
        monkeypatch.setenv(sanitize.THRESHOLD_ENV_VAR, junk)
        assert sanitize.threshold_s() == sanitize.DEFAULT_THRESHOLD_S


class TestReportStore:
    def test_record_and_counts(self):
        sanitize.record("loop_blocked", "a")
        sanitize.record("loop_blocked", "b")
        sanitize.record("cache_overflow", "c")
        assert sanitize.report_counts() == {
            "loop_blocked": 2,
            "cache_overflow": 1,
        }
        kinds = [report.kind for report in sanitize.reports()]
        assert kinds == ["loop_blocked", "loop_blocked", "cache_overflow"]

    def test_clear(self):
        sanitize.record("loop_blocked", "x")
        sanitize.clear_reports()
        assert sanitize.reports() == []
        assert sanitize.report_counts() == {}

    def test_concurrent_recording_loses_nothing(self):
        # The store is the sanitizer's own shared state; it must hold
        # up under exactly the concurrency it exists to police.
        per_thread, threads = 200, 8

        def hammer(index):
            for i in range(per_thread):
                sanitize.record("stress", f"{index}:{i}")

        workers = [
            threading.Thread(target=hammer, args=(index,))
            for index in range(threads)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        assert sanitize.report_counts() == {"stress": per_thread * threads}


class TestLoopLagMonitor:
    def test_detects_blocked_loop(self):
        async def scenario():
            monitor = sanitize.LoopLagMonitor(
                asyncio.get_running_loop(),
                threshold=0.1,
                interval_s=0.02,
                source="test",
            ).start()
            try:
                await asyncio.sleep(0.1)  # a few clean heartbeats first
                time.sleep(0.4)  # deliberately block the loop
                await asyncio.sleep(0.1)  # let queued beats be measured
            finally:
                monitor.stop()
            return monitor

        monitor = asyncio.run(scenario())
        assert monitor.beats > 0
        assert monitor.max_lag_s > 0.1
        assert sanitize.report_counts().get("loop_blocked", 0) >= 1
        detail = next(
            report.detail
            for report in sanitize.reports()
            if report.kind == "loop_blocked"
        )
        assert "[test]" in detail

    def test_quiet_on_responsive_loop(self):
        async def scenario():
            monitor = sanitize.LoopLagMonitor(
                asyncio.get_running_loop(),
                threshold=5.0,  # generous: CI boxes stall for tens of ms
                interval_s=0.02,
            ).start()
            try:
                await asyncio.sleep(0.2)
            finally:
                monitor.stop()
            return monitor

        monitor = asyncio.run(scenario())
        assert monitor.beats > 0
        assert sanitize.report_counts().get("loop_blocked", 0) == 0

    def test_survives_closed_loop(self):
        async def scenario():
            return sanitize.LoopLagMonitor(
                asyncio.get_running_loop(), interval_s=0.02
            ).start()

        monitor = asyncio.run(scenario())  # loop closes while running
        time.sleep(0.1)  # heartbeat hits the closed loop and exits
        monitor.stop()  # must not raise

    def test_double_start_rejected(self):
        async def scenario():
            monitor = sanitize.LoopLagMonitor(
                asyncio.get_running_loop(), interval_s=0.02
            ).start()
            try:
                with pytest.raises(RuntimeError):
                    monitor.start()
            finally:
                monitor.stop()

        asyncio.run(scenario())


class TestVerifyCaches:
    def test_coherent_cache_is_quiet(self):
        cache = BoundedCache("sanitize-test-coherent", maxsize=4)
        for i in range(8):
            cache.get_or_build(i % 3, lambda: i)
        assert sanitize.verify_caches() == []
        assert sanitize.report_counts() == {}

    def test_torn_tally_detected_and_restored(self):
        cache = BoundedCache("sanitize-test-torn", maxsize=4)
        cache.get_or_build("k", lambda: 1)
        cache.hits += 1  # simulate an unlocked read-modify-write
        try:
            filed = sanitize.verify_caches()
            assert any(
                report.kind == "cache_incoherent"
                and "sanitize-test-torn" in report.detail
                for report in filed
            )
        finally:
            cache.hits -= 1  # leave the process-wide registry coherent

    def test_overflow_detected_and_restored(self):
        cache = BoundedCache("sanitize-test-overflow", maxsize=2)
        for extra in range(4):
            cache._entries[f"stuffed-{extra}"] = extra  # bypass the bound
        try:
            filed = sanitize.verify_caches()
            assert any(
                report.kind == "cache_overflow"
                and "sanitize-test-overflow" in report.detail
                for report in filed
            )
        finally:
            cache.clear()


class TestServeIntegration:
    def test_snapshot_carries_sanitize_counts(self, tmp_path, monkeypatch):
        from repro.serve import JobServer

        monkeypatch.setenv(sanitize.ENV_VAR, "1")

        async def scenario():
            server = JobServer(str(tmp_path / "jobs.jsonl"), job_workers=1)
            await server.start()
            try:
                assert server._sanitizer is not None
                payload = server.snapshot()
            finally:
                await server.stop()
            assert server._sanitizer is None
            return payload

        payload = asyncio.run(scenario())
        assert payload["sanitize"] == {}

    def test_snapshot_surfaces_filed_reports(self, tmp_path, monkeypatch):
        from repro.serve import JobServer

        monkeypatch.setenv(sanitize.ENV_VAR, "1")

        async def scenario():
            server = JobServer(str(tmp_path / "jobs.jsonl"), job_workers=1)
            await server.start()
            try:
                sanitize.record("loop_blocked", "planted by test")
                return server.snapshot()
            finally:
                await server.stop()

        payload = asyncio.run(scenario())
        assert payload["sanitize"] == {"loop_blocked": 1}

    def test_disabled_server_has_no_sanitize_key(self, tmp_path, monkeypatch):
        from repro.serve import JobServer

        monkeypatch.delenv(sanitize.ENV_VAR, raising=False)

        async def scenario():
            server = JobServer(str(tmp_path / "jobs.jsonl"), job_workers=1)
            await server.start()
            try:
                assert server._sanitizer is None
                return server.snapshot()
            finally:
                await server.stop()

        payload = asyncio.run(scenario())
        assert "sanitize" not in payload
