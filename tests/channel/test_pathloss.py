"""Tests for path loss, reflection loss and atmospheric absorption."""

import numpy as np
import pytest

from repro.channel.pathloss import (
    MATERIAL_REFLECTION_LOSS_DB,
    atmospheric_absorption_db_per_km,
    friis_path_loss_db,
    path_amplitude,
    reflection_loss_db,
    total_path_loss_db,
)


class TestFriis:
    def test_known_value_28ghz_1m(self):
        # FSPL(1 m, 28 GHz) = 20 log10(4 pi f / c) ~= 61.4 dB.
        assert friis_path_loss_db(1.0, 28e9) == pytest.approx(61.4, abs=0.1)

    def test_doubling_distance_adds_6db(self):
        assert friis_path_loss_db(20.0, 28e9) - friis_path_loss_db(
            10.0, 28e9
        ) == pytest.approx(6.02, abs=0.01)

    def test_60ghz_higher_loss_than_28ghz(self):
        delta = friis_path_loss_db(10.0, 60e9) - friis_path_loss_db(10.0, 28e9)
        assert delta == pytest.approx(20 * np.log10(60 / 28), abs=0.01)

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            friis_path_loss_db(0.0, 28e9)
        with pytest.raises(ValueError):
            friis_path_loss_db(1.0, 0.0)


class TestReflectionLoss:
    def test_metal_is_best_reflector(self):
        losses = MATERIAL_REFLECTION_LOSS_DB
        assert losses["metal"] == min(losses.values())

    def test_all_materials_in_measured_range(self):
        # Paper Fig. 4: common reflectors attenuate by ~1-10 dB.
        for loss in MATERIAL_REFLECTION_LOSS_DB.values():
            assert 0.5 <= loss <= 10.0

    def test_unknown_material_lists_options(self):
        with pytest.raises(KeyError, match="concrete"):
            reflection_loss_db("vibranium")


class TestAtmosphericAbsorption:
    def test_negligible_at_28ghz(self):
        assert atmospheric_absorption_db_per_km(28e9) < 0.5

    def test_oxygen_peak_at_60ghz(self):
        assert atmospheric_absorption_db_per_km(60e9) == pytest.approx(
            15.0, rel=0.1
        )

    def test_60ghz_much_worse_than_28ghz(self):
        ratio = atmospheric_absorption_db_per_km(
            60e9
        ) / atmospheric_absorption_db_per_km(28e9)
        assert ratio > 50

    def test_resonance_shape(self):
        # Absorption rises toward 60 GHz from both sides.
        assert atmospheric_absorption_db_per_km(50e9) < atmospheric_absorption_db_per_km(57e9)
        assert atmospheric_absorption_db_per_km(70e9) < atmospheric_absorption_db_per_km(63e9)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            atmospheric_absorption_db_per_km(0.0)


class TestTotalPathLoss:
    def test_reflection_adds_material_loss(self):
        direct = total_path_loss_db(10.0, 28e9, num_reflections=0)
        bounced = total_path_loss_db(10.0, 28e9, num_reflections=1, material="concrete")
        assert bounced - direct == pytest.approx(
            MATERIAL_REFLECTION_LOSS_DB["concrete"]
        )

    def test_rejects_negative_reflections(self):
        with pytest.raises(ValueError):
            total_path_loss_db(10.0, 28e9, num_reflections=-1)

    def test_path_amplitude_consistent(self):
        loss = total_path_loss_db(15.0, 28e9)
        assert path_amplitude(15.0, 28e9) == pytest.approx(10 ** (-loss / 20))
