"""Tests for batched channel evaluation (``repro.channel.batch``).

The batch protocol's contract: each row of a :class:`ChannelBatch` must
reproduce the corresponding per-sample :class:`GeometricChannel` — path
parameters bitwise, beamformed responses to the documented 1e-9
contraction tolerance.
"""

import numpy as np
import pytest

from repro.arrays import UniformLinearArray
from repro.arrays.steering import single_beam_weights
from repro.channel.batch import ChannelBatch, batch_from_channels
from repro.channel.blockage import BlockageEvent, BlockageSchedule
from repro.channel.geometric import GeometricChannel
from repro.channel.paths import Path
from repro.sim.scenarios import indoor_two_path_scenario

ARRAY = UniformLinearArray(num_elements=8)
FREQS = np.linspace(-200e6, 200e6, 64)


@pytest.fixture
def scenario():
    schedule = BlockageSchedule(
        events=(
            BlockageEvent(
                start_s=0.03,
                duration_s=0.04,
                depth_db=25.0,
                ramp_s=0.01,
                path_index=0,
            ),
        )
    )
    return indoor_two_path_scenario(
        ARRAY, translation_speed_mps=2.0, blockage=schedule
    )


class TestChannelBatchConstruction:
    def test_shape_validation(self):
        with pytest.raises(ValueError, match="1-D"):
            ChannelBatch(
                tx_array=ARRAY,
                times_s=np.zeros((2, 2)),
                aods_rad=np.zeros((2, 2)),
                gains=np.zeros((2, 2)),
                delays_s=np.zeros((2, 2)),
            )
        with pytest.raises(ValueError, match="shape"):
            ChannelBatch(
                tx_array=ARRAY,
                times_s=np.zeros(3),
                aods_rad=np.zeros((3, 2)),
                gains=np.zeros((3, 3)),
                delays_s=np.zeros((3, 2)),
            )

    def test_len_and_num_paths(self, scenario):
        batch = scenario.channel_batch(np.arange(0.0, 0.01, 1e-3))
        assert len(batch) == 10
        assert batch.num_paths == 2


class TestBatchMatchesPerSample:
    def test_parameters_bitwise_identical(self, scenario):
        times = np.arange(0.0, 0.1, 1e-3)
        batch = scenario.channel_batch(times)
        for i, t in enumerate(times):
            channel = scenario.channel_at(float(t))
            np.testing.assert_array_equal(batch.aods_rad[i], channel.aods())
            np.testing.assert_array_equal(batch.gains[i], channel.gains())
            np.testing.assert_array_equal(
                batch.delays_s[i], channel.delays()
            )

    def test_frequency_response_tolerance(self, scenario):
        times = np.arange(0.0, 0.1, 1e-3)
        weights = single_beam_weights(ARRAY, 0.1)
        batch = scenario.channel_batch(times)
        responses = batch.frequency_response(weights, FREQS)
        for i, t in enumerate(times):
            expected = scenario.channel_at(float(t)).frequency_response(
                weights, FREQS
            )
            np.testing.assert_allclose(responses[i], expected, rtol=1e-9)

    def test_phase_drift_applied(self):
        base = indoor_two_path_scenario(ARRAY)
        drifting = type(base)(
            base_channel=base.base_channel,
            angular_rates_rad_s=base.angular_rates_rad_s,
            phase_drift_rad_s=(40.0, -15.0),
            blockage=base.blockage,
        )
        times = np.arange(0.0, 0.05, 1e-3)
        batch = drifting.channel_batch(times)
        for i, t in enumerate(times):
            # The drift rotation itself is bitwise-identical, but the
            # complex gain*rotation multiply runs through numpy's array
            # loop (which may fuse multiply-adds) instead of the scalar
            # multiply — a documented last-ulp difference.
            np.testing.assert_allclose(
                batch.gains[i],
                drifting.channel_at(float(t)).gains(),
                rtol=1e-13,
            )

    def test_channel_at_index_round_trip(self, scenario):
        times = np.arange(0.0, 0.01, 1e-3)
        batch = scenario.channel_batch(times)
        weights = single_beam_weights(ARRAY, 0.0)
        materialized = batch.channel_at_index(4)
        np.testing.assert_allclose(
            materialized.frequency_response(weights, FREQS),
            batch.frequency_response(weights, FREQS)[4],
            rtol=1e-9,
        )


class TestSlicingAndPrecompute:
    def test_sliced_is_view(self, scenario):
        batch = scenario.channel_batch(np.arange(0.0, 0.02, 1e-3))
        view = batch.sliced(5, 12)
        assert len(view) == 7
        np.testing.assert_array_equal(view.times_s, batch.times_s[5:12])
        assert view.aods_rad.base is not None

    def test_precompute_preserves_response(self, scenario):
        times = np.arange(0.0, 0.02, 1e-3)
        weights = single_beam_weights(ARRAY, 0.2)
        plain = scenario.channel_batch(times)
        primed = scenario.channel_batch(times).precompute(FREQS)
        np.testing.assert_array_equal(
            primed.frequency_response(weights, FREQS),
            plain.frequency_response(weights, FREQS),
        )

    def test_sliced_propagates_precompute(self, scenario):
        times = np.arange(0.0, 0.02, 1e-3)
        weights = single_beam_weights(ARRAY, 0.2)
        primed = scenario.channel_batch(times).precompute(FREQS)
        view = primed.sliced(3, 9)
        assert getattr(view, "_freqs", None) is not None
        np.testing.assert_array_equal(
            view.frequency_response(weights, FREQS),
            primed.frequency_response(weights, FREQS)[3:9],
        )

    def test_other_grid_bypasses_precompute(self, scenario):
        times = np.arange(0.0, 0.01, 1e-3)
        weights = single_beam_weights(ARRAY, 0.2)
        primed = scenario.channel_batch(times).precompute(FREQS)
        other = np.linspace(-50e6, 50e6, 16)
        fresh = scenario.channel_batch(times)
        np.testing.assert_array_equal(
            primed.frequency_response(weights, other),
            fresh.frequency_response(weights, other),
        )


class TestBatchFromChannels:
    def channels(self, count=4):
        return [
            GeometricChannel(
                tx_array=ARRAY,
                paths=(
                    Path(aod_rad=0.1 * i, gain=1.0 + 0j, delay_s=20e-9),
                    Path(aod_rad=0.5, gain=0.3j, delay_s=22e-9),
                ),
            )
            for i in range(count)
        ]

    def test_stacks_uniform_channels(self):
        channels = self.channels()
        batch = batch_from_channels(channels)
        assert batch is not None and len(batch) == 4
        weights = single_beam_weights(ARRAY, 0.0)
        for i, channel in enumerate(channels):
            np.testing.assert_allclose(
                batch.frequency_response(weights, FREQS)[i],
                channel.frequency_response(weights, FREQS),
                rtol=1e-9,
            )

    def test_rejects_empty(self):
        assert batch_from_channels([]) is None

    def test_rejects_differing_path_counts(self):
        channels = self.channels(2)
        channels.append(
            GeometricChannel(
                tx_array=ARRAY,
                paths=(Path(aod_rad=0.0, gain=1.0 + 0j),),
            )
        )
        assert batch_from_channels(channels) is None

    def test_rejects_directional_ue(self):
        directional = GeometricChannel(
            tx_array=ARRAY,
            paths=self.channels(1)[0].paths,
            rx_array=UniformLinearArray(num_elements=4),
        )
        assert batch_from_channels([directional]) is None


class TestBlockageBatch:
    def test_event_batch_matches_scalar(self):
        event = BlockageEvent(
            start_s=0.2, duration_s=0.4, depth_db=30.0, ramp_s=0.1, path_index=0
        )
        times = np.linspace(0.0, 0.8, 161)
        batched = event.attenuation_db_batch(times)
        scalar = np.array([event.attenuation_db(float(t)) for t in times])
        np.testing.assert_array_equal(batched, scalar)

    def test_hard_event_batch_matches_scalar(self):
        event = BlockageEvent(
            start_s=0.2, duration_s=0.4, depth_db=30.0, ramp_s=0.0, path_index=1
        )
        times = np.linspace(0.0, 0.8, 161)
        np.testing.assert_array_equal(
            event.attenuation_db_batch(times),
            np.array([event.attenuation_db(float(t)) for t in times]),
        )

    def test_schedule_batch_matches_scalar(self):
        schedule = BlockageSchedule(
            events=(
                BlockageEvent(
                    start_s=0.1, duration_s=0.2, depth_db=20.0, ramp_s=0.05,
                    path_index=0,
                ),
                BlockageEvent(
                    start_s=0.2, duration_s=0.3, depth_db=10.0, ramp_s=0.0,
                    path_index=1,
                ),
                BlockageEvent(
                    start_s=0.0, duration_s=1.0, depth_db=5.0, ramp_s=0.0,
                    path_index=7,  # beyond num_paths: must be skipped
                ),
            )
        )
        times = np.linspace(0.0, 0.6, 121)
        batched = schedule.amplitude_factors_batch(times, num_paths=2)
        for i, t in enumerate(times):
            np.testing.assert_array_equal(
                batched[i], schedule.amplitude_factors(float(t), 2)
            )
