"""Tests for channel path primitives."""

import numpy as np
import pytest

from repro.channel.paths import (
    Path,
    relative_delays,
    relative_gains,
    sort_by_power,
)


class TestPath:
    def test_power(self):
        path = Path(aod_rad=0.0, gain=0.5 + 0.5j)
        assert path.power == pytest.approx(0.5)

    def test_power_db(self):
        path = Path(aod_rad=0.0, gain=0.1)
        assert path.power_db == pytest.approx(-20.0)

    def test_zero_gain_power_db(self):
        path = Path(aod_rad=0.0, gain=0.0)
        assert path.power_db == -np.inf

    def test_rejects_negative_delay(self):
        with pytest.raises(ValueError):
            Path(aod_rad=0.0, gain=1.0, delay_s=-1e-9)

    def test_attenuated(self):
        path = Path(aod_rad=0.1, gain=1.0 + 0j, delay_s=1e-9, label="los")
        out = path.attenuated(0.5)
        assert out.gain == pytest.approx(0.5)
        assert out.aod_rad == path.aod_rad
        assert out.label == "los"

    def test_rotated(self):
        path = Path(aod_rad=0.1, gain=1.0, aoa_rad=0.2)
        out = path.rotated(0.05, -0.05)
        assert out.aod_rad == pytest.approx(0.15)
        assert out.aoa_rad == pytest.approx(0.15)

    def test_delayed(self):
        path = Path(aod_rad=0.0, gain=1.0, delay_s=1e-9)
        assert path.delayed(2e-9).delay_s == pytest.approx(3e-9)


class TestSortByPower:
    def test_orders_strongest_first(self):
        paths = [
            Path(aod_rad=0.0, gain=0.1),
            Path(aod_rad=0.1, gain=1.0),
            Path(aod_rad=0.2, gain=0.5),
        ]
        ordered = sort_by_power(paths)
        assert [abs(p.gain) for p in ordered] == [1.0, 0.5, 0.1]


class TestRelativeGains:
    def test_reference_is_unity(self):
        paths = [
            Path(aod_rad=0.0, gain=2.0),
            Path(aod_rad=0.1, gain=1.0j),
        ]
        gains = relative_gains(paths)
        assert gains[0] == pytest.approx(1.0)
        assert gains[1] == pytest.approx(0.5j)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            relative_gains([])

    def test_zero_reference_raises(self):
        with pytest.raises(ValueError):
            relative_gains([Path(aod_rad=0.0, gain=0.0)])


class TestRelativeDelays:
    def test_relative_to_strongest(self):
        paths = [
            Path(aod_rad=0.0, gain=1.0, delay_s=10e-9),
            Path(aod_rad=0.1, gain=0.5, delay_s=13e-9),
        ]
        delays = relative_delays(paths)
        assert delays == pytest.approx([0.0, 3e-9])
