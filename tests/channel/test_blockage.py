"""Tests for blockage processes."""

import numpy as np
import pytest

from repro.channel.blockage import (
    BlockageEvent,
    BlockageSchedule,
    EMPTY_SCHEDULE,
    HumanBlocker,
    random_blockage_schedule,
)


class TestBlockageEvent:
    def test_zero_outside_window(self):
        event = BlockageEvent(path_index=0, start_s=0.2, duration_s=0.1)
        assert event.attenuation_db(0.1) == 0.0
        assert event.attenuation_db(0.35) == 0.0

    def test_full_depth_in_hold(self):
        event = BlockageEvent(
            path_index=0, start_s=0.2, duration_s=0.1, depth_db=26.0,
            ramp_s=1e-3,
        )
        assert event.attenuation_db(0.25) == pytest.approx(26.0)

    def test_ramp_is_linear(self):
        event = BlockageEvent(
            path_index=0, start_s=0.0, duration_s=0.1, depth_db=20.0,
            ramp_s=10e-3,
        )
        assert event.attenuation_db(5e-3) == pytest.approx(10.0)

    def test_release_ramp(self):
        event = BlockageEvent(
            path_index=0, start_s=0.0, duration_s=0.1, depth_db=20.0,
            ramp_s=10e-3,
        )
        assert event.attenuation_db(0.1 - 5e-3) == pytest.approx(10.0)

    def test_zero_ramp_is_square(self):
        event = BlockageEvent(
            path_index=0, start_s=0.0, duration_s=0.1, depth_db=20.0, ramp_s=0.0
        )
        assert event.attenuation_db(1e-6) == pytest.approx(20.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            BlockageEvent(path_index=-1, start_s=0.0, duration_s=0.1)
        with pytest.raises(ValueError):
            BlockageEvent(path_index=0, start_s=0.0, duration_s=0.0)
        with pytest.raises(ValueError):
            BlockageEvent(path_index=0, start_s=0.0, duration_s=0.1, depth_db=-1)


class TestBlockageSchedule:
    def test_empty_schedule_no_attenuation(self):
        assert EMPTY_SCHEDULE.amplitude_factors(0.5, 3) == pytest.approx(
            np.ones(3)
        )

    def test_per_path_routing(self):
        schedule = BlockageSchedule(
            events=(
                BlockageEvent(path_index=1, start_s=0.0, duration_s=1.0,
                              depth_db=20.0, ramp_s=0.0),
            )
        )
        attenuation = schedule.attenuation_db(0.5, 3)
        assert attenuation == pytest.approx([0.0, 20.0, 0.0])

    def test_overlapping_events_stack(self):
        event = BlockageEvent(path_index=0, start_s=0.0, duration_s=1.0,
                              depth_db=10.0, ramp_s=0.0)
        schedule = BlockageSchedule(events=(event, event))
        assert schedule.attenuation_db(0.5, 1)[0] == pytest.approx(20.0)

    def test_event_beyond_path_count_ignored(self):
        schedule = BlockageSchedule(
            events=(
                BlockageEvent(path_index=5, start_s=0.0, duration_s=1.0),
            )
        )
        assert schedule.attenuation_db(0.5, 2) == pytest.approx([0.0, 0.0])

    def test_amplitude_factor_conversion(self):
        schedule = BlockageSchedule(
            events=(
                BlockageEvent(path_index=0, start_s=0.0, duration_s=1.0,
                              depth_db=20.0, ramp_s=0.0),
            )
        )
        assert schedule.amplitude_factors(0.5, 1)[0] == pytest.approx(0.1)

    def test_blocks_everything(self):
        events = tuple(
            BlockageEvent(path_index=k, start_s=0.0, duration_s=1.0,
                          depth_db=30.0, ramp_s=0.0)
            for k in range(2)
        )
        schedule = BlockageSchedule(events=events)
        assert schedule.blocks_everything(0.5, 2)
        assert not schedule.blocks_everything(0.5, 3)

    def test_merged(self):
        a = BlockageSchedule(
            events=(BlockageEvent(path_index=0, start_s=0.0, duration_s=0.1),)
        )
        b = BlockageSchedule(
            events=(BlockageEvent(path_index=1, start_s=0.5, duration_s=0.1),)
        )
        assert len(a.merged(b)) == 2


class TestHumanBlocker:
    def test_crossing_order_follows_geometry(self):
        # Walker moves left to right: hits the -20 deg beam before +20 deg.
        blocker = HumanBlocker(distance_from_tx_m=3.0, speed_mps=1.0,
                               lateral_start_m=-3.0)
        schedule = blocker.crossing_schedule(
            [np.deg2rad(-20.0), np.deg2rad(20.0)]
        )
        starts = {e.path_index: e.start_s for e in schedule.events}
        assert starts[0] < starts[1]

    def test_occlusion_duration(self):
        blocker = HumanBlocker(
            distance_from_tx_m=3.0, speed_mps=2.0, body_width_m=0.4,
            lateral_start_m=-3.0,
        )
        schedule = blocker.crossing_schedule([0.0])
        assert schedule.events[0].duration_s == pytest.approx(0.2)

    def test_beams_behind_start_skipped(self):
        blocker = HumanBlocker(distance_from_tx_m=3.0, speed_mps=1.0,
                               lateral_start_m=0.5)
        schedule = blocker.crossing_schedule([np.deg2rad(-30.0)])
        assert len(schedule) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            HumanBlocker(distance_from_tx_m=0.0)
        with pytest.raises(ValueError):
            HumanBlocker(distance_from_tx_m=1.0, speed_mps=0.0)


class TestRandomSchedule:
    def test_events_fit_window(self):
        schedule = random_blockage_schedule(
            num_paths=2, observation_s=1.0, num_events=5, rng=3
        )
        for event in schedule.events:
            assert 0.0 <= event.start_s
            assert event.end_s <= 1.0
            assert 0.1 <= event.duration_s <= 0.5

    def test_block_strongest_only(self):
        schedule = random_blockage_schedule(
            num_paths=3, num_events=10, block_strongest_only=True, rng=4
        )
        assert all(e.path_index == 0 for e in schedule.events)

    def test_deterministic(self):
        a = random_blockage_schedule(num_paths=2, rng=9)
        b = random_blockage_schedule(num_paths=2, rng=9)
        assert a.events[0].start_s == b.events[0].start_s

    def test_validation(self):
        with pytest.raises(ValueError):
            random_blockage_schedule(num_paths=0)
        with pytest.raises(ValueError):
            random_blockage_schedule(num_paths=1, min_duration_s=0.5,
                                     max_duration_s=0.1)
        with pytest.raises(ValueError):
            random_blockage_schedule(num_paths=1, observation_s=0.3)
