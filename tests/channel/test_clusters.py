"""Tests for the stochastic clustered channel generator."""

import numpy as np
import pytest

from repro.arrays import UniformLinearArray, single_beam_weights
from repro.channel.clusters import (
    INDOOR_CLUSTERS,
    OUTDOOR_CLUSTERS,
    ClusterProfile,
    cluster_relative_attenuation_db,
    generate_clustered_channel,
)
from repro.core.multibeam import multibeam_from_channel, optimal_mrt_weights


ARRAY = UniformLinearArray(num_elements=8)


class TestGeneration:
    def test_path_count(self):
        channel = generate_clustered_channel(ARRAY, INDOOR_CLUSTERS, rng=0)
        expected = 1 + INDOOR_CLUSTERS.num_clusters * INDOOR_CLUSTERS.rays_per_cluster
        assert channel.num_paths == expected

    def test_los_is_strongest_single_path(self):
        channel = generate_clustered_channel(ARRAY, INDOOR_CLUSTERS, rng=1)
        strongest = channel.strongest_paths(1)[0]
        assert strongest.label == "los"

    def test_deterministic_under_seed(self):
        a = generate_clustered_channel(ARRAY, INDOOR_CLUSTERS, rng=5)
        b = generate_clustered_channel(ARRAY, INDOOR_CLUSTERS, rng=5)
        assert a.gains() == pytest.approx(b.gains())
        assert a.aods() == pytest.approx(b.aods())

    def test_clusters_angularly_separated(self):
        channel = generate_clustered_channel(ARRAY, INDOOR_CLUSTERS, rng=2)
        centers = {}
        for path in channel.paths:
            if path.label != "los":
                key = path.label.split(":")[0]
                centers.setdefault(key, []).append(path.aod_rad)
        means = [np.mean(v) for v in centers.values()]
        means.append(0.0)  # LOS
        for i in range(len(means)):
            for j in range(i + 1, len(means)):
                # Intra-cluster spread can push means slightly together.
                assert abs(means[i] - means[j]) > np.deg2rad(6.0)

    def test_excess_delays_positive(self):
        channel = generate_clustered_channel(ARRAY, OUTDOOR_CLUSTERS, rng=3)
        delays = channel.delays()
        los_delay = delays[0]
        assert np.all(delays[1:] > los_delay)

    def test_validation(self):
        with pytest.raises(ValueError):
            ClusterProfile(name="x", num_clusters=-1)
        with pytest.raises(ValueError):
            ClusterProfile(name="x", rays_per_cluster=0)
        with pytest.raises(ValueError):
            ClusterProfile(name="x", delay_spread_s=0.0)

    def test_impossible_separation_raises(self):
        profile = ClusterProfile(
            name="cramped",
            num_clusters=10,
            min_cluster_separation_rad=np.deg2rad(30.0),
        )
        with pytest.raises(RuntimeError, match="separation"):
            generate_clustered_channel(ARRAY, profile, rng=0)


class TestStatistics:
    def test_indoor_median_attenuation_matches_profile(self):
        samples = [
            cluster_relative_attenuation_db(
                generate_clustered_channel(ARRAY, INDOOR_CLUSTERS, rng=seed)
            )
            for seed in range(80)
        ]
        # Strongest-of-two clusters: median sits at or below the
        # per-cluster mean of 7.2 dB.
        assert 3.0 <= np.median(samples) <= 8.5

    def test_outdoor_reflections_stronger(self):
        indoor = np.median(
            [
                cluster_relative_attenuation_db(
                    generate_clustered_channel(
                        ARRAY, INDOOR_CLUSTERS, rng=seed
                    )
                )
                for seed in range(60)
            ]
        )
        outdoor = np.median(
            [
                cluster_relative_attenuation_db(
                    generate_clustered_channel(
                        ARRAY, OUTDOOR_CLUSTERS, rng=seed
                    )
                )
                for seed in range(60)
            ]
        )
        assert outdoor < indoor


class TestMultibeamOnClusteredChannels:
    def test_multibeam_gains_on_average(self):
        """Constructive multi-beam helps across random realizations."""
        gains_db = []
        for seed in range(20):
            channel = generate_clustered_channel(
                ARRAY, INDOOR_CLUSTERS, rng=seed
            )

            def power(weights):
                return abs(
                    np.sum(channel.beamformed_path_gains(weights))
                ) ** 2

            single = power(
                single_beam_weights(ARRAY, channel.paths[0].aod_rad)
            )
            multi = power(multibeam_from_channel(channel, 3).weights().vector)
            gains_db.append(10 * np.log10(multi / single))
        assert np.mean(gains_db) > 0.3

    def test_mrt_upper_bounds_multibeam(self):
        for seed in range(5):
            channel = generate_clustered_channel(
                ARRAY, INDOOR_CLUSTERS, rng=seed
            )

            def power(weights):
                return abs(
                    np.sum(channel.beamformed_path_gains(weights))
                ) ** 2

            multi = power(multibeam_from_channel(channel, 3).weights().vector)
            mrt = power(optimal_mrt_weights(channel))
            assert mrt >= multi - 1e-9
