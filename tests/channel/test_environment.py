"""Tests for the 2-D image-method ray tracer."""

import numpy as np
import pytest

from repro.channel.environment import (
    Environment,
    Reflector,
    random_indoor_environment,
    random_outdoor_environment,
    trace_paths,
)
from repro.utils import SPEED_OF_LIGHT


class TestReflector:
    def test_mirror_point_across_horizontal_wall(self):
        wall = Reflector(start=(0.0, 5.0), end=(10.0, 5.0))
        image = wall.mirror_point((3.0, 2.0))
        assert image == pytest.approx([3.0, 8.0])

    def test_specular_point_symmetric_geometry(self):
        wall = Reflector(start=(-10.0, 5.0), end=(10.0, 5.0))
        spec = wall.specular_point((-2.0, 0.0), (2.0, 0.0))
        assert spec == pytest.approx([0.0, 5.0])

    def test_specular_point_respects_segment_extent(self):
        short_wall = Reflector(start=(5.0, 5.0), end=(6.0, 5.0))
        assert short_wall.specular_point((-2.0, 0.0), (2.0, 0.0)) is None

    def test_reflection_law(self):
        # Angle of incidence equals angle of reflection at the specular point.
        wall = Reflector(start=(-10.0, 4.0), end=(10.0, 4.0))
        tx, rx = np.array([-3.0, 0.0]), np.array([5.0, 2.0])
        spec = wall.specular_point(tx, rx)
        incoming = spec - tx
        outgoing = np.asarray(rx) - spec
        # For a horizontal wall, the vertical components mirror.
        angle_in = np.arctan2(incoming[1], incoming[0])
        angle_out = np.arctan2(-outgoing[1], outgoing[0])
        assert angle_in == pytest.approx(angle_out, abs=1e-9)

    def test_degenerate_reflector_rejected(self):
        with pytest.raises(ValueError):
            Reflector(start=(1.0, 1.0), end=(1.0, 1.0))

    def test_unknown_material_rejected(self):
        with pytest.raises(KeyError):
            Reflector(start=(0, 0), end=(1, 0), material="unobtainium")


class TestTracePaths:
    def make_env(self):
        wall = Reflector(start=(-20.0, 5.0), end=(20.0, 5.0), material="metal")
        return Environment(reflectors=(wall,), name="test")

    def test_direct_and_reflected(self):
        env = self.make_env()
        paths = trace_paths(
            env, (0.0, 0.0), (8.0, 0.0), tx_boresight_rad=0.0,
            rx_boresight_rad=np.pi,
        )
        labels = sorted(p.label for p in paths)
        assert labels == ["los", "reflection:metal"]

    def test_los_delay_matches_distance(self):
        env = self.make_env()
        paths = trace_paths(
            env, (0.0, 0.0), (8.0, 0.0), tx_boresight_rad=0.0,
            rx_boresight_rad=np.pi,
        )
        los = next(p for p in paths if p.label == "los")
        assert los.delay_s == pytest.approx(8.0 / SPEED_OF_LIGHT)

    def test_reflection_longer_and_weaker(self):
        env = self.make_env()
        paths = trace_paths(
            env, (0.0, 0.0), (8.0, 0.0), tx_boresight_rad=0.0,
            rx_boresight_rad=np.pi,
        )
        los = next(p for p in paths if p.label == "los")
        bounce = next(p for p in paths if p.label.startswith("reflection"))
        assert bounce.delay_s > los.delay_s
        assert abs(bounce.gain) < abs(los.gain)

    def test_reflection_path_length(self):
        env = self.make_env()
        paths = trace_paths(
            env, (0.0, 0.0), (8.0, 0.0), tx_boresight_rad=0.0,
            rx_boresight_rad=np.pi,
        )
        bounce = next(p for p in paths if p.label.startswith("reflection"))
        # Image method: length = |tx - image(rx)| = |(0,0)-(8,10)|.
        expected = np.hypot(8.0, 10.0)
        assert bounce.delay_s == pytest.approx(expected / SPEED_OF_LIGHT)

    def test_aod_of_reflection_points_up(self):
        env = self.make_env()
        paths = trace_paths(
            env, (0.0, 0.0), (8.0, 0.0), tx_boresight_rad=0.0,
            rx_boresight_rad=np.pi,
        )
        bounce = next(p for p in paths if p.label.startswith("reflection"))
        assert bounce.aod_rad > 0  # wall is above the link axis

    def test_fov_filtering(self):
        env = self.make_env()
        # Point the tx array away from the receiver: no LOS in FoV, but
        # the reflection (upward) stays inside.
        paths = trace_paths(
            env, (0.0, 0.0), (8.0, 0.0), tx_boresight_rad=np.pi / 2,
            rx_boresight_rad=np.pi, field_of_view_rad=np.pi / 2,
        )
        assert all(not p.label == "los" for p in paths)

    def test_no_paths_raises(self):
        env = Environment(reflectors=())
        with pytest.raises(ValueError, match="field of view"):
            trace_paths(
                env, (0.0, 0.0), (8.0, 0.0), tx_boresight_rad=np.pi,
                field_of_view_rad=np.pi / 4,
            )

    def test_coincident_positions_rejected(self):
        env = self.make_env()
        with pytest.raises(ValueError):
            trace_paths(env, (1.0, 1.0), (1.0, 1.0))


class TestRandomEnvironments:
    def test_indoor_has_four_walls(self):
        env = random_indoor_environment(rng=0)
        assert len(env.reflectors) == 4
        assert env.carrier_frequency_hz == 28e9

    def test_outdoor_has_building(self):
        env = random_outdoor_environment(rng=0)
        assert len(env.reflectors) == 1

    def test_deterministic_with_seed(self):
        a = random_indoor_environment(rng=7)
        b = random_indoor_environment(rng=7)
        assert [r.material for r in a.reflectors] == [
            r.material for r in b.reflectors
        ]

    def test_outdoor_offset_randomized(self):
        offsets = {
            random_outdoor_environment(rng=i).reflectors[0].start[1]
            for i in range(5)
        }
        assert len(offsets) > 1
