"""Tests for the geometric multipath channel."""

import numpy as np
import pytest

from repro.arrays import UniformLinearArray, single_beam_weights, steering_vector
from repro.channel.geometric import GeometricChannel
from repro.channel.paths import Path


@pytest.fixture
def array():
    return UniformLinearArray(num_elements=8)


def make_channel(array, gains=(1.0, 0.5j), angles=(0.0, 0.4), delays=(0.0, 3e-9)):
    paths = tuple(
        Path(aod_rad=a, gain=g, delay_s=d)
        for a, g, d in zip(angles, gains, delays)
    )
    return GeometricChannel(tx_array=array, paths=paths)


class TestStructure:
    def test_requires_paths(self, array):
        with pytest.raises(ValueError):
            GeometricChannel(tx_array=array, paths=())

    def test_accessors(self, array):
        channel = make_channel(array)
        assert channel.num_paths == 2
        assert channel.aods() == pytest.approx([0.0, 0.4])
        assert channel.gains() == pytest.approx([1.0, 0.5j])
        assert channel.delays() == pytest.approx([0.0, 3e-9])

    def test_strongest_paths(self, array):
        channel = make_channel(array, gains=(0.2, 1.0))
        strongest = channel.strongest_paths(1)
        assert strongest[0].gain == pytest.approx(1.0)


class TestNarrowbandVector:
    def test_matches_manual_sum(self, array):
        channel = make_channel(array)
        h = channel.narrowband_vector()
        expected = 1.0 * steering_vector(array, 0.0) + 0.5j * steering_vector(
            array, 0.4
        )
        assert h == pytest.approx(expected)

    def test_shape(self, array):
        assert make_channel(array).narrowband_vector().shape == (8,)


class TestElementResponse:
    def test_zero_frequency_matches_narrowband(self, array):
        channel = make_channel(array)
        response = channel.element_response([0.0])
        assert response[0] == pytest.approx(channel.narrowband_vector())

    def test_delay_phase_rotation(self, array):
        channel = make_channel(array, gains=(1.0,), angles=(0.0,), delays=(5e-9,))
        freq = 100e6
        response = channel.element_response([freq])
        expected_rotation = np.exp(-2j * np.pi * freq * 5e-9)
        assert response[0] == pytest.approx(
            channel.narrowband_vector() * expected_rotation
        )


class TestBeamformedResponse:
    def test_single_path_full_gain(self, array):
        channel = make_channel(array, gains=(1.0,), angles=(0.3,), delays=(0.0,))
        w = single_beam_weights(array, 0.3)
        alphas = channel.beamformed_path_gains(w)
        assert abs(alphas[0]) == pytest.approx(np.sqrt(8))

    def test_frequency_response_linearity(self, array):
        channel = make_channel(array)
        w = single_beam_weights(array, 0.0)
        freqs = np.linspace(-50e6, 50e6, 5)
        response = channel.frequency_response(w, freqs)
        # Response must equal the sum of single-path responses.
        total = np.zeros(5, dtype=complex)
        for path in channel.paths:
            single = GeometricChannel(tx_array=array, paths=(path,))
            total += single.frequency_response(w, freqs)
        assert response == pytest.approx(total)

    def test_quasi_omni_rx_gain_is_unity(self, array):
        channel = make_channel(array)
        assert channel.path_rx_gains(None) == pytest.approx(np.ones(2))

    def test_directional_rx(self, array):
        rx_array = UniformLinearArray(num_elements=4)
        paths = (
            Path(aod_rad=0.0, gain=1.0, aoa_rad=0.2),
        )
        channel = GeometricChannel(
            tx_array=array, paths=paths, rx_array=rx_array
        )
        rx_w = single_beam_weights(rx_array, 0.2)
        gains = channel.path_rx_gains(rx_w)
        assert abs(gains[0]) == pytest.approx(np.sqrt(4))


class TestEvolution:
    def test_with_path_scaling(self, array):
        channel = make_channel(array)
        scaled = channel.with_path_scaling([0.5, 1.0])
        assert scaled.gains()[0] == pytest.approx(0.5)
        assert scaled.gains()[1] == pytest.approx(0.5j)

    def test_scaling_wrong_shape(self, array):
        with pytest.raises(ValueError):
            make_channel(array).with_path_scaling([0.5])

    def test_rotated_scalar_broadcast(self, array):
        channel = make_channel(array).rotated(0.1)
        assert channel.aods() == pytest.approx([0.1, 0.5])

    def test_rotated_per_path(self, array):
        channel = make_channel(array).rotated([0.1, -0.1])
        assert channel.aods() == pytest.approx([0.1, 0.3])

    def test_original_unchanged(self, array):
        channel = make_channel(array)
        channel.with_path_scaling([0.0, 0.0])
        assert channel.gains() == pytest.approx([1.0, 0.5j])


class TestSnr:
    def test_received_snr_positive(self, array):
        channel = make_channel(array)
        w = single_beam_weights(array, 0.0)
        snr = channel.received_snr(w, 1.0, 1e-12)
        assert snr > 0

    def test_mrt_beats_single_beam_narrowband(self, array):
        channel = make_channel(array, gains=(1e-4, 0.7e-4), delays=(0.0, 0.0))
        w_single = single_beam_weights(array, 0.0)
        h = channel.narrowband_vector()
        w_mrt = np.conj(h) / np.linalg.norm(h)
        assert channel.received_snr(w_mrt, 1.0, 1e-12) >= channel.received_snr(
            w_single, 1.0, 1e-12
        )


class TestBandVaryingWeights:
    def test_matches_constant_weights(self, array):
        channel = make_channel(array)
        w = single_beam_weights(array, 0.0)
        freqs = np.linspace(-100e6, 100e6, 7)
        constant = channel.frequency_response(w, freqs)
        stacked = np.tile(w, (7, 1))
        varying = channel.frequency_response_with_array_weights(stacked, freqs)
        assert varying == pytest.approx(constant)

    def test_shape_mismatch_rejected(self, array):
        channel = make_channel(array)
        with pytest.raises(ValueError):
            channel.frequency_response_with_array_weights(
                np.ones((3, 8), dtype=complex), np.zeros(4)
            )
