"""Tests for the synthetic reflector-strength measurement study (Fig. 4)."""

import numpy as np
import pytest

from repro.arrays import UniformLinearArray
from repro.channel.environment import random_indoor_environment
from repro.channel.measurement import (
    attenuation_cdf,
    reflector_attenuation_study,
    spatial_power_heatmap,
)
from repro.channel.mobility import LinearTrajectory


class TestAttenuationStudy:
    def test_returns_requested_samples(self):
        samples = reflector_attenuation_study(30, scenario="indoor", rng=0)
        assert samples.shape == (30,)
        assert np.all(np.isfinite(samples))

    def test_indoor_median_in_measured_range(self):
        # Paper Fig. 4a: indoor median ~7.2 dB; allow generous band.
        samples = reflector_attenuation_study(120, scenario="indoor", rng=1)
        assert 3.0 <= np.median(samples) <= 12.0

    def test_outdoor_median_in_measured_range(self):
        # Paper Fig. 4a: outdoor median ~5 dB.
        samples = reflector_attenuation_study(120, scenario="outdoor", rng=2)
        assert 2.0 <= np.median(samples) <= 10.0

    def test_rejects_bad_scenario(self):
        with pytest.raises(ValueError):
            reflector_attenuation_study(5, scenario="submarine")

    def test_deterministic(self):
        a = reflector_attenuation_study(10, scenario="indoor", rng=5)
        b = reflector_attenuation_study(10, scenario="indoor", rng=5)
        assert a == pytest.approx(b)


class TestAttenuationCdf:
    def test_monotone(self):
        x, p = attenuation_cdf(np.array([3.0, 1.0, 2.0]))
        assert np.all(np.diff(x) >= 0)
        assert np.all(np.diff(p) > 0)
        assert p[-1] == pytest.approx(1.0)


class TestSpatialHeatmap:
    def test_shape_and_content(self):
        array = UniformLinearArray(num_elements=8)
        env = random_indoor_environment(rng=0)
        trajectory = LinearTrajectory(
            start_position=(2.5, 6.0), velocity_mps=(0.7, 0.0)
        )
        times = np.linspace(0.0, 1.0, 5)
        angles = np.deg2rad(np.linspace(-60, 60, 25))
        heatmap = spatial_power_heatmap(
            env, array, (3.5, 0.5), trajectory, times, angles
        )
        assert heatmap.shape == (5, 25)
        # The LOS ridge must be visible: each row has a clear peak.
        assert np.all(np.max(heatmap, axis=1) > np.median(heatmap, axis=1) + 3)
