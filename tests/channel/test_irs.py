"""Tests for the intelligent reflecting surface model (Section 8)."""

import numpy as np
import pytest

from repro.arrays import UniformLinearArray
from repro.channel.environment import Environment, Reflector, trace_paths
from repro.channel.geometric import GeometricChannel
from repro.channel.irs import IntelligentSurface, add_irs_path
from repro.core.multibeam import multibeam_from_channel
from repro.utils import SPEED_OF_LIGHT


TX = (0.0, 0.0)
RX = (10.0, 0.0)
CARRIER = 28e9


class TestIntelligentSurface:
    def test_beamforming_gain(self):
        surface = IntelligentSurface(position=(5.0, 4.0), num_elements=64)
        assert surface.beamforming_gain_db() == pytest.approx(
            20 * np.log10(64)
        )

    def test_gain_capped(self):
        surface = IntelligentSurface(
            position=(5.0, 4.0), num_elements=10_000, max_gain_db=40.0
        )
        assert surface.beamforming_gain_db() == 40.0

    def test_path_geometry(self):
        surface = IntelligentSurface(position=(5.0, 4.0))
        path = surface.reflected_path(TX, RX, CARRIER)
        expected_length = np.hypot(5, 4) + np.hypot(5, 4)
        assert path.delay_s == pytest.approx(
            expected_length / SPEED_OF_LIGHT
        )
        assert path.aod_rad == pytest.approx(np.arctan2(4, 5))
        assert path.label == "irs:configured"

    def test_configured_much_stronger_than_idle(self):
        surface = IntelligentSurface(position=(5.0, 4.0), num_elements=64)
        configured = surface.reflected_path(TX, RX, CARRIER)
        idle = surface.with_configuration(False).reflected_path(
            TX, RX, CARRIER
        )
        gain_gap_db = configured.power_db - idle.power_db
        assert gain_gap_db == pytest.approx(
            surface.beamforming_gain_db() + surface.unconfigured_loss_db
        )

    def test_configured_panel_competitive_with_natural_reflector(self):
        # The Section 8 vision: an engineered reflection within a few dB
        # of a natural specular bounce despite the product path loss.
        wall = Reflector(start=(-10.0, 4.0), end=(20.0, 4.0),
                         material="concrete")
        env = Environment(reflectors=(wall,), carrier_frequency_hz=CARRIER)
        natural = [
            p for p in trace_paths(env, TX, RX)
            if p.label.startswith("reflection")
        ][0]
        # A realistic panel (2048 unit cells, ScatterMIMO-scale) makes
        # the product path loss competitive with the specular bounce.
        surface = IntelligentSurface(
            position=(5.0, 4.0), num_elements=2048, max_gain_db=70.0
        )
        engineered = surface.reflected_path(TX, RX, CARRIER)
        assert engineered.power_db > natural.power_db - 6.0
        # A small panel is NOT competitive: the product path loss wins.
        small = IntelligentSurface(position=(5.0, 4.0), num_elements=64)
        weak = small.reflected_path(TX, RX, CARRIER)
        assert weak.power_db < natural.power_db - 10.0

    def test_validation(self):
        with pytest.raises(ValueError):
            IntelligentSurface(position=(0.0, 1.0), num_elements=0)
        surface = IntelligentSurface(position=(0.0, 0.0))
        with pytest.raises(ValueError):
            surface.reflected_path(TX, (0.0, 0.0), CARRIER)


class TestAddIrsPath:
    def test_appends_to_traced_paths(self):
        env = Environment(reflectors=(), carrier_frequency_hz=CARRIER)
        paths = trace_paths(env, TX, RX)
        surface = IntelligentSurface(position=(5.0, 4.0), num_elements=256)
        extended = add_irs_path(paths, surface, TX, RX, CARRIER)
        assert len(extended) == len(paths) + 1
        assert extended[-1].label == "irs:configured"

    def test_multibeam_exploits_irs(self):
        # An environment with no natural reflectors: the multi-beam falls
        # back to single-beam... unless an IRS provides the second path.
        array = UniformLinearArray(num_elements=8)
        env = Environment(reflectors=(), carrier_frequency_hz=CARRIER)
        paths = trace_paths(env, TX, RX)
        surface = IntelligentSurface(
            position=(5.0, 4.0), num_elements=2048, max_gain_db=70.0
        )
        extended = add_irs_path(paths, surface, TX, RX, CARRIER)
        channel = GeometricChannel(tx_array=array, paths=extended)
        multibeam = multibeam_from_channel(channel, 2)

        def power(weights):
            return abs(np.sum(channel.beamformed_path_gains(weights))) ** 2

        from repro.arrays.steering import single_beam_weights

        single = power(single_beam_weights(array, paths[0].aod_rad))
        multi = power(multibeam.weights().vector)
        assert multi > single
