"""Tests for mobility trajectories."""

import numpy as np
import pytest

from repro.channel.mobility import (
    LinearTrajectory,
    Pose,
    RotationTrajectory,
    StaticPose,
    WaypointTrajectory,
    angular_deviation_seen_by_tx,
)


class TestStaticPose:
    def test_time_invariant(self):
        trajectory = StaticPose(position=(1.0, 2.0), orientation_rad=0.3)
        assert trajectory.pose(0.0) == trajectory.pose(10.0)


class TestLinearTrajectory:
    def test_position_advances(self):
        trajectory = LinearTrajectory(
            start_position=(0.0, 5.0), velocity_mps=(1.5, 0.0)
        )
        pose = trajectory.pose(2.0)
        assert pose.position == pytest.approx((3.0, 5.0))

    def test_orientation_constant(self):
        trajectory = LinearTrajectory(
            start_position=(0.0, 0.0), velocity_mps=(1.0, 0.0),
            orientation_rad=0.7,
        )
        assert trajectory.pose(5.0).orientation_rad == pytest.approx(0.7)


class TestRotationTrajectory:
    def test_vr_headset_speed(self):
        # 24 deg/s, the paper's VR rotation rate.
        trajectory = RotationTrajectory(
            position=(0.0, 7.0), angular_speed_rad_s=np.deg2rad(24.0)
        )
        pose = trajectory.pose(1.0)
        assert pose.orientation_rad == pytest.approx(np.deg2rad(24.0))

    def test_wraps_angle(self):
        trajectory = RotationTrajectory(
            position=(0.0, 0.0), angular_speed_rad_s=np.pi
        )
        assert abs(trajectory.pose(3.0).orientation_rad) <= np.pi


class TestWaypointTrajectory:
    def test_interpolation(self):
        trajectory = WaypointTrajectory(
            times_s=(0.0, 1.0),
            positions=((0.0, 0.0), (2.0, 4.0)),
        )
        pose = trajectory.pose(0.5)
        assert pose.position == pytest.approx((1.0, 2.0))

    def test_clamps_outside_span(self):
        trajectory = WaypointTrajectory(
            times_s=(0.0, 1.0),
            positions=((0.0, 0.0), (2.0, 4.0)),
        )
        assert trajectory.pose(-1.0).position == pytest.approx((0.0, 0.0))
        assert trajectory.pose(9.0).position == pytest.approx((2.0, 4.0))

    def test_orientation_interpolates(self):
        trajectory = WaypointTrajectory(
            times_s=(0.0, 2.0),
            positions=((0.0, 0.0), (0.0, 0.0)),
            orientations_rad=(0.0, 1.0),
        )
        assert trajectory.pose(1.0).orientation_rad == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            WaypointTrajectory(times_s=(0.0,), positions=((0.0, 0.0),))
        with pytest.raises(ValueError):
            WaypointTrajectory(
                times_s=(0.0, 0.0), positions=((0.0, 0.0), (1.0, 1.0))
            )
        with pytest.raises(ValueError):
            WaypointTrajectory(
                times_s=(0.0, 1.0), positions=((0.0, 0.0),)
            )


class TestAngularDeviation:
    def test_perpendicular_motion(self):
        # User at 7 m moving 0.7 m sideways: bearing change ~ atan(0.1).
        tx = (0.0, 0.0)
        then = Pose(position=(0.0, 7.0))
        now = Pose(position=(0.7, 7.0))
        deviation = angular_deviation_seen_by_tx(tx, then, now)
        assert abs(deviation) == pytest.approx(np.arctan2(0.7, 7.0), abs=1e-9)

    def test_radial_motion_no_deviation(self):
        tx = (0.0, 0.0)
        then = Pose(position=(0.0, 5.0))
        now = Pose(position=(0.0, 9.0))
        assert angular_deviation_seen_by_tx(tx, then, now) == pytest.approx(0.0)
