"""Tests for second-order (double-bounce) ray tracing."""

import numpy as np
import pytest

from repro.channel.environment import Environment, Reflector, trace_paths
from repro.utils import SPEED_OF_LIGHT


def corridor():
    """Two parallel metal walls: a classic double-bounce geometry."""
    top = Reflector(start=(-20.0, 3.0), end=(40.0, 3.0), material="metal")
    bottom = Reflector(
        start=(-20.0, -3.0), end=(40.0, -3.0), material="metal"
    )
    return Environment(reflectors=(top, bottom), carrier_frequency_hz=28e9)


class TestSecondOrder:
    def test_default_order_has_no_double_bounce(self):
        paths = trace_paths(corridor(), (0.0, 0.0), (10.0, 0.0))
        assert not any(p.label.startswith("reflection2") for p in paths)

    def test_double_bounce_found_in_corridor(self):
        paths = trace_paths(
            corridor(), (0.0, 0.0), (10.0, 0.0), max_order=2
        )
        doubles = [p for p in paths if p.label.startswith("reflection2")]
        # top->bottom and bottom->top both exist by symmetry.
        assert len(doubles) == 2
        labels = sorted(p.label for p in doubles)
        assert labels == ["reflection2:metal+metal"] * 2

    def test_double_bounce_longer_than_single(self):
        paths = trace_paths(
            corridor(), (0.0, 0.0), (10.0, 0.0), max_order=2
        )
        singles = [p for p in paths if p.label.startswith("reflection:")]
        doubles = [p for p in paths if p.label.startswith("reflection2")]
        assert min(d.delay_s for d in doubles) > max(
            s.delay_s for s in singles
        )

    def test_double_bounce_geometry_exact(self):
        # tx at (0, 0), rx at (10, 0), walls at y = +/-3.  The
        # top-then-bottom image path has length |tx - image2| where
        # image2 = mirror_top(mirror_bottom(rx)) = (10, 12).
        paths = trace_paths(
            corridor(), (0.0, 0.0), (10.0, 0.0), max_order=2
        )
        doubles = [p for p in paths if p.label.startswith("reflection2")]
        expected = np.hypot(10.0, 12.0) / SPEED_OF_LIGHT
        for path in doubles:
            assert path.delay_s == pytest.approx(expected)

    def test_double_bounce_weaker_than_single(self):
        # Two bounces pay two material losses plus the longer path.
        paths = trace_paths(
            corridor(), (0.0, 0.0), (10.0, 0.0), max_order=2
        )
        singles = [p for p in paths if p.label.startswith("reflection:")]
        doubles = [p for p in paths if p.label.startswith("reflection2")]
        assert max(d.power for d in doubles) < min(s.power for s in singles)

    def test_single_wall_has_no_double_bounce(self):
        wall = Reflector(start=(-20.0, 3.0), end=(40.0, 3.0),
                         material="metal")
        env = Environment(reflectors=(wall,), carrier_frequency_hz=28e9)
        paths = trace_paths(env, (0.0, 0.0), (10.0, 0.0), max_order=2)
        assert not any(p.label.startswith("reflection2") for p in paths)

    def test_sparse_channel_shape_preserved(self):
        # Even with second order enabled, the channel stays sparse and
        # first-order-dominated — the paper's structural assumption.
        paths = trace_paths(
            corridor(), (0.0, 0.0), (10.0, 0.0), max_order=2
        )
        strongest = max(paths, key=lambda p: p.power)
        assert strongest.label == "los"
