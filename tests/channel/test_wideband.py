"""Tests for wideband CIR helpers."""

import numpy as np
import pytest

from repro.arrays import UniformLinearArray, single_beam_weights
from repro.channel.geometric import GeometricChannel
from repro.channel.paths import Path
from repro.channel.wideband import (
    cir_from_frequency_response,
    ofdm_frequency_grid,
    per_beam_gains,
    sampled_cir,
    sinc_dictionary,
)


class TestFrequencyGrid:
    def test_centered(self):
        grid = ofdm_frequency_grid(400e6, 128)
        assert grid[64] == pytest.approx(0.0)
        assert grid[0] == pytest.approx(-200e6)

    def test_spacing(self):
        grid = ofdm_frequency_grid(400e6, 128)
        assert np.diff(grid) == pytest.approx(np.full(127, 400e6 / 128))

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            ofdm_frequency_grid(-1.0, 8)
        with pytest.raises(ValueError):
            ofdm_frequency_grid(1e6, 0)


class TestSampledCir:
    def test_single_path_on_grid(self):
        bandwidth = 400e6
        delay = 5 / bandwidth  # exactly on tap 5
        cir = sampled_cir([1.0], [delay], bandwidth, 32)
        assert abs(cir[5]) == pytest.approx(1.0)
        # All other taps are sinc zeros.
        others = np.delete(np.abs(cir), 5)
        assert np.max(others) == pytest.approx(0.0, abs=1e-9)

    def test_off_grid_path_spreads(self):
        bandwidth = 400e6
        delay = 5.5 / bandwidth
        cir = sampled_cir([1.0], [delay], bandwidth, 32)
        assert abs(cir[5]) == pytest.approx(2 / np.pi, abs=0.01)
        assert abs(cir[6]) == pytest.approx(2 / np.pi, abs=0.01)

    def test_superposition(self):
        bandwidth = 400e6
        a = sampled_cir([1.0], [2e-9], bandwidth, 16)
        b = sampled_cir([0.5j], [7e-9], bandwidth, 16)
        both = sampled_cir([1.0, 0.5j], [2e-9, 7e-9], bandwidth, 16)
        assert both == pytest.approx(a + b)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            sampled_cir([1.0, 2.0], [0.0], 400e6, 16)


class TestSincDictionary:
    def test_columns_are_unit_peak(self):
        bandwidth = 400e6
        delays = [0.0, 2 / bandwidth]
        s = sinc_dictionary(delays, bandwidth, 16)
        assert s.shape == (16, 2)
        assert s[0, 0] == pytest.approx(1.0)
        assert s[2, 1] == pytest.approx(1.0)


class TestCirFromFrequencyResponse:
    def test_roundtrip_with_sampled_cir(self):
        bandwidth = 400e6
        n = 64
        freqs = ofdm_frequency_grid(bandwidth, n)
        delay = 8 / bandwidth
        response = np.exp(-2j * np.pi * freqs * delay)
        cir = cir_from_frequency_response(response)
        assert int(np.argmax(np.abs(cir))) == 8
        assert abs(cir[8]) == pytest.approx(1.0, rel=1e-6)

    def test_oversampling_refines_peak(self):
        bandwidth = 400e6
        n = 64
        freqs = ofdm_frequency_grid(bandwidth, n)
        delay = 8.5 / bandwidth
        response = np.exp(-2j * np.pi * freqs * delay)
        cir4 = cir_from_frequency_response(response, oversample=4)
        peak = int(np.argmax(np.abs(cir4)))
        assert peak == 34  # 8.5 taps * 4
        assert abs(cir4[peak]) == pytest.approx(1.0, rel=0.02)

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            cir_from_frequency_response(np.ones((2, 2)))
        with pytest.raises(ValueError):
            cir_from_frequency_response(np.ones(8), oversample=0)


class TestPerBeamGains:
    def test_matches_path_gains(self):
        array = UniformLinearArray(num_elements=8)
        paths = (
            Path(aod_rad=0.0, gain=1e-4),
            Path(aod_rad=0.5, gain=0.5e-4, delay_s=3e-9),
        )
        channel = GeometricChannel(tx_array=array, paths=paths)
        w = single_beam_weights(array, 0.0)
        gains = per_beam_gains(channel, w, [0.0, 0.5])
        alphas = channel.beamformed_path_gains(w)
        assert gains == pytest.approx(alphas)
