"""Tests for CFO/SFO and noise models."""

import numpy as np
import pytest

from repro.channel.impairments import (
    CfoSfoModel,
    awgn_noise_power_watt,
    complex_awgn,
    thermal_noise_dbm,
)


class TestThermalNoise:
    def test_400mhz_noise_floor(self):
        # -174 + 10log10(400e6) + 7 ~= -81 dBm.
        assert thermal_noise_dbm(400e6, noise_figure_db=7.0) == pytest.approx(
            -81.0, abs=0.1
        )

    def test_wider_band_more_noise(self):
        assert thermal_noise_dbm(400e6) > thermal_noise_dbm(100e6)

    def test_watt_conversion(self):
        dbm = thermal_noise_dbm(100e6)
        assert awgn_noise_power_watt(100e6) == pytest.approx(
            10 ** ((dbm - 30) / 10)
        )

    def test_rejects_bad_bandwidth(self):
        with pytest.raises(ValueError):
            thermal_noise_dbm(0.0)


class TestComplexAwgn:
    def test_power_matches_request(self):
        noise = complex_awgn(200_000, 2.0, rng=0)
        assert np.mean(np.abs(noise) ** 2) == pytest.approx(2.0, rel=0.02)

    def test_circular_symmetry(self):
        noise = complex_awgn(100_000, 1.0, rng=1)
        assert np.mean(noise.real ** 2) == pytest.approx(0.5, rel=0.05)
        assert np.mean(noise.imag ** 2) == pytest.approx(0.5, rel=0.05)

    def test_zero_power(self):
        noise = complex_awgn(10, 0.0, rng=2)
        assert noise == pytest.approx(np.zeros(10))

    def test_rejects_negative_power(self):
        with pytest.raises(ValueError):
            complex_awgn(10, -1.0)


class TestCfoSfoModel:
    def test_magnitude_preserved(self):
        model = CfoSfoModel(rng=0)
        estimate = np.array([1.0 + 2.0j, 0.5 - 0.5j])
        rotated = model.apply(estimate)
        assert np.abs(rotated) == pytest.approx(np.abs(estimate))

    def test_common_mode_across_subcarriers(self):
        model = CfoSfoModel(rng=1)
        estimate = np.ones(16, dtype=complex)
        rotated = model.apply(estimate)
        # All subcarriers rotated by the same phase.
        phases = np.angle(rotated)
        assert np.max(phases) - np.min(phases) == pytest.approx(0.0, abs=1e-12)

    def test_phase_varies_between_probes(self):
        model = CfoSfoModel(rng=2)
        a = model.apply(np.ones(4, dtype=complex))
        b = model.apply(np.ones(4, dtype=complex))
        assert not np.allclose(np.angle(a[0]), np.angle(b[0]))

    def test_unit_rotation(self):
        model = CfoSfoModel(rng=3)
        assert abs(model.next_rotation()) == pytest.approx(1.0)

    def test_rejects_negative_walk(self):
        with pytest.raises(ValueError):
            CfoSfoModel(phase_walk_std_rad=-0.1)
