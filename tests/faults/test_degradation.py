"""Graceful-degradation tests: faults flag and fall back, never crash.

The headline regression: before the fault subsystem, a lost probe zeroed
the measured reference power and ``two_probe_ratio``'s ``p1 > 0``
precondition escaped as a ``ValueError`` through the maintenance loop,
``LinkSimulator.run``, and the executor — one lost probe killed a whole
seed-run.  These tests pin the new contract at every layer: the
estimator still enforces its precondition, but every consumer above it
validates, retries, flags, and falls back instead of dying.
"""

from functools import partial

import numpy as np
import pytest

from repro.arrays import UniformLinearArray
from repro.core.probing import ProbeController, two_probe_ratio
from repro.experiments.common import make_manager
from repro.experiments.fig18_end2end import _mobile_scenario
from repro.faults import FaultInjector, FaultSpec, wire_manager_faults
from repro.phy.ofdm import ChannelSounder, OfdmConfig
from repro.sim.executor import EnsembleSpec, execute_ensemble
from repro.sim.link import LinkSimulator
from repro.sim.scenarios import two_path_channel

ARRAY = UniformLinearArray(num_elements=8)


def make_controller(seed=0, faults=()):
    sounder = ChannelSounder(
        config=OfdmConfig(bandwidth_hz=400e6, num_subcarriers=64),
        rng=seed,
    )
    if faults:
        sounder.fault_injector = FaultInjector(seed=seed, specs=faults)
    return ProbeController(array=ARRAY, sounder=sounder)


@pytest.fixture
def channel():
    return two_path_channel(ARRAY)


class TestEstimatorContractUnchanged:
    """The low-level precondition still holds — validation moved up."""

    def test_two_probe_ratio_still_raises_on_dead_reference(self):
        with pytest.raises(ValueError, match="strictly positive"):
            two_probe_ratio(0.0, 1.0, 1.0, 1.0)

    def test_structural_misuse_still_raises(self, channel):
        controller = make_controller()
        with pytest.raises(ValueError, match="at least one"):
            controller.probe_relative_gains(channel, [])
        with pytest.raises(ValueError, match="reference powers"):
            controller.probe_relative_gains(
                channel, [0.0, 0.4], reference_powers=[np.ones(64)]
            )


class TestProbeOutcomeFlags:
    ANGLES = (0.0, 0.45)

    def test_clean_round_is_fully_valid(self, channel):
        outcome = make_controller().probe_relative_gains(
            channel, self.ANGLES
        )
        assert outcome.valid == (True, True)
        assert not outcome.degraded
        assert outcome.retries == 0

    def test_total_probe_loss_flags_instead_of_raising(self, channel):
        # Every probe lost: pre-PR this was the escaping ValueError.
        controller = make_controller(
            faults=(FaultSpec(kind="probe_loss", rate=1.0),)
        )
        outcome = controller.probe_relative_gains(
            channel, self.ANGLES, max_retries=2
        )
        assert outcome.degraded
        assert outcome.valid[0] is False
        assert outcome.estimate.relative_gains[1] == 0.0
        assert outcome.retries > 0  # the budgeted retries were spent

    def test_retries_recover_from_transient_loss(self, channel):
        # At 50% loss a couple of retries nearly always find a clean
        # probe; the schedule is seed-deterministic so this never flakes.
        controller = make_controller(
            seed=1, faults=(FaultSpec(kind="probe_loss", rate=0.5),)
        )
        outcome = controller.probe_relative_gains(
            channel, self.ANGLES, max_retries=4
        )
        assert outcome.valid[0] is True

    def test_retry_emits_probe_retry_events(self, channel):
        from repro.telemetry import TelemetryRecorder, use_recorder

        controller = make_controller(
            faults=(FaultSpec(kind="probe_loss", rate=1.0),)
        )
        recorder = TelemetryRecorder()
        with use_recorder(recorder):
            controller.probe_relative_gains(channel, self.ANGLES, max_retries=2)
        retries = [e for e in recorder.events if e.kind == "probe_retry"]
        assert retries
        assert {e.fields["stage"] for e in retries} <= {"reference", "pair"}
        assert recorder.counter("probing.degraded_rounds").value >= 1

    def test_estimate_relative_gains_wrapper_never_raises_on_loss(
        self, channel
    ):
        controller = make_controller(
            faults=(FaultSpec(kind="probe_loss", rate=1.0),)
        )
        estimate = controller.estimate_relative_gains(channel, self.ANGLES)
        assert estimate.relative_gains[1] == 0.0


class TestMaintenanceDegradation:
    def run_rounds(self, faults, seed=0, rounds=20):
        scenario = _mobile_scenario(
            seed, speed_mps=1.5, blockage_depth_db=30.0, distance_m=25.0
        )
        manager = make_manager("mmreliable", seed)
        wire_manager_faults(
            manager, FaultInjector(seed=seed, specs=faults)
        )
        manager.establish(scenario.channel_at(0.0), time_s=0.0)
        reports = []
        for i in range(1, rounds + 1):
            t = i * 5e-3
            reports.append(manager.step(scenario.channel_at(t), time_s=t))
        return manager, reports

    def test_survives_total_probe_loss(self):
        # Regression for the crash: ValueError must not escape step().
        manager, reports = self.run_rounds(
            (FaultSpec(kind="probe_loss", rate=1.0),)
        )
        actions = {r.action for r in reports}
        assert "measurement_dropped" in actions
        assert manager.degraded_rounds > 0

    def test_blind_watchdog_retrains_after_streak(self):
        manager, reports = self.run_rounds(
            (FaultSpec(kind="probe_loss", rate=1.0),), rounds=30
        )
        assert any(r.action == "watchdog_retrain" for r in reports)

    def test_feedback_dropout_skips_round(self):
        manager, reports = self.run_rounds(
            (FaultSpec(kind="feedback_dropout", rate=1.0),), rounds=5
        )
        assert all(r.action == "feedback_dropout" for r in reports)

    def test_moderate_loss_keeps_maintaining(self):
        manager, reports = self.run_rounds(
            (FaultSpec(kind="probe_loss", rate=0.3),), rounds=30
        )
        actions = [r.action for r in reports]
        # Some rounds are dropped, but the loop keeps doing real work.
        assert "measurement_dropped" in actions
        assert any(a not in ("measurement_dropped", "watchdog_retrain")
                   for a in actions)


class TestSimulatorDegradedWindows:
    class _BrokenManager:
        """Establishes fine, then every step raises."""

        class _Sounder:
            class config:
                bandwidth_hz = 400e6

        sounder = _Sounder()

        def establish(self, channel, time_s=0.0):
            return None

        def step(self, channel, time_s=0.0):
            raise RuntimeError("control loop is down")

        def link_snr_db(self, channel):
            return 10.0

    def test_step_failure_degrades_instead_of_aborting(self):
        scenario = _mobile_scenario(
            0, speed_mps=1.5, blockage_depth_db=30.0, distance_m=25.0
        )
        simulator = LinkSimulator(
            scenario=scenario,
            manager=self._BrokenManager(),
            duration_s=0.05,
        )
        trace = simulator.run()  # must not raise
        assert trace.degraded_windows
        assert trace.degraded_time_s > 0.0
        assert any(
            action.startswith("degraded:step") for _, action in trace.actions
        )

    def test_healthy_run_has_no_degraded_windows(self):
        scenario = _mobile_scenario(
            0, speed_mps=1.5, blockage_depth_db=30.0, distance_m=25.0
        )
        simulator = LinkSimulator(
            scenario=scenario,
            manager=make_manager("mmreliable", 0),
            duration_s=0.05,
        )
        trace = simulator.run()
        assert trace.degraded_windows == ()
        assert trace.degraded_time_s == 0.0


class TestEnsembleAcceptance:
    """ISSUE acceptance: probe_loss 0.3 completes with zero RunFailures."""

    def test_mmreliable_zero_failures_at_rate_03(self):
        summary = execute_ensemble(
            EnsembleSpec(
                label="mmreliable-chaos",
                scenario_factory=partial(
                    _mobile_scenario, speed_mps=1.5,
                    blockage_depth_db=30.0, distance_m=25.0,
                ),
                manager_factory=partial(make_manager, "mmreliable"),
                seeds=range(4),
                duration_s=0.2,
                workers=2,
                max_failure_fraction=1.0,
                faults=(FaultSpec(kind="probe_loss", rate=0.3),),
            )
        )
        assert summary.failures == ()
        assert len(summary.metrics) == 4
        # The link degrades in-band rather than binarily dying.
        assert summary.mean_reliability() > 0.5
