"""Tests for the declarative fault-spec layer (parse, validate, load)."""

import io
import json

import pytest

from repro.faults import (
    CHAOS_KINDS,
    KNOWN_FAULT_KINDS,
    FaultKind,
    FaultSpec,
    load_fault_specs,
    parse_fault,
)


class TestFaultKind:
    def test_taxonomy_is_complete(self):
        assert set(KNOWN_FAULT_KINDS) == {
            "probe_loss", "probe_corruption", "stuck_elements",
            "stale_csi", "feedback_dropout", "worker_crash", "slow_run",
        }

    def test_chaos_kinds_are_known(self):
        for kind in CHAOS_KINDS:
            assert kind in KNOWN_FAULT_KINDS

    def test_all_matches_constants(self):
        assert FaultKind.PROBE_LOSS in FaultKind.all()
        assert FaultKind.WORKER_CRASH in FaultKind.all()


class TestFaultSpec:
    def test_basic_construction(self):
        spec = FaultSpec(kind=FaultKind.PROBE_LOSS, rate=0.1)
        assert spec.kind == "probe_loss"
        assert spec.rate == 0.1
        assert spec.params == ()

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec(kind="cosmic_ray", rate=0.1)

    def test_rate_bounds(self):
        with pytest.raises(ValueError, match="rate"):
            FaultSpec(kind="probe_loss", rate=-0.1)
        with pytest.raises(ValueError, match="rate"):
            FaultSpec(kind="probe_loss", rate=1.5)
        assert FaultSpec(kind="probe_loss", rate=0.0).rate == 0.0
        assert FaultSpec(kind="probe_loss", rate=1.0).rate == 1.0

    def test_params_normalized_and_hashable(self):
        from_mapping = FaultSpec(
            kind="slow_run", rate=1.0, params={"delay_s": 0.5, "a": 1}
        )
        from_pairs = FaultSpec(
            kind="slow_run", rate=1.0, params=(("a", 1.0), ("delay_s", 0.5))
        )
        assert from_mapping == from_pairs
        assert hash(from_mapping) == hash(from_pairs)
        assert from_mapping.params == (("a", 1.0), ("delay_s", 0.5))

    def test_param_lookup_with_default(self):
        spec = FaultSpec(kind="slow_run", rate=1.0, params={"delay_s": 0.5})
        assert spec.param("delay_s", 0.0) == 0.5
        assert spec.param("missing", 7.0) == 7.0

    def test_to_dict_roundtrips_through_loader(self):
        spec = FaultSpec(
            kind="probe_corruption", rate=0.2, params={"sigma_db": 3.0}
        )
        (loaded,) = load_fault_specs([spec.to_dict()])
        assert loaded == spec

    def test_specs_are_picklable(self):
        import pickle

        spec = FaultSpec(kind="stuck_elements", rate=0.1, params={"value": 0.0})
        assert pickle.loads(pickle.dumps(spec)) == spec


class TestParseFault:
    def test_simple_form(self):
        spec = parse_fault("probe_loss:0.1")
        assert spec == FaultSpec(kind="probe_loss", rate=0.1)

    def test_with_params(self):
        spec = parse_fault("slow_run:1.0:delay_s=0.5")
        assert spec.kind == "slow_run"
        assert spec.param("delay_s", 0.0) == 0.5

    def test_multiple_params(self):
        spec = parse_fault("stuck_elements:0.2:value=0.0,seed_bias=2")
        assert spec.param("value", -1.0) == 0.0
        assert spec.param("seed_bias", -1.0) == 2.0

    @pytest.mark.parametrize(
        "text", ["", "probe_loss", ":0.1", "probe_loss:abc",
                 "bogus:0.1", "probe_loss:2.0", "slow_run:1.0:delay_s"]
    )
    def test_malformed_rejected(self, text):
        with pytest.raises(ValueError):
            parse_fault(text)


class TestLoadFaultSpecs:
    DOCUMENT = [
        {"kind": "probe_loss", "rate": 0.1},
        {"kind": "slow_run", "rate": 1.0, "delay_s": 0.5},
    ]

    def test_from_parsed_list(self):
        specs = load_fault_specs(self.DOCUMENT)
        assert len(specs) == 2
        assert specs[0] == FaultSpec(kind="probe_loss", rate=0.1)
        assert specs[1].param("delay_s", 0.0) == 0.5

    def test_from_stream(self):
        stream = io.StringIO(json.dumps(self.DOCUMENT))
        assert load_fault_specs(stream) == load_fault_specs(self.DOCUMENT)

    def test_from_path(self, tmp_path):
        path = tmp_path / "faults.json"
        path.write_text(json.dumps({"faults": self.DOCUMENT}))
        assert load_fault_specs(str(path)) == load_fault_specs(self.DOCUMENT)

    def test_mapping_without_faults_key_rejected(self):
        with pytest.raises(ValueError, match="faults"):
            load_fault_specs({"chaos": []})

    def test_non_list_rejected(self):
        with pytest.raises(ValueError, match="list"):
            load_fault_specs("not json at all" and {"faults": "nope"})

    def test_entry_without_rate_rejected(self):
        with pytest.raises(ValueError, match="kind and rate"):
            load_fault_specs([{"kind": "probe_loss"}])

    def test_non_mapping_entry_rejected(self):
        with pytest.raises(ValueError, match="mapping"):
            load_fault_specs(["probe_loss:0.1"])
