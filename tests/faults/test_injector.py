"""Tests for the deterministic fault injector."""

import numpy as np
import pytest

from repro.faults import (
    FaultInjector,
    FaultKind,
    FaultSpec,
    InjectedWorkerCrash,
    wire_manager_faults,
)


def make_injector(*specs, seed=7, attempt=0):
    return FaultInjector(seed=seed, specs=specs, attempt=attempt)


def sample_csi(rng_seed=0, n=32):
    rng = np.random.default_rng(rng_seed)
    return rng.normal(size=n) + 1j * rng.normal(size=n)


class TestConstruction:
    def test_duplicate_kind_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            make_injector(
                FaultSpec(kind="probe_loss", rate=0.1),
                FaultSpec(kind="probe_loss", rate=0.2),
            )

    def test_non_spec_rejected(self):
        with pytest.raises(TypeError, match="FaultSpec"):
            FaultInjector(seed=0, specs=("probe_loss:0.1",))

    def test_enabled_reflects_rates(self):
        assert not make_injector().enabled
        assert not make_injector(FaultSpec(kind="probe_loss", rate=0.0)).enabled
        assert make_injector(FaultSpec(kind="probe_loss", rate=0.1)).enabled

    def test_rate_lookup(self):
        injector = make_injector(FaultSpec(kind="stale_csi", rate=0.3))
        assert injector.rate("stale_csi") == 0.3
        assert injector.rate("probe_loss") == 0.0


class TestZeroRateIsInert:
    """rate=0.0 must be bitwise identical to having no injector at all."""

    def test_filter_probe_passthrough(self):
        injector = make_injector(FaultSpec(kind="probe_loss", rate=0.0))
        csi = sample_csi()
        out = injector.filter_probe(csi, time_s=0.0)
        np.testing.assert_array_equal(out, csi)
        assert injector.injected == []

    def test_no_rng_streams_materialize(self):
        injector = make_injector(
            FaultSpec(kind="probe_loss", rate=0.0),
            FaultSpec(kind="stuck_elements", rate=0.0),
        )
        injector.filter_probe(sample_csi())
        injector.apply_element_faults(np.ones(8, dtype=complex))
        injector.feedback_dropped()
        injector.chaos_delay_s()
        assert injector._rngs == {}

    def test_element_faults_return_same_object(self):
        injector = make_injector()
        weights = np.ones(8, dtype=complex)
        assert injector.apply_element_faults(weights) is weights


class TestDeterminism:
    SPECS = (
        FaultSpec(kind="probe_loss", rate=0.3),
        FaultSpec(kind="probe_corruption", rate=0.2),
    )

    def _schedule(self, seed, attempt=0, rounds=50):
        injector = FaultInjector(seed=seed, specs=self.SPECS, attempt=attempt)
        for i in range(rounds):
            injector.filter_probe(sample_csi(i), time_s=i * 1e-3)
        return list(injector.injected)

    def test_same_seed_same_schedule(self):
        assert self._schedule(seed=11) == self._schedule(seed=11)

    def test_different_seed_different_schedule(self):
        assert self._schedule(seed=11) != self._schedule(seed=12)

    def test_attempt_does_not_shift_probe_streams(self):
        # Only chaos kinds are keyed by attempt.
        assert self._schedule(seed=11, attempt=0) == self._schedule(
            seed=11, attempt=3
        )

    def test_kind_streams_are_independent(self):
        # Adding a second kind must not shift the first kind's schedule.
        alone = FaultInjector(
            seed=5, specs=(FaultSpec(kind="probe_loss", rate=0.3),)
        )
        paired = FaultInjector(seed=5, specs=self.SPECS)
        for i in range(50):
            alone.filter_probe(sample_csi(i), time_s=i * 1e-3)
            paired.filter_probe(sample_csi(i), time_s=i * 1e-3)
        losses = lambda log: [t for t, kind in log if kind == "probe_loss"]
        assert losses(alone.injected) == losses(paired.injected)


class TestProbeFaults:
    def test_loss_zeroes_csi(self):
        injector = make_injector(FaultSpec(kind="probe_loss", rate=1.0))
        out = injector.filter_probe(sample_csi(), time_s=0.5)
        np.testing.assert_array_equal(out, np.zeros_like(out))
        assert injector.injected == [(0.5, "probe_loss")]

    def test_stale_serves_cached_snapshot(self):
        injector = make_injector(FaultSpec(kind="stale_csi", rate=1.0))
        first = sample_csi(0)
        second = sample_csi(1)
        # No cache yet: the first snapshot passes through clean.
        out1 = injector.filter_probe(first, time_s=0.0)
        np.testing.assert_array_equal(out1, first)
        # The second sounding gets the stale copy of the first.
        out2 = injector.filter_probe(second, time_s=1e-3)
        np.testing.assert_array_equal(out2, first)
        assert ("stale_csi" in {kind for _, kind in injector.injected})

    def test_corruption_scales_power(self):
        injector = make_injector(
            FaultSpec(kind="probe_corruption", rate=1.0,
                      params={"sigma_db": 6.0})
        )
        csi = sample_csi()
        out = injector.filter_probe(csi, time_s=0.0)
        # Pure per-snapshot scaling: same shape, proportional values.
        assert out.shape == csi.shape
        ratio = np.abs(out) / np.abs(csi)
        np.testing.assert_allclose(ratio, ratio[0])
        assert not np.allclose(out, csi)

    def test_loss_beats_corruption(self):
        injector = make_injector(
            FaultSpec(kind="probe_loss", rate=1.0),
            FaultSpec(kind="probe_corruption", rate=1.0),
        )
        out = injector.filter_probe(sample_csi(), time_s=0.0)
        np.testing.assert_array_equal(out, np.zeros_like(out))


class TestElementFaults:
    def test_all_stuck_at_value(self):
        injector = make_injector(
            FaultSpec(kind="stuck_elements", rate=1.0, params={"value": 0.0})
        )
        weights = np.ones(8, dtype=complex) / np.sqrt(8)
        out = injector.apply_element_faults(weights)
        np.testing.assert_array_equal(out, np.zeros(8))
        # Input untouched (defensive copy).
        assert np.all(weights != 0)

    def test_mask_is_stable_across_calls(self):
        injector = make_injector(FaultSpec(kind="stuck_elements", rate=0.5))
        weights = np.ones(16, dtype=complex)
        first = injector.apply_element_faults(weights)
        second = injector.apply_element_faults(weights)
        np.testing.assert_array_equal(first, second)

    def test_recorded_once(self):
        injector = make_injector(FaultSpec(kind="stuck_elements", rate=1.0))
        for _ in range(3):
            injector.apply_element_faults(np.ones(8, dtype=complex))
        stuck = [kind for _, kind in injector.injected
                 if kind == "stuck_elements"]
        assert stuck == ["stuck_elements"]


class TestControlPlaneFaults:
    def test_feedback_dropout(self):
        always = make_injector(FaultSpec(kind="feedback_dropout", rate=1.0))
        never = make_injector(FaultSpec(kind="feedback_dropout", rate=0.0))
        assert always.feedback_dropped(time_s=0.1)
        assert not never.feedback_dropped(time_s=0.1)
        assert always.injected == [(0.1, "feedback_dropout")]


class TestChaosFaults:
    def test_crash_fires_at_rate_one(self):
        injector = make_injector(FaultSpec(kind="worker_crash", rate=1.0))
        assert injector.chaos_crash()

    def test_slow_run_delay_param(self):
        injector = make_injector(
            FaultSpec(kind="slow_run", rate=1.0, params={"delay_s": 0.05})
        )
        assert injector.chaos_delay_s() == 0.05
        assert make_injector().chaos_delay_s() == 0.0

    def test_draws_cached_per_injector(self):
        injector = make_injector(FaultSpec(kind="worker_crash", rate=0.5))
        assert injector.chaos_crash() == injector.chaos_crash()

    def test_attempt_redraws_chaos(self):
        # At rate 0.5 the crash decision must vary across attempts (this
        # is what makes max_retries able to recover from injected chaos).
        spec = FaultSpec(kind="worker_crash", rate=0.5)
        draws = {
            FaultInjector(seed=3, specs=(spec,), attempt=a).chaos_crash()
            for a in range(16)
        }
        assert draws == {True, False}

    def test_injected_crash_is_runtime_error(self):
        assert issubclass(InjectedWorkerCrash, RuntimeError)


class TestTelemetry:
    def test_fault_events_and_counter(self):
        from repro.telemetry import TelemetryRecorder, use_recorder

        injector = make_injector(FaultSpec(kind="probe_loss", rate=1.0))
        recorder = TelemetryRecorder()
        with use_recorder(recorder):
            injector.filter_probe(sample_csi(), time_s=0.25)
        events = [e for e in recorder.events if e.kind == "fault_injected"]
        assert len(events) == 1
        assert events[0].fields["fault"] == "probe_loss"
        assert events[0].time_s == 0.25

    def test_silent_without_recorder(self):
        injector = make_injector(FaultSpec(kind="probe_loss", rate=1.0))
        injector.filter_probe(sample_csi(), time_s=0.0)
        assert injector.injected  # log kept even when telemetry is off


class TestInstall:
    def test_wires_sounder_and_manager(self):
        from repro.experiments.common import make_manager

        manager = make_manager("mmreliable", seed=0)
        injector = make_injector(FaultSpec(kind="probe_loss", rate=0.5))
        wire_manager_faults(manager, injector)
        assert manager.sounder.fault_injector is injector
        assert manager.fault_injector is injector

    def test_baseline_without_hooks_is_fine(self):
        from repro.experiments.common import make_manager

        manager = make_manager("oracle", seed=0)
        injector = make_injector(FaultSpec(kind="probe_loss", rate=0.5))
        wire_manager_faults(manager, injector)  # must not raise
        assert manager.sounder.fault_injector is injector

    def test_link_simulator_is_a_fault_target(self):
        from repro.experiments.common import make_manager
        from repro.faults import FaultTarget
        from repro.sim.link import LinkSimulator
        from repro.sim.scenarios import indoor_two_path_scenario

        manager = make_manager("mmreliable", seed=0)
        simulator = LinkSimulator(
            scenario=indoor_two_path_scenario(manager.array),
            manager=manager,
        )
        assert isinstance(simulator, FaultTarget)
        injector = make_injector(FaultSpec(kind="probe_loss", rate=0.5))
        simulator.install_fault_injector(injector)
        assert manager.sounder.fault_injector is injector
        assert manager.fault_injector is injector

    def test_legacy_module_function_warns_and_still_wires(self):
        import warnings

        from repro.experiments.common import make_manager
        from repro.faults import install_fault_injector

        manager = make_manager("mmreliable", seed=0)
        injector = make_injector(FaultSpec(kind="probe_loss", rate=0.5))
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            install_fault_injector(manager, injector)
        assert any(
            issubclass(w.category, DeprecationWarning) for w in caught
        )
        assert manager.sounder.fault_injector is injector
