"""Seed-stability contracts for the fault subsystem.

Two guarantees keep chaos experiments scientific:

* ``rate=0.0`` consumes no randomness, so an all-zero campaign is
  bitwise identical to running with no injector at all;
* the fault schedule is a pure function of ``(seed, fault_spec)``, so
  the same campaign reproduces identically whether the ensemble runs
  serial or fanned out over a process pool.
"""

from functools import partial

from repro.experiments.common import make_manager
from repro.experiments.fig18_end2end import _mobile_scenario
from repro.faults import FaultInjector, FaultSpec
from repro.sim.executor import EnsembleSpec, execute_ensemble
from repro.telemetry import TelemetryRecorder, use_recorder


def chaos_spec(faults=(), workers=1, seeds=range(4)):
    return EnsembleSpec(
        label="stability",
        scenario_factory=partial(
            _mobile_scenario, speed_mps=1.5, blockage_depth_db=30.0,
            distance_m=25.0,
        ),
        manager_factory=partial(make_manager, "mmreliable"),
        seeds=seeds,
        duration_s=0.1,
        workers=workers,
        max_failure_fraction=1.0,
        faults=faults,
    )


class TestZeroRateBitwiseIdentity:
    def test_zero_rate_campaign_matches_no_injector(self):
        baseline = execute_ensemble(chaos_spec())
        zeroed = execute_ensemble(
            chaos_spec(
                faults=(
                    FaultSpec(kind="probe_loss", rate=0.0),
                    FaultSpec(kind="stuck_elements", rate=0.0),
                    FaultSpec(kind="worker_crash", rate=0.0),
                )
            )
        )
        # Frozen dataclasses: equality is bitwise field equality.
        assert baseline.metrics == zeroed.metrics


class TestScheduleReproducibility:
    FAULTS = (
        FaultSpec(kind="probe_loss", rate=0.3),
        FaultSpec(kind="feedback_dropout", rate=0.2),
    )

    def _fault_schedule(self, workers):
        recorder = TelemetryRecorder()
        with use_recorder(recorder):
            execute_ensemble(chaos_spec(faults=self.FAULTS, workers=workers))
        return sorted(
            (event.run, event.time_s, event.fields["fault"])
            for event in recorder.events
            if event.kind == "fault_injected"
        )

    def test_identical_across_worker_counts(self):
        serial = self._fault_schedule(workers=1)
        parallel = self._fault_schedule(workers=4)
        assert serial  # chaos actually fired
        assert serial == parallel

    def test_metrics_identical_across_worker_counts(self):
        serial = execute_ensemble(chaos_spec(faults=self.FAULTS, workers=1))
        parallel = execute_ensemble(chaos_spec(faults=self.FAULTS, workers=4))
        assert serial.metrics == parallel.metrics

    def test_injector_schedule_is_pure_function_of_seed_and_spec(self):
        import numpy as np

        spec = (FaultSpec(kind="probe_loss", rate=0.4),)
        logs = []
        for _ in range(2):
            injector = FaultInjector(seed=42, specs=spec)
            rng = np.random.default_rng(0)
            for i in range(30):
                injector.filter_probe(
                    rng.normal(size=16) + 0j, time_s=i * 1e-3
                )
            logs.append(list(injector.injected))
        assert logs[0] == logs[1]
