"""Tests for scenarios, the link simulator, and the ensemble runner."""

import numpy as np
import pytest

from repro.arrays import UniformLinearArray, uniform_codebook
from repro.baselines import OracleBeam
from repro.beamtraining import ExhaustiveTrainer
from repro.channel.blockage import (
    BlockageEvent,
    BlockageSchedule,
    random_blockage_schedule,
)
from repro.channel.mobility import LinearTrajectory
from repro.core.maintenance import MultiBeamManager
from repro.phy.ofdm import ChannelSounder, OfdmConfig
from repro.sim.link import LinkSimulator
from repro.sim.runner import EnsembleSummary, run_ensemble
from repro.sim.scenarios import (
    GeometricScenario,
    SyntheticScenario,
    indoor_mobile_scenario,
    indoor_two_path_scenario,
    three_path_channel,
    two_path_channel,
)


@pytest.fixture
def array():
    return UniformLinearArray(num_elements=8)


class TestChannelBuilders:
    def test_two_path_relative_gain(self, array):
        channel = two_path_channel(array, delta_db=-5.0, sigma_rad=1.0)
        gains = channel.gains()
        assert abs(gains[1] / gains[0]) == pytest.approx(10 ** (-5 / 20))
        assert np.angle(gains[1] / gains[0]) == pytest.approx(1.0)

    def test_two_path_snr_in_paper_regime(self, array):
        channel = two_path_channel(array)
        sounder = ChannelSounder(config=OfdmConfig(bandwidth_hz=400e6), rng=0)
        from repro.arrays.steering import single_beam_weights

        snr = sounder.link_snr_db(channel, single_beam_weights(array, 0.0))
        # Paper reports ~27 dB at 7 m; land within a few dB.
        assert 20.0 < snr < 32.0

    def test_three_path_structure(self, array):
        channel = three_path_channel(array)
        assert channel.num_paths == 3
        assert channel.paths[0].label == "los"

    def test_three_path_validation(self, array):
        with pytest.raises(ValueError):
            three_path_channel(array, angles_rad=(0.0, 0.1))


class TestSyntheticScenario:
    def test_static_channel_time_invariant(self, array):
        scenario = SyntheticScenario(base_channel=two_path_channel(array))
        a = scenario.channel_at(0.0)
        b = scenario.channel_at(0.7)
        assert a.gains() == pytest.approx(b.gains())
        assert a.aods() == pytest.approx(b.aods())

    def test_angular_drift(self, array):
        scenario = SyntheticScenario(
            base_channel=two_path_channel(array),
            angular_rates_rad_s=(0.1, 0.05),
        )
        channel = scenario.channel_at(2.0)
        assert channel.aods()[0] == pytest.approx(0.2)
        assert channel.aods()[1] == pytest.approx(np.deg2rad(30.0) + 0.1)

    def test_blockage_applies(self, array):
        schedule = BlockageSchedule(
            events=(
                BlockageEvent(path_index=0, start_s=0.0, duration_s=1.0,
                              depth_db=20.0, ramp_s=0.0),
            )
        )
        scenario = SyntheticScenario(
            base_channel=two_path_channel(array), blockage=schedule
        )
        unblocked = scenario.channel_at(2.0)
        blocked = scenario.channel_at(0.5)
        ratio = abs(blocked.gains()[0] / unblocked.gains()[0])
        assert ratio == pytest.approx(0.1)

    def test_rate_count_validation(self, array):
        with pytest.raises(ValueError):
            SyntheticScenario(
                base_channel=two_path_channel(array),
                angular_rates_rad_s=(0.1,),
            )

    def test_factory(self, array):
        scenario = indoor_two_path_scenario(array, translation_speed_mps=1.5)
        assert scenario.angular_rates_rad_s[0] == pytest.approx(1.5 / 7.0)


class TestGeometricScenario:
    def test_channel_follows_trajectory(self, array):
        scenario = indoor_mobile_scenario(
            array,
            trajectory=LinearTrajectory(
                start_position=(2.0, 6.0), velocity_mps=(1.0, 0.0),
                orientation_rad=-np.pi / 2,
            ),
            rng=0,
        )
        start = scenario.channel_at(0.0)
        later = scenario.channel_at(1.0)
        # The LOS AoD must move as the user translates.
        assert start.paths[0].aod_rad != pytest.approx(
            later.paths[0].aod_rad, abs=1e-3
        )


class TestLinkSimulator:
    def make_sim(self, array, seed=0, duration=0.1):
        sounder = ChannelSounder(
            config=OfdmConfig(bandwidth_hz=400e6, num_subcarriers=64),
            rng=seed,
        )
        trainer = ExhaustiveTrainer(
            codebook=uniform_codebook(array, 17), sounder=sounder
        )
        manager = MultiBeamManager(
            array=array, sounder=sounder, trainer=trainer, num_beams=2
        )
        scenario = indoor_two_path_scenario(array)
        return LinkSimulator(
            scenario=scenario, manager=manager, duration_s=duration
        )

    def test_trace_shapes(self, array):
        trace = self.make_sim(array).run()
        assert trace.times_s.shape == trace.snr_db.shape
        assert trace.times_s.shape == (100,)
        assert trace.training_rounds == 1

    def test_metrics_from_trace(self, array):
        trace = self.make_sim(array).run()
        metrics = trace.metrics()
        assert 0.0 <= metrics.reliability <= 1.0
        assert metrics.mean_throughput_bps > 0
        assert metrics.probe_airtime_s > 0

    def test_validation(self, array):
        sim = self.make_sim(array)
        with pytest.raises(ValueError):
            LinkSimulator(
                scenario=sim.scenario, manager=sim.manager, duration_s=0.0
            )
        with pytest.raises(ValueError):
            LinkSimulator(
                scenario=sim.scenario, manager=sim.manager,
                sample_period_s=1e-2, maintenance_period_s=1e-3,
            )


class TestEnsembleRunner:
    def test_summary_statistics(self, array):
        def scenario_factory(seed):
            return indoor_two_path_scenario(
                array,
                blockage=random_blockage_schedule(num_paths=2, rng=seed),
            )

        def manager_factory(seed):
            sounder = ChannelSounder(
                config=OfdmConfig(bandwidth_hz=400e6, num_subcarriers=64),
                rng=seed,
            )
            return OracleBeam(array=array, sounder=sounder)

        summary = run_ensemble(
            label="oracle",
            scenario_factory=scenario_factory,
            manager_factory=manager_factory,
            seeds=[0, 1, 2],
            duration_s=0.1,
        )
        assert summary.label == "oracle"
        assert len(summary.metrics) == 3
        assert 0.0 <= summary.median_reliability() <= 1.0
        assert summary.mean_throughput_bps() > 0
        assert "oracle" in summary.describe()

    def test_empty_seeds_rejected(self, array):
        with pytest.raises(ValueError):
            run_ensemble(
                label="x",
                scenario_factory=lambda s: None,
                manager_factory=lambda s: None,
                seeds=[],
            )

    def test_empty_metrics_rejected(self):
        with pytest.raises(ValueError):
            EnsembleSummary(label="x", metrics=())
