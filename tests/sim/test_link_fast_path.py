"""Differential tests: the simulator's batched fast path vs the naive path.

The contract (DESIGN.md, "Performance architecture"): with ``fast=True``
the simulator must reproduce the per-sample reference run exactly up to
the documented BLAS-contraction tolerance — same maintenance instants,
same actions, same telemetry event stream, same SNR trace to 1e-9.
"""

import numpy as np
import pytest

from repro.channel.blockage import random_blockage_schedule
from repro.experiments.common import TESTBED_ULA, make_manager
from repro.sim.link import LinkSimulator
from repro.sim.scenarios import indoor_two_path_scenario
from repro.telemetry import TelemetryRecorder, use_recorder

SYSTEMS = ("mmreliable", "reactive", "beamspy", "widebeam", "oracle")


def make_scenario(seed: int):
    schedule = random_blockage_schedule(
        num_paths=2,
        num_events=2,
        depth_db=30.0,
        rng=9000 + seed,
        block_strongest_only=True,
    )
    return indoor_two_path_scenario(
        TESTBED_ULA,
        translation_speed_mps=1.5,
        blockage=schedule,
        delta_db=-4.0,
        distance_m=25.0,
    )


def run_once(system: str, seed: int, fast: bool, duration_s: float = 0.2):
    simulator = LinkSimulator(
        scenario=make_scenario(seed),
        manager=make_manager(system, seed=seed),
        duration_s=duration_s,
        fast=fast,
    )
    return simulator.run()


class TestFastMatchesNaive:
    @pytest.mark.parametrize("system", SYSTEMS)
    def test_trace_equivalence(self, system):
        fast = run_once(system, seed=3, fast=True)
        naive = run_once(system, seed=3, fast=False)
        np.testing.assert_array_equal(fast.times_s, naive.times_s)
        # -inf (outage / degraded) samples must agree exactly.
        np.testing.assert_array_equal(
            np.isneginf(fast.snr_db), np.isneginf(naive.snr_db)
        )
        finite = np.isfinite(naive.snr_db)
        np.testing.assert_allclose(
            fast.snr_db[finite], naive.snr_db[finite], rtol=1e-9
        )
        assert fast.actions == naive.actions
        assert fast.training_windows == naive.training_windows
        assert fast.training_rounds == naive.training_rounds
        assert fast.probe_airtime_s == naive.probe_airtime_s
        assert fast.degraded_windows == naive.degraded_windows

    @pytest.mark.parametrize("seed", [0, 1, 7])
    def test_seed_sweep_mmreliable(self, seed):
        fast = run_once("mmreliable", seed=seed, fast=True)
        naive = run_once("mmreliable", seed=seed, fast=False)
        np.testing.assert_allclose(
            np.nan_to_num(fast.snr_db, neginf=-1e9),
            np.nan_to_num(naive.snr_db, neginf=-1e9),
            rtol=1e-9,
            atol=1e-9,
        )
        assert fast.actions == naive.actions

    def test_telemetry_event_stream_identical(self):
        def traced(fast: bool):
            with use_recorder(TelemetryRecorder()) as recorder:
                run_once("mmreliable", seed=5, fast=fast)
                return list(recorder.events)

        fast_events = traced(True)
        naive_events = traced(False)
        assert len(fast_events) == len(naive_events)
        for ours, theirs in zip(fast_events, naive_events):
            assert ours.kind == theirs.kind
            assert ours.time_s == theirs.time_s
            for key, value in theirs.fields.items():
                if isinstance(value, float):
                    # dB/gain fields pass through the batched contractions,
                    # which match the naive path to the last ulp only.
                    assert ours.fields[key] == pytest.approx(
                        value, rel=1e-9, abs=1e-9
                    )
                else:
                    assert ours.fields[key] == value

    def test_fast_flag_defaults_on_and_counts_samples(self):
        simulator = LinkSimulator(
            scenario=make_scenario(0),
            manager=make_manager("mmreliable", seed=0),
            duration_s=0.1,
        )
        assert simulator.fast is True
        with use_recorder(TelemetryRecorder()) as recorder:
            trace = simulator.run()
            counters = recorder.metrics.snapshot()["counters"]
            gauges = recorder.metrics.snapshot()["gauges"]
        assert counters["sim.fast_samples"] == len(trace.times_s)
        assert counters["sim.samples"] == len(trace.times_s)
        assert gauges["sim.last_batch_samples"] >= 1

    def test_scenario_without_channel_batch_still_fast(self):
        scenario = make_scenario(2)

        class ShimScenario:
            """Only the plain channel_at protocol (compatibility shim)."""

            def channel_at(self, time_s):
                return scenario.channel_at(time_s)

        fast = LinkSimulator(
            scenario=ShimScenario(),
            manager=make_manager("oracle", seed=2),
            duration_s=0.1,
            fast=True,
        ).run()
        naive = LinkSimulator(
            scenario=scenario,
            manager=make_manager("oracle", seed=2),
            duration_s=0.1,
            fast=False,
        ).run()
        np.testing.assert_allclose(fast.snr_db, naive.snr_db, rtol=1e-9)


class TestMaintenanceClock:
    def test_boundaries_match_naive_rule(self):
        simulator = LinkSimulator(
            scenario=make_scenario(0),
            manager=make_manager("oracle", seed=0),
            duration_s=1.0,
            sample_period_s=1e-3,
            maintenance_period_s=5e-3,
        )
        times = np.arange(0.0, 1.0, 1e-3)
        boundaries = simulator._maintenance_boundaries(times)

        expected = []
        tick = 1
        for i, t in enumerate(times):
            if t >= tick * 5e-3:
                expected.append(i)
                tick += 1
        assert boundaries == expected

    def test_no_float_accumulation_drift(self):
        # With the legacy next += period accumulation, 10k periods of
        # 1e-3 drift off the sample grid; the integer-tick rule cannot.
        simulator = LinkSimulator(
            scenario=make_scenario(0),
            manager=make_manager("oracle", seed=0),
            duration_s=10.0,
            sample_period_s=1e-3,
            maintenance_period_s=1e-3,
        )
        times = np.arange(0.0, 10.0, 1e-3)
        boundaries = simulator._maintenance_boundaries(times)
        # Every sample after t=0 is a maintenance opportunity.
        assert boundaries == list(range(1, times.shape[0]))

    def test_commensurate_periods_fire_once_per_period(self):
        simulator = LinkSimulator(
            scenario=make_scenario(0),
            manager=make_manager("oracle", seed=0),
            duration_s=0.5,
            sample_period_s=1e-3,
            maintenance_period_s=7e-3,
        )
        times = np.arange(0.0, 0.5, 1e-3)
        boundaries = simulator._maintenance_boundaries(times)
        assert len(boundaries) == len(set(boundaries))
        deltas = np.diff(times[boundaries])
        assert np.all(deltas >= 6e-3)


class TestBatchedManagerSnr:
    @pytest.mark.parametrize("system", SYSTEMS)
    def test_link_snr_db_batch_matches_loop(self, system):
        scenario = make_scenario(1)
        manager = make_manager(system, seed=1)
        manager.establish(scenario.channel_at(0.0), time_s=0.0)
        times = np.arange(0.0, 0.05, 1e-3)
        channels = [scenario.channel_at(float(t)) for t in times]
        batched = manager.link_snr_db_batch(channels)
        looped = np.array([manager.link_snr_db(c) for c in channels])
        np.testing.assert_allclose(batched, looped, rtol=1e-9)

    def test_link_snr_db_batch_accepts_channel_batch(self):
        scenario = make_scenario(1)
        manager = make_manager("mmreliable", seed=1)
        manager.establish(scenario.channel_at(0.0), time_s=0.0)
        times = np.arange(0.0, 0.05, 1e-3)
        batch = scenario.channel_batch(times)
        batched = manager.link_snr_db_batch(batch)
        looped = np.array(
            [
                manager.link_snr_db(scenario.channel_at(float(t)))
                for t in times
            ]
        )
        np.testing.assert_allclose(batched, looped, rtol=1e-9)


class TestEnsembleWorkers:
    def test_worker_counts_agree(self):
        from repro.experiments.fig18_end2end import run_mobile_ensembles

        serial = run_mobile_ensembles(
            seeds=range(2), duration_s=0.1, workers=1
        )
        parallel = run_mobile_ensembles(
            seeds=range(2), duration_s=0.1, workers=2
        )
        for system in serial:
            ours = serial[system]
            theirs = parallel[system]
            assert ours.mean_spectral_efficiency() == pytest.approx(
                theirs.mean_spectral_efficiency(), rel=1e-12
            )
