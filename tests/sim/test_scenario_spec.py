"""ScenarioSpec round-trip, registry, and file loading."""

import dataclasses
import json

import pytest

from repro.sim.spec import (
    ScenarioSpec,
    available_scenarios,
    get_scenario_spec,
    load_scenario_spec,
    register_scenario_spec,
)


class TestRoundTrip:
    def test_to_dict_from_dict_identity(self):
        spec = ScenarioSpec(
            name="rt", cells=3, users=12, manager_kind="reactive",
            duration_s=0.25, probe_slot_budget=7,
        )
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    def test_round_trip_through_json_text(self):
        spec = get_scenario_spec("quad-cell")
        payload = json.loads(json.dumps(spec.to_dict()))
        assert ScenarioSpec.from_dict(payload) == spec

    def test_every_field_survives(self):
        spec = ScenarioSpec(name="fields")
        rebuilt = ScenarioSpec.from_dict(spec.to_dict())
        for field in dataclasses.fields(ScenarioSpec):
            assert getattr(rebuilt, field.name) == getattr(
                spec, field.name
            )

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario spec keys"):
            ScenarioSpec.from_dict({"name": "x", "warp_factor": 9})

    def test_name_required(self):
        with pytest.raises(ValueError, match="name"):
            ScenarioSpec.from_dict({"cells": 2})

    def test_validation(self):
        with pytest.raises(ValueError):
            ScenarioSpec(name="bad", cells=0)
        with pytest.raises(ValueError):
            ScenarioSpec(name="bad", users=0)
        with pytest.raises(ValueError):
            ScenarioSpec(name="bad", duration_s=0.0)
        with pytest.raises(ValueError):
            ScenarioSpec(
                name="bad", user_range_min_m=5.0, user_range_max_m=4.0
            )


class TestRegistry:
    def test_builtins_registered(self):
        names = available_scenarios()
        for name in ("single-cell", "dual-cell", "quad-cell",
                     "network-smoke"):
            assert name in names

    def test_lookup_error_lists_known(self):
        with pytest.raises(KeyError, match="known scenarios"):
            get_scenario_spec("no-such-scenario")

    def test_reregistering_equal_spec_is_idempotent(self):
        spec = get_scenario_spec("dual-cell")
        assert register_scenario_spec(spec) == spec

    def test_conflicting_registration_rejected(self):
        spec = get_scenario_spec("dual-cell")
        changed = spec.with_options(users=spec.users + 1)
        with pytest.raises(ValueError, match="already registered"):
            register_scenario_spec(changed)
        # Explicit overwrite wins; restore the original after.
        register_scenario_spec(changed, overwrite=True)
        try:
            assert get_scenario_spec("dual-cell") == changed
        finally:
            register_scenario_spec(spec, overwrite=True)


class TestLoad:
    def test_load_by_name(self):
        assert load_scenario_spec("quad-cell").cells == 4

    def test_load_from_json_file(self, tmp_path):
        path = tmp_path / "campaign.json"
        spec = ScenarioSpec(name="campaign", cells=2, users=6)
        path.write_text(json.dumps(spec.to_dict()))
        assert load_scenario_spec(str(path)) == spec

    def test_load_rejects_non_object_json(self, tmp_path):
        path = tmp_path / "list.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(ValueError, match="JSON object"):
            load_scenario_spec(str(path))


class TestToNetworkScenario:
    def test_builds_matching_network_scenario(self):
        spec = ScenarioSpec(
            name="net", cells=3, users=9, manager_kind="reactive",
            cell_spacing_m=20.0, probe_slot_budget=5,
        )
        scenario = spec.to_network_scenario()
        assert scenario.num_cells == 3
        assert scenario.num_users == 9
        assert scenario.manager_kind == "reactive"
        assert scenario.probe_slot_budget == 5
        assert scenario.cells[1].position_m == (20.0, 0.0)
        assert scenario.name == "net"

    def test_runs_end_to_end(self):
        spec = ScenarioSpec(
            name="tiny", cells=1, users=1, duration_s=0.02
        )
        from repro.network import NetworkSimulator

        metrics = NetworkSimulator(
            scenario=spec.to_network_scenario(), seed=0
        ).run().metrics()
        assert metrics.num_users == 1
