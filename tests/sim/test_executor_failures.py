"""Failure-path tests for the hardened ensemble executor.

Covers the robustness contract: per-run timeouts (both backends), retry
accounting and exhaustion, the BrokenProcessPool serial fallback, no
orphaned workers after KeyboardInterrupt, and the utilization fix
(stats report the workers actually used, not the requested width).
"""

import multiprocessing
import os
import time
from functools import partial

import pytest

from repro.arrays import UniformLinearArray
from repro.baselines import OracleBeam
from repro.channel.blockage import random_blockage_schedule
from repro.faults import FaultSpec
from repro.phy.ofdm import ChannelSounder, OfdmConfig
from repro.sim.executor import (
    EnsembleError,
    EnsembleSpec,
    execute_ensemble,
)
from repro.sim.scenarios import indoor_two_path_scenario

ARRAY = UniformLinearArray(num_elements=8)


# Module-level factories: picklable by reference for the process pool.

def make_scenario(seed):
    return indoor_two_path_scenario(
        ARRAY,
        blockage=random_blockage_schedule(num_paths=2, rng=seed),
    )


def make_oracle(seed):
    sounder = ChannelSounder(
        config=OfdmConfig(bandwidth_hz=400e6, num_subcarriers=64),
        rng=seed,
    )
    return OracleBeam(array=ARRAY, sounder=sounder)


def slow_scenario(seed, delay_s=1.0, slow_seeds=(1,)):
    if seed in slow_seeds:
        time.sleep(delay_s)
    return make_scenario(seed)


def flaky_scenario(seed, marker_dir=None):
    """Fails the first time each seed runs, succeeds on retry."""
    marker = os.path.join(marker_dir, f"seen-{seed}")
    if not os.path.exists(marker):
        with open(marker, "w"):
            pass
        raise RuntimeError(f"transient failure for seed {seed}")
    return make_scenario(seed)


def pool_killer_scenario(seed):
    """Kills any pool worker hard; runs normally in the parent.

    ``os._exit`` skips all cleanup, so the pool sees a dead worker and
    raises BrokenProcessPool; the in-process serial fallback (which runs
    in the parent, where ``parent_process()`` is None) then succeeds.
    """
    if multiprocessing.parent_process() is not None:
        os._exit(1)
    return make_scenario(seed)


def interrupting_scenario(seed):
    if seed == 0:
        raise KeyboardInterrupt()
    return make_scenario(seed)


def slow_failing_scenario(seed, delay_s=0.5):
    """Burns budget, then fails: exercises the serial backend's
    failure-over-budget -> timeout conversion."""
    time.sleep(delay_s)
    raise RuntimeError(f"failed after burning the budget (seed {seed})")


def pool_killer_flaky_scenario(seed, marker_dir=None):
    """Kills pool workers hard; fails once, then succeeds in the parent.

    Round 0 breaks the pool and the serial fallback fails transiently,
    so the *retry* round must also run on the serial path (the pool is
    gone for the rest of the ensemble) and keep the fallback accounting.
    """
    if multiprocessing.parent_process() is not None:
        os._exit(1)
    marker = os.path.join(marker_dir, f"seen-{seed}")
    if not os.path.exists(marker):
        with open(marker, "w"):
            pass
        raise RuntimeError(f"transient failure for seed {seed}")
    return make_scenario(seed)


def fast_spec(**overrides):
    defaults = dict(
        label="oracle",
        scenario_factory=make_scenario,
        manager_factory=make_oracle,
        seeds=range(4),
        duration_s=0.02,
    )
    defaults.update(overrides)
    return EnsembleSpec(**defaults)


def drain_workers(deadline_s=5.0):
    """Wait for every child process to exit; returns the stragglers."""
    deadline = time.monotonic() + deadline_s
    while time.monotonic() < deadline:
        children = multiprocessing.active_children()
        if not children:
            return []
        time.sleep(0.05)
    return multiprocessing.active_children()


class TestSpecValidation:
    def test_timeout_must_be_positive(self):
        with pytest.raises(ValueError, match="timeout_s"):
            fast_spec(timeout_s=0.0)

    def test_max_retries_must_be_non_negative(self):
        with pytest.raises(ValueError, match="max_retries"):
            fast_spec(max_retries=-1)

    def test_faults_must_be_specs(self):
        with pytest.raises(TypeError, match="FaultSpec"):
            fast_spec(faults=("probe_loss:0.1",))


class TestTimeouts:
    def test_process_backend_times_out_slow_run(self):
        spec = fast_spec(
            scenario_factory=partial(slow_scenario, delay_s=5.0),
            workers=2,
            timeout_s=0.8,
            max_failure_fraction=1.0,
        )
        summary = execute_ensemble(spec)
        assert len(summary.failures) == 1
        failure = summary.failures[0]
        assert failure.seed == 1
        assert failure.kind == "timeout"
        assert "timeout_s" in failure.error
        assert summary.stats.timed_out_runs == 1

    def test_serial_backend_converts_overbudget_run(self):
        spec = fast_spec(
            scenario_factory=partial(slow_scenario, delay_s=0.6),
            workers=1,
            timeout_s=0.3,
            max_failure_fraction=1.0,
        )
        summary = execute_ensemble(spec)
        assert [f.kind for f in summary.failures] == ["timeout"]
        assert summary.stats.timed_out_runs == 1

    def test_serial_backend_converts_overbudget_failure(self):
        # A run that *fails* after exceeding the budget must surface as
        # a timeout, not a crash: the two backends stay semantically
        # aligned (the process backend would have preempted it first).
        spec = fast_spec(
            scenario_factory=partial(slow_failing_scenario, delay_s=0.5),
            seeds=range(2),
            workers=1,
            timeout_s=0.2,
            max_failure_fraction=1.0,
        )
        with pytest.raises(EnsembleError) as excinfo:
            execute_ensemble(spec)
        failures = excinfo.value.failures
        assert [f.kind for f in failures] == ["timeout", "timeout"]
        assert all("timeout_s" in f.error for f in failures)
        assert all(f.elapsed_s > 0.2 for f in failures)

    def test_serial_underbudget_failure_keeps_its_kind(self):
        spec = fast_spec(
            scenario_factory=partial(slow_failing_scenario, delay_s=0.0),
            seeds=range(2),
            workers=1,
            timeout_s=30.0,
            max_failure_fraction=1.0,
        )
        with pytest.raises(EnsembleError) as excinfo:
            execute_ensemble(spec)
        assert all(f.kind == "error" for f in excinfo.value.failures)
        assert all("burning the budget" in f.error for f in excinfo.value.failures)

    def test_generous_timeout_is_a_no_op(self):
        summary = execute_ensemble(fast_spec(workers=2, timeout_s=120.0))
        assert summary.failures == ()
        assert summary.stats.timed_out_runs == 0


class TestRetries:
    def test_transient_failure_recovered_by_retry(self, tmp_path):
        spec = fast_spec(
            scenario_factory=partial(
                flaky_scenario, marker_dir=str(tmp_path)
            ),
            seeds=range(3),
            workers=1,
            max_retries=1,
        )
        summary = execute_ensemble(spec)
        assert summary.failures == ()
        assert len(summary.metrics) == 3
        assert summary.stats.total_retries == 3
        assert summary.stats.retried_runs == 3
        assert "retries over 3 run(s)" in summary.stats.describe()

    def test_retry_accounting_is_deterministic(self, tmp_path):
        def run(subdir):
            directory = tmp_path / subdir
            directory.mkdir()
            return execute_ensemble(
                fast_spec(
                    scenario_factory=partial(
                        flaky_scenario, marker_dir=str(directory)
                    ),
                    seeds=range(2),
                    workers=1,
                    max_retries=2,
                )
            )

        first, second = run("a"), run("b")
        assert first.stats.total_retries == second.stats.total_retries
        assert first.metrics == second.metrics

    def test_injected_crash_exhausts_retries(self):
        spec = fast_spec(
            seeds=range(2),
            workers=1,
            max_retries=2,
            max_failure_fraction=1.0,
            faults=(FaultSpec(kind="worker_crash", rate=1.0),),
        )
        with pytest.raises(EnsembleError) as excinfo:
            execute_ensemble(spec)
        failures = excinfo.value.failures
        assert all(f.kind == "crash" for f in failures)
        # The surviving failure is the final attempt.
        assert all(f.attempt == 2 for f in failures)

    def test_retry_recovers_injected_chaos(self):
        # At rate 0.5 the per-attempt redraw means enough retries always
        # find a crash-free attempt for these seeds (deterministic).
        spec = fast_spec(
            seeds=range(4),
            workers=1,
            max_retries=6,
            max_failure_fraction=1.0,
            faults=(FaultSpec(kind="worker_crash", rate=0.5),),
        )
        summary = execute_ensemble(spec)
        assert summary.failures == ()
        assert summary.stats.total_retries > 0

    def test_run_retry_event_emitted(self, tmp_path):
        from repro.telemetry import TelemetryRecorder, use_recorder

        recorder = TelemetryRecorder()
        with use_recorder(recorder):
            execute_ensemble(
                fast_spec(
                    scenario_factory=partial(
                        flaky_scenario, marker_dir=str(tmp_path)
                    ),
                    seeds=range(2),
                    workers=1,
                    max_retries=1,
                )
            )
        retries = [e for e in recorder.events if e.kind == "run_retry"]
        assert len(retries) == 2
        assert all(e.fields["attempt"] == 1 for e in retries)
        assert all("transient failure" in e.fields["error"] for e in retries)


class TestBrokenPoolFallback:
    def test_dead_worker_falls_back_to_serial(self):
        spec = fast_spec(
            scenario_factory=pool_killer_scenario,
            seeds=range(4),
            workers=2,
            max_failure_fraction=1.0,
        )
        summary = execute_ensemble(spec)
        # Every seed ends up with metrics: the broken pool's leftovers
        # ran in the parent process, where the factory behaves.
        assert len(summary.metrics) == 4
        assert summary.failures == ()
        assert summary.stats.serial_fallback_runs > 0
        assert "serial-fallback" in summary.stats.describe()

    def test_broken_pool_stays_serial_across_retry_rounds(self, tmp_path):
        spec = fast_spec(
            scenario_factory=partial(
                pool_killer_flaky_scenario, marker_dir=str(tmp_path)
            ),
            seeds=range(3),
            workers=2,
            max_retries=1,
            max_failure_fraction=1.0,
        )
        summary = execute_ensemble(spec)
        # Round 0 broke the pool and its serial fallback failed
        # transiently; the retry round ran serially too (markers exist
        # now, so it succeeded) and kept the fallback accounting.
        assert summary.failures == ()
        assert len(summary.metrics) == 3
        assert summary.stats.retried_runs == 3
        assert summary.stats.serial_fallback_runs > 3

    def test_fallback_engaged_event(self):
        from repro.telemetry import TelemetryRecorder, use_recorder

        recorder = TelemetryRecorder()
        with use_recorder(recorder):
            execute_ensemble(
                fast_spec(
                    scenario_factory=pool_killer_scenario,
                    seeds=range(4),
                    workers=2,
                    max_failure_fraction=1.0,
                )
            )
        fallbacks = [
            e for e in recorder.events
            if e.kind == "fallback_engaged"
            and e.fields.get("fallback") == "serial_executor"
        ]
        assert fallbacks


class TestKeyboardInterrupt:
    def test_serial_backend_propagates(self):
        with pytest.raises(KeyboardInterrupt):
            execute_ensemble(
                fast_spec(scenario_factory=interrupting_scenario, workers=1)
            )

    def test_process_backend_propagates_and_leaves_no_orphans(self):
        with pytest.raises(KeyboardInterrupt):
            execute_ensemble(
                fast_spec(
                    scenario_factory=interrupting_scenario,
                    seeds=range(6),
                    workers=2,
                )
            )
        stragglers = drain_workers(deadline_s=5.0)
        assert stragglers == []


class TestUtilizationFix:
    """Satellite bugfix: stats report the workers actually used."""

    def test_pool_never_wider_than_seed_count(self):
        summary = execute_ensemble(fast_spec(seeds=range(2), workers=8))
        assert summary.stats.workers == 2

    def test_serial_backend_reports_one_worker(self):
        summary = execute_ensemble(fast_spec(seeds=range(3), workers=1))
        assert summary.stats.workers == 1

    def test_utilization_denominator_uses_actual_pool(self):
        # Pre-fix, workers=8 over 2 seeds divided busy time by 8 phantom
        # workers; the denominator must be the pool actually built.
        stats = execute_ensemble(fast_spec(seeds=range(2), workers=8)).stats
        expected = min(1.0, stats.busy_time_s / (2 * stats.wall_time_s))
        assert stats.utilization == pytest.approx(expected)
