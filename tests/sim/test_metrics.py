"""Tests for reliability/throughput metrics (Eq. 1, Fig. 18c)."""

import numpy as np
import pytest

from repro.phy.mcs import OUTAGE_SNR_DB
from repro.sim.metrics import (
    LinkMetrics,
    analytic_multibeam_reliability,
    analytic_single_beam_reliability,
    mean_throughput_bps,
    reliability,
    throughput_reliability_product,
    throughput_series_bps,
)


class TestReliability:
    def test_all_good(self):
        times = np.linspace(0, 1, 100)
        snr = np.full(100, 20.0)
        assert reliability(times, snr) == 1.0

    def test_outage_fraction(self):
        times = np.linspace(0, 1, 100)
        snr = np.full(100, 20.0)
        snr[:25] = 0.0
        assert reliability(times, snr) == pytest.approx(0.75)

    def test_threshold_boundary(self):
        times = np.array([0.0, 1.0])
        snr = np.array([OUTAGE_SNR_DB, OUTAGE_SNR_DB - 0.01])
        assert reliability(times, snr) == pytest.approx(0.5)

    def test_training_windows_count_as_downtime(self):
        times = np.linspace(0, 1, 101)
        snr = np.full(101, 20.0)
        value = reliability(
            times, snr, unavailable_windows=[(0.2, 0.1), (0.5, 0.1)]
        )
        assert value == pytest.approx(0.8, abs=0.03)

    def test_validation(self):
        with pytest.raises(ValueError):
            reliability(np.zeros(3), np.zeros(2))
        with pytest.raises(ValueError):
            reliability(np.array([]), np.array([]))


class TestThroughput:
    def test_series_zero_in_outage(self):
        times = np.array([0.0, 0.5])
        snr = np.array([0.0, 25.0])
        series = throughput_series_bps(times, snr, 400e6)
        assert series[0] == 0.0
        assert series[1] > 0.0

    def test_training_window_zeroes_throughput(self):
        times = np.array([0.0, 0.5])
        snr = np.array([25.0, 25.0])
        series = throughput_series_bps(
            times, snr, 400e6, unavailable_windows=[(0.4, 0.2)]
        )
        assert series[0] > 0.0
        assert series[1] == 0.0

    def test_mean(self):
        times = np.array([0.0, 1.0])
        snr = np.array([25.0, 0.0])
        mean = mean_throughput_bps(times, snr, 400e6)
        full = mean_throughput_bps(times, np.array([25.0, 25.0]), 400e6)
        assert mean == pytest.approx(full / 2)


class TestProduct:
    def test_product(self):
        assert throughput_reliability_product(1e9, 0.5) == pytest.approx(5e8)

    def test_validation(self):
        with pytest.raises(ValueError):
            throughput_reliability_product(1e9, 1.5)


class TestAnalyticReliability:
    def test_single_beam(self):
        assert analytic_single_beam_reliability(0.3) == pytest.approx(0.7)

    def test_multibeam_beats_single(self):
        # Section 3.1: 1 - beta^k > 1 - beta for k >= 2, beta in (0, 1).
        for beta in (0.1, 0.3, 0.6):
            for k in (2, 3, 4):
                assert analytic_multibeam_reliability(
                    beta, k
                ) > analytic_single_beam_reliability(beta)

    def test_k_one_reduces_to_single(self):
        assert analytic_multibeam_reliability(0.4, 1) == pytest.approx(0.6)

    def test_monotone_in_k(self):
        values = [analytic_multibeam_reliability(0.5, k) for k in range(1, 6)]
        assert np.all(np.diff(values) > 0)

    def test_edge_cases(self):
        assert analytic_multibeam_reliability(0.0, 3) == 1.0
        assert analytic_multibeam_reliability(1.0, 3) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            analytic_multibeam_reliability(1.5, 2)
        with pytest.raises(ValueError):
            analytic_multibeam_reliability(0.5, 0)
        with pytest.raises(ValueError):
            analytic_single_beam_reliability(-0.1)


class TestLinkMetrics:
    def test_from_trace(self):
        times = np.linspace(0, 1, 100)
        snr = np.full(100, 20.0)
        snr[:10] = 0.0
        metrics = LinkMetrics.from_trace(times, snr, 400e6, training_rounds=2)
        assert metrics.reliability == pytest.approx(0.9)
        assert metrics.training_rounds == 2
        assert metrics.product == pytest.approx(
            metrics.mean_throughput_bps * 0.9
        )
        assert metrics.mean_spectral_efficiency == pytest.approx(
            metrics.mean_throughput_bps / 400e6
        )

    def test_handles_minus_inf_snr(self):
        times = np.linspace(0, 1, 10)
        snr = np.full(10, -np.inf)
        metrics = LinkMetrics.from_trace(times, snr, 400e6)
        assert metrics.reliability == 0.0
        assert metrics.mean_throughput_bps == 0.0
