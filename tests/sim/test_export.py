"""Tests for CSV trace/metrics export."""

import numpy as np
import pytest

from repro.sim.export import (
    METRICS_COLUMNS,
    TRACE_COLUMNS,
    metrics_to_csv,
    trace_to_csv,
)
from repro.sim.link import SimulationTrace
from repro.sim.metrics import LinkMetrics


def make_trace():
    times = np.linspace(0.0, 0.01, 11)
    snr = np.full(11, 20.0)
    snr[3] = 2.0  # one outage sample
    return SimulationTrace(
        times_s=times,
        snr_db=snr,
        actions=((0.005, "reprobe"),),
        training_windows=((0.0, 0.005),),
        training_rounds=1,
        probe_airtime_s=1e-3,
        bandwidth_hz=400e6,
    )


class TestTraceCsv:
    def test_header_and_rows(self):
        text = trace_to_csv(make_trace())
        lines = text.strip().splitlines()
        assert lines[0] == ",".join(TRACE_COLUMNS)
        assert len(lines) == 12  # header + 11 samples

    def test_outage_flag(self):
        lines = trace_to_csv(make_trace()).strip().splitlines()
        flags = [int(line.split(",")[-1]) for line in lines[1:]]
        assert sum(flags) == 1
        assert flags[3] == 1

    def test_spectral_efficiency_column(self):
        lines = trace_to_csv(make_trace()).strip().splitlines()
        efficiency = float(lines[1].split(",")[2])
        assert efficiency > 0


class TestMetricsCsv:
    def make_metrics(self):
        trace = make_trace()
        return trace.metrics()

    def test_table(self):
        text = metrics_to_csv(
            [("mmreliable", self.make_metrics()), ("reactive", self.make_metrics())]
        )
        lines = text.strip().splitlines()
        assert lines[0] == ",".join(METRICS_COLUMNS)
        assert len(lines) == 3
        assert lines[1].startswith("mmreliable,")

    def test_roundtrippable_values(self):
        metrics = self.make_metrics()
        text = metrics_to_csv([("x", metrics)])
        row = text.strip().splitlines()[1].split(",")
        assert float(row[1]) == pytest.approx(metrics.reliability, abs=1e-6)
        assert int(row[6]) == metrics.training_rounds

    def test_type_error(self):
        with pytest.raises(TypeError):
            metrics_to_csv([("x", object())])
