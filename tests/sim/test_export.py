"""Tests for CSV trace/metrics export."""

import numpy as np
import pytest

from repro.sim.export import (
    METRICS_COLUMNS,
    TRACE_COLUMNS,
    metrics_to_csv,
    trace_to_csv,
)
from repro.sim.link import SimulationTrace
from repro.sim.metrics import LinkMetrics


def make_trace():
    times = np.linspace(0.0, 0.01, 11)
    snr = np.full(11, 20.0)
    snr[3] = 2.0  # one outage sample
    return SimulationTrace(
        times_s=times,
        snr_db=snr,
        actions=((0.005, "reprobe"),),
        training_windows=((0.0, 0.005),),
        training_rounds=1,
        probe_airtime_s=1e-3,
        bandwidth_hz=400e6,
    )


class TestTraceCsv:
    def test_header_and_rows(self):
        text = trace_to_csv(make_trace())
        lines = text.strip().splitlines()
        assert lines[0] == ",".join(TRACE_COLUMNS)
        assert len(lines) == 12  # header + 11 samples

    def test_outage_flag(self):
        lines = trace_to_csv(make_trace()).strip().splitlines()
        flags = [int(line.split(",")[-1]) for line in lines[1:]]
        assert sum(flags) == 1
        assert flags[3] == 1

    def test_spectral_efficiency_column(self):
        lines = trace_to_csv(make_trace()).strip().splitlines()
        efficiency = float(lines[1].split(",")[2])
        assert efficiency > 0


class TestMetricsCsv:
    def make_metrics(self):
        trace = make_trace()
        return trace.metrics()

    def test_table(self):
        text = metrics_to_csv(
            [("mmreliable", self.make_metrics()), ("reactive", self.make_metrics())]
        )
        lines = text.strip().splitlines()
        assert lines[0] == ",".join(METRICS_COLUMNS)
        assert len(lines) == 3
        assert lines[1].startswith("mmreliable,")

    def test_roundtrippable_values(self):
        metrics = self.make_metrics()
        text = metrics_to_csv([("x", metrics)])
        row = text.strip().splitlines()[1].split(",")
        assert float(row[1]) == pytest.approx(metrics.reliability, abs=1e-6)
        assert int(row[6]) == metrics.training_rounds

    def test_type_error(self):
        with pytest.raises(TypeError):
            metrics_to_csv([("x", object())])


class TestJsonExport:
    def make_summary(self):
        from repro.sim.executor import EnsembleSummary, ExecutorStats, RunFailure

        metrics = make_trace().metrics()
        return EnsembleSummary(
            label="oracle",
            metrics=(metrics, metrics),
            failures=(
                RunFailure(seed=7, error="RuntimeError('x')",
                           traceback="...", elapsed_s=0.1),
            ),
            stats=ExecutorStats(
                backend="process", workers=2, total_runs=3, failed_runs=1,
                wall_time_s=0.5, run_times_s=(0.1, 0.2, 0.1),
            ),
        )

    def test_to_jsonable_primitives(self):
        from repro.sim.export import to_jsonable

        assert to_jsonable({"a": np.float64(1.5)}) == {"a": 1.5}
        assert to_jsonable(np.arange(3)) == [0, 1, 2]
        assert to_jsonable((1, 2)) == [1, 2]
        assert to_jsonable(1 + 2j) == {"real": 1.0, "imag": 2.0}

    def test_to_jsonable_non_finite(self):
        from repro.sim.export import to_jsonable

        assert to_jsonable(float("nan")) is None
        assert to_jsonable(float("inf")) == "Infinity"
        assert to_jsonable(float("-inf")) == "-Infinity"
        assert to_jsonable(np.float64("nan")) is None
        assert to_jsonable(complex(float("nan"), float("inf"))) == {
            "real": None, "imag": "Infinity"
        }

    def test_non_finite_round_trips_through_strict_json(self):
        import json

        from repro.sim.export import result_to_json

        payload = {
            "snr": float("nan"),
            "bounds": [float("inf"), float("-inf"), 1.5],
        }
        parsed = json.loads(result_to_json(payload))
        assert parsed == {
            "snr": None, "bounds": ["Infinity", "-Infinity", 1.5]
        }

    def test_summary_expanded(self):
        from repro.sim.export import to_jsonable

        payload = to_jsonable(self.make_summary())
        assert payload["label"] == "oracle"
        assert len(payload["runs"]) == 2
        assert payload["runs"][0]["reliability"] == pytest.approx(
            make_trace().metrics().reliability
        )
        assert payload["failures"][0]["seed"] == 7
        assert payload["stats"]["failed_runs"] == 1
        assert 0 < payload["stats"]["utilization"] <= 1
        assert payload["summary"]["median_reliability"] <= 1.0

    def test_result_json_round_trips(self):
        import json

        from repro.experiments.registry import (
            ExperimentConfig,
            ExperimentResult,
        )
        from repro.sim.export import result_to_json

        result = ExperimentResult(
            identifier="demo",
            title="demo experiment",
            config=ExperimentConfig(seeds=4, workers=2),
            data={"summary": self.make_summary(), "grid": np.eye(2)},
            elapsed_s=1.25,
        )
        parsed = json.loads(result_to_json(result))
        assert parsed["identifier"] == "demo"
        assert parsed["config"] == {
            "seeds": 4, "workers": 2, "telemetry": False,
            "faults": [], "scenario": None, "backend": None,
        }
        assert parsed["data"]["grid"] == [[1.0, 0.0], [0.0, 1.0]]
        assert parsed["data"]["summary"]["stats"]["backend"] == "process"

    def test_write_result_json(self, tmp_path):
        import json

        from repro.sim.export import write_result_json

        target = tmp_path / "result.json"
        with open(target, "w", encoding="utf-8") as stream:
            write_result_json({"x": np.float32(2.0)}, stream)
        assert json.loads(target.read_text()) == {"x": 2.0}
