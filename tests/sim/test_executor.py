"""Tests for the parallel ensemble execution engine.

Covers the acceptance contract: serial-vs-parallel bitwise equality on
fixed seeds, one-poisoned-seed fault tolerance, failure-threshold
escalation, the ``EnsembleSummary`` stats fields, the serial fallback
for non-picklable factories, and the ``run_ensemble`` entry point
(EnsembleSpec form, keyword form, positional-form rejection).
"""

from functools import partial

import pytest

from repro.arrays import UniformLinearArray
from repro.baselines import OracleBeam
from repro.channel.blockage import random_blockage_schedule
from repro.phy.ofdm import ChannelSounder, OfdmConfig
from repro.sim.executor import (
    EnsembleError,
    EnsembleSpec,
    EnsembleSummary,
    ExecutorStats,
    RunFailure,
    execute_ensemble,
    parallel_map,
)
from repro.sim.runner import run_ensemble
from repro.sim.scenarios import indoor_two_path_scenario

ARRAY = UniformLinearArray(num_elements=8)


# Module-level factories: picklable by reference, as the process pool
# requires.

def make_scenario(seed):
    return indoor_two_path_scenario(
        ARRAY,
        blockage=random_blockage_schedule(num_paths=2, rng=seed),
    )


def make_oracle(seed):
    sounder = ChannelSounder(
        config=OfdmConfig(bandwidth_hz=400e6, num_subcarriers=64),
        rng=seed,
    )
    return OracleBeam(array=ARRAY, sounder=sounder)


def poisoned_scenario(seed, bad_seeds=(3,)):
    if seed in bad_seeds:
        raise RuntimeError(f"poisoned seed {seed}")
    return make_scenario(seed)


def fast_spec(**overrides):
    defaults = dict(
        label="oracle",
        scenario_factory=make_scenario,
        manager_factory=make_oracle,
        seeds=range(4),
        duration_s=0.02,
    )
    defaults.update(overrides)
    return EnsembleSpec(**defaults)


class TestSpec:
    def test_seeds_normalized_to_ints(self):
        spec = fast_spec(seeds=[0.0, 1, 2])
        assert spec.seeds == (0, 1, 2)

    def test_empty_seeds_rejected(self):
        with pytest.raises(ValueError, match="seed"):
            fast_spec(seeds=())

    def test_invalid_workers_rejected(self):
        with pytest.raises(ValueError, match="workers"):
            fast_spec(workers=0)

    def test_invalid_failure_fraction_rejected(self):
        with pytest.raises(ValueError, match="failure"):
            fast_spec(max_failure_fraction=1.5)

    def test_with_options(self):
        spec = fast_spec()
        parallel = spec.with_options(workers=4)
        assert parallel.workers == 4
        assert parallel.label == spec.label
        assert spec.workers == 1


class TestSerialParallelEquality:
    def test_16_seeds_bitwise_identical(self):
        # The acceptance criterion: workers=4 over 16 seeds reproduces
        # the serial metrics exactly, per seed.
        spec = fast_spec(seeds=range(16))
        serial = execute_ensemble(spec)
        parallel = execute_ensemble(spec.with_options(workers=4))
        assert len(serial.metrics) == len(parallel.metrics) == 16
        for left, right in zip(serial.metrics, parallel.metrics):
            assert left == right  # frozen dataclasses: bitwise field equality
        assert serial.stats.backend == "serial"
        assert parallel.stats.backend == "process"

    def test_non_picklable_factory_falls_back_to_serial(self):
        spec = fast_spec(
            scenario_factory=lambda seed: make_scenario(seed), workers=4
        )
        with pytest.warns(RuntimeWarning, match="not picklable"):
            summary = execute_ensemble(spec)
        assert summary.stats.backend == "serial"
        assert len(summary.metrics) == 4


class TestFaultTolerance:
    def test_poisoned_seed_recorded_not_fatal(self):
        spec = fast_spec(
            scenario_factory=poisoned_scenario, seeds=range(5)
        )
        summary = execute_ensemble(spec)
        assert len(summary.metrics) == 4
        assert len(summary.failures) == 1
        failure = summary.failures[0]
        assert isinstance(failure, RunFailure)
        assert failure.seed == 3
        assert "poisoned seed 3" in failure.error
        assert "RuntimeError" in failure.traceback
        assert "failed run" in summary.describe()

    def test_poisoned_seed_in_parallel(self):
        spec = fast_spec(
            scenario_factory=poisoned_scenario, seeds=range(5), workers=4
        )
        summary = execute_ensemble(spec)
        assert [f.seed for f in summary.failures] == [3]
        # Surviving runs match the serial run for the same seeds.
        serial = execute_ensemble(spec.with_options(workers=1))
        assert summary.metrics == serial.metrics

    def test_threshold_escalation(self):
        spec = fast_spec(
            scenario_factory=partial(poisoned_scenario, bad_seeds=(1, 3)),
            seeds=range(4),
            max_failure_fraction=0.25,
        )
        with pytest.raises(EnsembleError, match="2/4 runs failed"):
            execute_ensemble(spec)

    def test_threshold_holds_below_budget(self):
        spec = fast_spec(
            scenario_factory=partial(poisoned_scenario, bad_seeds=(1,)),
            seeds=range(4),
            max_failure_fraction=0.25,
        )
        summary = execute_ensemble(spec)
        assert len(summary.failures) == 1

    def test_all_seeds_failing_always_errors(self):
        spec = fast_spec(
            scenario_factory=partial(
                poisoned_scenario, bad_seeds=tuple(range(4))
            ),
            seeds=range(4),
            max_failure_fraction=1.0,
        )
        with pytest.raises(EnsembleError) as excinfo:
            execute_ensemble(spec)
        assert len(excinfo.value.failures) == 4
        assert excinfo.value.total_runs == 4


class TestStats:
    def test_stats_fields(self):
        summary = execute_ensemble(fast_spec(seeds=range(3)))
        stats = summary.stats
        assert isinstance(stats, ExecutorStats)
        assert stats.total_runs == 3
        assert stats.failed_runs == 0
        assert stats.completed_runs == 3
        assert len(stats.run_times_s) == 3
        assert stats.wall_time_s > 0
        assert stats.busy_time_s == pytest.approx(sum(stats.run_times_s))
        assert 0.0 < stats.utilization <= 1.0
        assert stats.runs_per_second > 0
        assert "runs" in stats.describe()

    def test_failed_runs_counted(self):
        summary = execute_ensemble(
            fast_spec(scenario_factory=poisoned_scenario, seeds=range(5))
        )
        assert summary.stats.failed_runs == 1
        assert summary.stats.total_runs == 5
        # Failed runs still contribute their wall time.
        assert len(summary.stats.run_times_s) == 5


class TestRunEnsembleCompat:
    def test_spec_form(self):
        summary = run_ensemble(fast_spec(seeds=range(2)))
        assert isinstance(summary, EnsembleSummary)
        assert len(summary.metrics) == 2

    def test_spec_form_rejects_extra_arguments(self):
        with pytest.raises(TypeError, match="no additional"):
            run_ensemble(fast_spec(), workers=2)

    def test_keyword_form_no_warning(self):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            summary = run_ensemble(
                label="oracle",
                scenario_factory=make_scenario,
                manager_factory=make_oracle,
                seeds=[0, 1],
                duration_s=0.02,
            )
        assert len(summary.metrics) == 2

    def test_positional_form_removed(self):
        with pytest.raises(TypeError, match="no longer supported"):
            run_ensemble(
                "oracle",
                scenario_factory=make_scenario,
                manager_factory=make_oracle,
                seeds=[0, 1], duration_s=0.02,
            )

    def test_unknown_keyword_rejected(self):
        with pytest.raises(TypeError, match="run_ensemble"):
            run_ensemble(
                label="oracle",
                scenario_factory=make_scenario,
                manager_factory=make_oracle,
                seeds=[0],
                bogus_knob=1,
            )

    def test_executor_knobs_through_keywords(self):
        summary = run_ensemble(
            label="oracle",
            scenario_factory=make_scenario,
            manager_factory=make_oracle,
            seeds=range(3),
            duration_s=0.02,
            workers=2,
        )
        assert summary.stats.backend == "process"


class TestEnsembleTelemetry:
    def test_disabled_by_default(self):
        summary = execute_ensemble(fast_spec(seeds=range(2)))
        assert summary.telemetry is None

    def test_serial_collection(self):
        summary = execute_ensemble(
            fast_spec(seeds=range(2), telemetry=True)
        )
        telemetry = summary.telemetry
        assert telemetry is not None
        assert telemetry.num_runs == 2
        assert telemetry.count("run_start") == 2
        assert telemetry.count("run_end") == 2
        # The oracle baseline never probes, but it does adapt its MCS.
        assert telemetry.count("mcs_switch") > 0

    def test_multi_worker_merge_matches_serial(self):
        spec = fast_spec(seeds=range(4), telemetry=True, workers=4)
        parallel = execute_ensemble(spec)
        serial = execute_ensemble(spec.with_options(workers=1))
        assert parallel.stats.backend == "process"
        assert parallel.telemetry is not None
        # Event content is deterministic per seed; only wall-clock
        # histograms (timers) may differ between backends.
        assert parallel.telemetry.num_events == serial.telemetry.num_events
        assert parallel.telemetry.num_runs == serial.telemetry.num_runs == 4
        assert parallel.telemetry.event_counts == serial.telemetry.event_counts
        assert parallel.telemetry.counters == serial.telemetry.counters

    def test_metrics_bitwise_identical_with_and_without_telemetry(self):
        # The overhead contract: instrumentation never perturbs results.
        plain = execute_ensemble(fast_spec(seeds=range(4)))
        traced = execute_ensemble(fast_spec(seeds=range(4), telemetry=True))
        assert plain.metrics == traced.metrics

    def test_events_flow_into_parent_recorder(self):
        from repro.telemetry import TelemetryRecorder, use_recorder

        recorder = TelemetryRecorder()
        with use_recorder(recorder):
            summary = execute_ensemble(fast_spec(seeds=range(2), workers=2))
        assert summary.telemetry is not None
        assert len(recorder.events) > 0
        run_labels = {event.run for event in recorder.events}
        assert any("seed0" in label for label in run_labels)
        assert any("seed1" in label for label in run_labels)


class TestParallelMap:
    def test_serial_and_parallel_agree(self):
        items = list(range(6))
        assert parallel_map(_square, items) == [i * i for i in items]
        assert parallel_map(_square, items, workers=3) == [
            i * i for i in items
        ]

    def test_non_picklable_falls_back(self):
        with pytest.warns(RuntimeWarning, match="not picklable"):
            result = parallel_map(lambda x: x + 1, [1, 2, 3], workers=2)
        assert result == [2, 3, 4]

    def test_exceptions_propagate(self):
        with pytest.raises(ZeroDivisionError):
            parallel_map(_invert, [1, 0], workers=2)


def _square(value):
    return value * value


def _invert(value):
    return 1 / value
