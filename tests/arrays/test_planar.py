"""Tests for full 2-D planar-array beamforming."""

import numpy as np
import pytest

from repro.arrays import UniformPlanarArray
from repro.arrays.planar import (
    elevation_cut_pattern_db,
    planar_beamforming_gain,
    planar_constructive_multibeam,
    planar_single_beam_weights,
    planar_steering_vector,
)

ARRAY = UniformPlanarArray(num_azimuth=8, num_elevation=8)


class TestPlanarSteering:
    def test_broadside_all_ones(self):
        a = planar_steering_vector(ARRAY, 0.0, 0.0)
        assert a == pytest.approx(np.ones(64))

    def test_unit_magnitude(self):
        a = planar_steering_vector(ARRAY, 0.4, -0.2)
        assert np.abs(a) == pytest.approx(np.ones(64))

    def test_zero_elevation_matches_ula(self):
        from repro.arrays.steering import steering_vector

        azimuth = np.deg2rad(25.0)
        planar = planar_steering_vector(ARRAY, azimuth, 0.0)
        ula = steering_vector(ARRAY.azimuth_ula(), azimuth)
        # At zero elevation every elevation row repeats the azimuth ULA.
        grid = planar.reshape(8, 8)
        for row in grid:
            assert row == pytest.approx(ula)

    def test_elevation_phase_progression(self):
        elevation = np.deg2rad(20.0)
        a = planar_steering_vector(ARRAY, 0.0, elevation).reshape(8, 8)
        expected_step = -2 * np.pi * 0.5 * np.sin(elevation)
        steps = np.angle(a[1:, 0] / a[:-1, 0])
        assert steps == pytest.approx(np.full(7, expected_step))


class TestPlanarSingleBeam:
    def test_unit_norm(self):
        w = planar_single_beam_weights(ARRAY, 0.3, -0.1)
        assert np.linalg.norm(w) == pytest.approx(1.0)

    def test_full_gain_on_target(self):
        azimuth, elevation = np.deg2rad(20.0), np.deg2rad(-15.0)
        w = planar_single_beam_weights(ARRAY, azimuth, elevation)
        gain = planar_beamforming_gain(ARRAY, w, azimuth, elevation)
        assert abs(gain) == pytest.approx(np.sqrt(64))

    def test_2d_selectivity(self):
        # A beam at (20, 0) rejects a direction at the same azimuth but
        # 25 degrees up.
        azimuth = np.deg2rad(20.0)
        w = planar_single_beam_weights(ARRAY, azimuth, 0.0)
        on_target = abs(planar_beamforming_gain(ARRAY, w, azimuth, 0.0))
        off_elevation = abs(
            planar_beamforming_gain(ARRAY, w, azimuth, np.deg2rad(25.0))
        )
        assert off_elevation < 0.3 * on_target


class TestPlanarMultibeam:
    def test_unit_norm(self):
        w = planar_constructive_multibeam(
            ARRAY,
            [(0.0, 0.0), (np.deg2rad(30.0), np.deg2rad(15.0))],
            [1.0, 0.5j],
        )
        assert np.linalg.norm(w) == pytest.approx(1.0)

    def test_combines_elevated_reflector(self):
        """A ceiling bounce (elevated path) combines constructively."""
        los = (0.0, 0.0)
        ceiling = (np.deg2rad(10.0), np.deg2rad(30.0))
        delta = 0.6 * np.exp(1j * 1.1)
        multibeam = planar_constructive_multibeam(
            ARRAY, [los, ceiling], [1.0, delta]
        )
        single = planar_single_beam_weights(ARRAY, *los)

        def received(weights):
            return abs(
                planar_beamforming_gain(ARRAY, weights, *los)
                + delta * planar_beamforming_gain(ARRAY, weights, *ceiling)
            ) ** 2

        gain_db = 10 * np.log10(received(multibeam) / received(single))
        expected = 10 * np.log10(1 + abs(delta) ** 2)
        assert gain_db == pytest.approx(expected, abs=0.4)

    def test_validation(self):
        with pytest.raises(ValueError):
            planar_constructive_multibeam(ARRAY, [], [])
        with pytest.raises(ValueError):
            planar_constructive_multibeam(ARRAY, [(0.0, 0.0)], [1.0, 2.0])


class TestElevationCut:
    def test_peak_at_steered_elevation(self):
        elevation = np.deg2rad(20.0)
        w = planar_single_beam_weights(ARRAY, 0.0, elevation)
        cut = np.deg2rad(np.linspace(-60, 60, 241))
        pattern = elevation_cut_pattern_db(ARRAY, w, cut)
        peak = cut[np.argmax(pattern)]
        assert peak == pytest.approx(elevation, abs=np.deg2rad(1.0))

    def test_floor(self):
        w = planar_single_beam_weights(ARRAY, 0.0, 0.0)
        pattern = elevation_cut_pattern_db(
            ARRAY, w, np.array([np.deg2rad(14.5)]), floor_db=-50.0
        )
        assert pattern[0] >= -50.0
