"""Tests for the delay phased array (Section 3.4)."""

import numpy as np
import pytest

from repro.arrays import DelayPhasedArray, SubArray, UniformLinearArray


@pytest.fixture
def array():
    return UniformLinearArray(num_elements=8)


class TestConstruction:
    def test_split_uniform(self, array):
        dpa = DelayPhasedArray.split_uniform(array, [0.0, 0.5])
        assert len(dpa.subarrays) == 2
        assert dpa.subarrays[0].element_slice == (0, 4)
        assert dpa.subarrays[1].element_slice == (4, 8)

    def test_uneven_split_rejected(self, array):
        with pytest.raises(ValueError, match="split evenly"):
            DelayPhasedArray.split_uniform(array, [0.0, 0.3, 0.6])

    def test_overlapping_subarrays_rejected(self, array):
        with pytest.raises(ValueError, match="overlap"):
            DelayPhasedArray(
                array=array,
                subarrays=(
                    SubArray(element_slice=(0, 5), steer_angle_rad=0.0),
                    SubArray(element_slice=(4, 8), steer_angle_rad=0.5),
                ),
            )

    def test_out_of_range_slice_rejected(self, array):
        with pytest.raises(ValueError, match="outside"):
            DelayPhasedArray(
                array=array,
                subarrays=(SubArray(element_slice=(0, 9), steer_angle_rad=0.0),),
            )

    def test_with_delays(self, array):
        dpa = DelayPhasedArray.split_uniform(array, [0.0, 0.5])
        updated = dpa.with_delays([1e-9, 0.0])
        assert updated.subarrays[0].delay_s == pytest.approx(1e-9)
        assert updated.subarrays[1].delay_s == 0.0

    def test_with_delays_wrong_length(self, array):
        dpa = DelayPhasedArray.split_uniform(array, [0.0, 0.5])
        with pytest.raises(ValueError):
            dpa.with_delays([1e-9])


class TestWeights:
    def test_unit_norm_at_all_frequencies(self, array):
        dpa = DelayPhasedArray.split_uniform(
            array, [0.0, 0.5], delays_s=[2e-9, 0.0]
        )
        for freq in (-200e6, 0.0, 123e6):
            w = dpa.weights_at(freq)
            assert np.linalg.norm(w) == pytest.approx(1.0)

    def test_zero_delay_frequency_independent(self, array):
        dpa = DelayPhasedArray.split_uniform(array, [0.0, 0.5])
        w0 = dpa.weights_at(0.0)
        w1 = dpa.weights_at(100e6)
        assert w0 == pytest.approx(w1)

    def test_delay_adds_linear_phase(self, array):
        delay = 3e-9
        dpa = DelayPhasedArray.split_uniform(
            array, [0.0, 0.5], delays_s=[delay, 0.0]
        )
        freq = 50e6
        w0 = dpa.weights_at(0.0)
        wf = dpa.weights_at(freq)
        expected = np.exp(-2j * np.pi * freq * delay)
        # First sub-array rotates by the delay phase; second is unchanged.
        assert wf[:4] / w0[:4] == pytest.approx(np.full(4, expected))
        assert wf[4:] / w0[4:] == pytest.approx(np.ones(4))

    def test_weights_over_band_shape(self, array):
        dpa = DelayPhasedArray.split_uniform(array, [0.0, 0.5])
        freqs = np.linspace(-200e6, 200e6, 11)
        stacked = dpa.weights_over_band(freqs)
        assert stacked.shape == (11, 8)

    def test_all_zero_gains_rejected(self, array):
        dpa = DelayPhasedArray.split_uniform(
            array, [0.0, 0.5], gains=[0.0, 0.0]
        )
        with pytest.raises(ValueError, match="zero"):
            dpa.weights_at(0.0)

    def test_subarray_points_at_its_angle(self, array):
        from repro.arrays.steering import steering_vector

        angle = np.deg2rad(20.0)
        dpa = DelayPhasedArray.split_uniform(array, [angle, -angle])
        w = dpa.weights_at(0.0)
        # The first sub-array's response toward its own angle should be
        # coherent: |sum over its elements of a(angle) * w| = 4 / norm.
        a = steering_vector(array, angle)
        response = abs(np.dot(a[:4], w[:4]))
        # 4 coherent elements, each at amplitude 1/sqrt(8): 4/sqrt(8) = sqrt(2).
        assert response == pytest.approx(np.sqrt(2.0))
