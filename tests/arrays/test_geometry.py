"""Tests for array geometries."""

import numpy as np
import pytest

from repro.arrays import UniformLinearArray, UniformPlanarArray
from repro.arrays.geometry import TESTBED_ARRAY


class TestUniformLinearArray:
    def test_wavelength_at_28ghz(self):
        array = UniformLinearArray(num_elements=8)
        assert array.wavelength == pytest.approx(0.0107, abs=1e-4)

    def test_half_wavelength_spacing(self):
        array = UniformLinearArray(num_elements=8)
        assert array.element_spacing == pytest.approx(array.wavelength / 2.0)

    def test_element_positions(self):
        array = UniformLinearArray(num_elements=4)
        positions = array.element_positions()
        assert positions.shape == (4,)
        assert positions[0] == 0.0
        assert np.diff(positions) == pytest.approx(
            [array.element_spacing] * 3
        )

    def test_aperture(self):
        array = UniformLinearArray(num_elements=8)
        assert array.aperture == pytest.approx(7 * array.element_spacing)

    def test_max_gain(self):
        array = UniformLinearArray(num_elements=8)
        assert array.max_gain_dbi() == pytest.approx(10 * np.log10(8))

    def test_rejects_zero_elements(self):
        with pytest.raises(ValueError):
            UniformLinearArray(num_elements=0)

    def test_rejects_bad_frequency(self):
        with pytest.raises(ValueError):
            UniformLinearArray(num_elements=8, carrier_frequency_hz=-1.0)

    def test_frozen(self):
        array = UniformLinearArray(num_elements=8)
        with pytest.raises(Exception):
            array.num_elements = 16


class TestUniformPlanarArray:
    def test_total_elements(self):
        array = UniformPlanarArray(num_azimuth=8, num_elevation=8)
        assert array.num_elements == 64

    def test_azimuth_ula_matches(self):
        planar = UniformPlanarArray(num_azimuth=8, num_elevation=4)
        ula = planar.azimuth_ula()
        assert ula.num_elements == 8
        assert ula.carrier_frequency_hz == planar.carrier_frequency_hz

    def test_elevation_gain(self):
        planar = UniformPlanarArray(num_azimuth=8, num_elevation=8)
        assert planar.elevation_gain_db() == pytest.approx(10 * np.log10(8))

    def test_max_gain_combines_dimensions(self):
        planar = UniformPlanarArray(num_azimuth=8, num_elevation=8)
        assert planar.max_gain_dbi() == pytest.approx(10 * np.log10(64))

    def test_testbed_array_is_8x8(self):
        assert TESTBED_ARRAY.num_elements == 64
        assert TESTBED_ARRAY.carrier_frequency_hz == 28e9

    def test_rejects_zero_dimension(self):
        with pytest.raises(ValueError):
            UniformPlanarArray(num_azimuth=0, num_elevation=8)
