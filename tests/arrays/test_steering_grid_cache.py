"""Differential and cache tests for the shared steering-grid matrix."""

import numpy as np
import pytest

from repro.arrays.geometry import UniformLinearArray
from repro.arrays.patterns import array_factor, beam_pattern_db
from repro.arrays.steering import (
    _GRID_CACHE,
    _GRID_CACHE_MIN_POINTS,
    cached_steering_matrix,
    single_beam_weights,
    steering_grid,
    steering_vector,
)
from repro.perf.cache import clear_caches

ARRAY = UniformLinearArray(num_elements=16, spacing_wavelengths=0.5)


@pytest.fixture(autouse=True)
def fresh_grid_cache():
    clear_caches("steering.grid")
    yield
    clear_caches("steering.grid")


class TestCachedSteeringMatrix:
    def test_matches_plain_steering_vector_bitwise(self):
        grid = np.linspace(-np.pi / 2, np.pi / 2, 181)
        cached = cached_steering_matrix(ARRAY, grid)
        np.testing.assert_array_equal(cached, steering_vector(ARRAY, grid))

    def test_second_call_returns_same_frozen_object(self):
        grid = np.linspace(-1.0, 1.0, 64)
        first = cached_steering_matrix(ARRAY, grid)
        second = cached_steering_matrix(ARRAY, grid.copy())  # content-keyed
        assert first is second
        assert not first.flags.writeable

    def test_small_grids_bypass_the_cache(self):
        tiny = np.linspace(-0.1, 0.1, _GRID_CACHE_MIN_POINTS - 1)
        before = len(_GRID_CACHE)
        result = cached_steering_matrix(ARRAY, tiny)
        assert len(_GRID_CACHE) == before
        assert result.flags.writeable  # plain build, not a shared entry
        np.testing.assert_array_equal(result, steering_vector(ARRAY, tiny))

    def test_distinct_arrays_get_distinct_entries(self):
        grid = np.linspace(-1.0, 1.0, 32)
        other = UniformLinearArray(num_elements=8, spacing_wavelengths=0.5)
        a = cached_steering_matrix(ARRAY, grid)
        b = cached_steering_matrix(other, grid)
        assert a.shape == (32, 16) and b.shape == (32, 8)

    def test_steering_grid_delegates(self):
        via_spec = steering_grid(ARRAY, -1.0, 1.0, 64)
        via_contents = cached_steering_matrix(
            ARRAY, np.linspace(-1.0, 1.0, 64)
        )
        assert via_spec is via_contents


class TestArrayFactorUsesCache:
    def test_sweep_hits_after_first_weight_vector(self):
        grid = np.linspace(-np.pi / 2, np.pi / 2, 361)
        hits_before = _GRID_CACHE.hits
        for angle in (0.0, 0.2, -0.3):
            array_factor(ARRAY, single_beam_weights(ARRAY, angle), grid)
        assert _GRID_CACHE.hits == hits_before + 2  # misses once, hits twice

    def test_values_unchanged_by_caching(self):
        grid = np.linspace(-np.pi / 2, np.pi / 2, 181)
        weights = single_beam_weights(ARRAY, 0.25)
        expected = steering_vector(ARRAY, grid) @ weights
        np.testing.assert_array_equal(
            array_factor(ARRAY, weights, grid), expected
        )
        with np.errstate(divide="ignore"):
            expected_db = np.maximum(
                10.0 * np.log10(np.abs(expected) ** 2), -80.0
            )
        np.testing.assert_array_equal(
            beam_pattern_db(ARRAY, weights, grid), expected_db
        )

    def test_scalar_and_2d_angles_still_work(self):
        weights = single_beam_weights(ARRAY, 0.1)
        scalar = array_factor(ARRAY, weights, 0.1)
        assert np.ndim(scalar) == 0
        grid_2d = np.linspace(-0.5, 0.5, 30).reshape(5, 6)
        np.testing.assert_array_equal(
            array_factor(ARRAY, weights, grid_2d),
            steering_vector(ARRAY, grid_2d) @ weights,
        )
