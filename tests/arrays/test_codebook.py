"""Tests for beam codebooks."""

import numpy as np
import pytest

from repro.arrays import Codebook, UniformLinearArray, uniform_codebook
from repro.arrays.codebook import angles_to_codebook


@pytest.fixture
def array():
    return UniformLinearArray(num_elements=8)


class TestUniformCodebook:
    def test_size(self, array):
        codebook = uniform_codebook(array, 32)
        assert len(codebook) == 32

    def test_spans_field_of_view(self, array):
        fov = np.deg2rad(120.0)
        codebook = uniform_codebook(array, 16, fov)
        assert codebook.angles_rad[0] == pytest.approx(-fov / 2)
        assert codebook.angles_rad[-1] == pytest.approx(fov / 2)

    def test_entries_unit_norm(self, array):
        codebook = uniform_codebook(array, 8)
        for _angle, weights in codebook:
            assert np.linalg.norm(weights.vector) == pytest.approx(1.0)

    def test_rejects_zero_beams(self, array):
        with pytest.raises(ValueError):
            uniform_codebook(array, 0)

    def test_rejects_bad_fov(self, array):
        with pytest.raises(ValueError):
            uniform_codebook(array, 8, field_of_view_rad=4.0)


class TestCodebookLookup:
    def test_nearest_index(self, array):
        codebook = uniform_codebook(array, 33, np.deg2rad(120.0))
        target = np.deg2rad(31.0)
        index = codebook.nearest_index(target)
        spacing = np.deg2rad(120.0) / 32
        assert abs(codebook.angles_rad[index] - target) <= spacing / 2 + 1e-12

    def test_weights_for_matches_nearest(self, array):
        codebook = uniform_codebook(array, 16)
        target = 0.123
        weights = codebook.weights_for(target)
        index = codebook.nearest_index(target)
        assert weights is codebook.entries[index]

    def test_getitem(self, array):
        codebook = uniform_codebook(array, 4)
        angle, weights = codebook[1]
        assert angle == pytest.approx(codebook.angles_rad[1])

    def test_immutable_angles(self, array):
        codebook = uniform_codebook(array, 4)
        with pytest.raises(ValueError):
            codebook.angles_rad[0] = 0.0


class TestAnglesToCodebook:
    def test_exact_angles(self, array):
        angles = [0.0, 0.3, -0.5]
        codebook = angles_to_codebook(array, angles)
        assert codebook.angles_rad == pytest.approx(angles)
        assert len(codebook) == 3

    def test_mismatched_entries_rejected(self, array):
        codebook = uniform_codebook(array, 4)
        with pytest.raises(ValueError):
            Codebook(
                array=array,
                angles_rad=np.zeros(3),
                entries=codebook.entries,
            )
