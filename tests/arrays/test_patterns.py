"""Tests for beam patterns and the tracking pattern inverse."""

import numpy as np
import pytest

from repro.arrays import (
    UniformLinearArray,
    array_factor,
    beam_pattern_db,
    half_power_beamwidth,
    invert_pattern_offset,
    single_beam_weights,
    ula_power_pattern,
    ula_power_pattern_db,
)
from repro.arrays.patterns import first_null_offset


@pytest.fixture
def array():
    return UniformLinearArray(num_elements=8)


class TestArrayFactor:
    def test_peak_at_steer_angle(self, array):
        steer = np.deg2rad(20.0)
        w = single_beam_weights(array, steer)
        angles = np.linspace(-np.pi / 2, np.pi / 2, 721)
        af = np.abs(array_factor(array, w, angles))
        assert angles[np.argmax(af)] == pytest.approx(steer, abs=np.deg2rad(0.5))

    def test_peak_value_sqrt_n(self, array):
        w = single_beam_weights(array, 0.0)
        assert abs(array_factor(array, w, 0.0)) == pytest.approx(np.sqrt(8))

    def test_matches_analytic_pattern(self, array):
        steer = np.deg2rad(10.0)
        w = single_beam_weights(array, steer)
        offsets = np.linspace(-0.15, 0.15, 41)
        numeric = np.abs(array_factor(array, w, steer + offsets)) ** 2 / 8.0
        analytic = ula_power_pattern(8, offsets, steer_angle_rad=steer)
        assert numeric == pytest.approx(analytic, abs=1e-9)


class TestBeamPatternDb:
    def test_floor_applied(self, array):
        w = single_beam_weights(array, 0.0)
        null = first_null_offset(8)
        db = beam_pattern_db(array, w, np.array([null]), floor_db=-60.0)
        assert db[0] >= -60.0

    def test_peak_db(self, array):
        w = single_beam_weights(array, 0.0)
        db = beam_pattern_db(array, w, np.array([0.0]))
        assert db[0] == pytest.approx(10 * np.log10(8))


class TestUlaPowerPattern:
    def test_peak_normalized(self):
        assert ula_power_pattern(8, 0.0) == pytest.approx(1.0)

    def test_symmetric_at_broadside(self):
        offsets = np.linspace(0, 0.2, 21)
        assert ula_power_pattern(8, offsets) == pytest.approx(
            ula_power_pattern(8, -offsets)
        )

    def test_monotone_on_main_lobe(self):
        null = first_null_offset(8)
        offsets = np.linspace(0, null * 0.98, 50)
        values = ula_power_pattern(8, offsets)
        assert np.all(np.diff(values) < 0)

    def test_null_location(self):
        null = first_null_offset(8)
        assert ula_power_pattern(8, null) == pytest.approx(0.0, abs=1e-12)

    def test_db_version_floor(self):
        null = first_null_offset(8)
        assert ula_power_pattern_db(8, null, floor_db=-70.0) >= -70.0

    def test_larger_array_narrower_lobe(self):
        assert first_null_offset(16) < first_null_offset(8)


class TestHalfPowerBeamwidth:
    def test_8_element_hpbw(self):
        # Classic rule of thumb for N=8, lambda/2: ~12.8 degrees.
        hpbw = half_power_beamwidth(8)
        assert np.rad2deg(hpbw) == pytest.approx(12.8, abs=0.8)

    def test_scales_inversely_with_n(self):
        assert half_power_beamwidth(16) == pytest.approx(
            half_power_beamwidth(8) / 2.0, rel=0.1
        )

    def test_steered_beam_broader(self):
        # Beams steered away from broadside widen (sin projection).
        assert half_power_beamwidth(8, np.deg2rad(40.0)) > half_power_beamwidth(8)


class TestInvertPatternOffset:
    def test_zero_drop_zero_offset(self):
        assert invert_pattern_offset(8, 0.0) == 0.0

    def test_roundtrip(self):
        for offset_deg in (1.0, 3.0, 5.0):
            offset = np.deg2rad(offset_deg)
            drop_db = -10 * np.log10(ula_power_pattern(8, offset))
            recovered = invert_pattern_offset(8, drop_db)
            assert recovered == pytest.approx(offset, abs=1e-6)

    def test_deep_drop_lands_near_null(self):
        null = first_null_offset(8)
        recovered = invert_pattern_offset(8, 60.0)
        assert 0.95 * null < recovered <= null
        # An impossibly deep drop (deeper than the pattern ever goes before
        # the null within float precision) clamps to the null edge.
        assert invert_pattern_offset(8, 400.0) == pytest.approx(null, rel=1e-6)

    def test_rejects_negative_drop(self):
        with pytest.raises(ValueError):
            invert_pattern_offset(8, -1.0)

    def test_steered_beam_roundtrip(self):
        steer = np.deg2rad(25.0)
        offset = np.deg2rad(2.0)
        drop_db = -10 * np.log10(
            ula_power_pattern(8, offset, steer_angle_rad=steer)
        )
        recovered = invert_pattern_offset(8, drop_db, steer_angle_rad=steer)
        assert recovered == pytest.approx(offset, abs=1e-6)
