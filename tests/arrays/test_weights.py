"""Tests for BeamWeights and WeightQuantizer."""

import numpy as np
import pytest

from repro.arrays import BeamWeights, UniformLinearArray, WeightQuantizer
from repro.arrays.steering import single_beam_weights
from repro.arrays.weights import COMMODITY_QUANTIZER, TESTBED_QUANTIZER


class TestBeamWeights:
    def test_from_vector_normalizes(self):
        beam = BeamWeights.from_vector(np.array([3.0, 4.0], dtype=complex))
        assert np.linalg.norm(beam.vector) == pytest.approx(1.0)

    def test_rejects_non_unit_norm(self):
        with pytest.raises(ValueError, match="unit norm"):
            BeamWeights(np.array([1.0, 1.0], dtype=complex))

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            BeamWeights.from_vector(np.ones((2, 2), dtype=complex))

    def test_immutable_vector(self):
        beam = BeamWeights.from_vector(np.array([1.0, 1.0j]))
        with pytest.raises(ValueError):
            beam.vector[0] = 0.0

    def test_phases_and_amplitudes(self):
        beam = BeamWeights.from_vector(np.array([1.0, 1.0j]))
        assert beam.phases() == pytest.approx([0.0, np.pi / 2])
        assert beam.amplitudes() == pytest.approx([1 / np.sqrt(2)] * 2)

    def test_num_elements(self):
        beam = BeamWeights.from_vector(np.ones(8, dtype=complex))
        assert beam.num_elements == 8

    def test_array_protocol(self):
        beam = BeamWeights.from_vector(np.ones(4, dtype=complex))
        assert np.asarray(beam).shape == (4,)


class TestWeightQuantizer:
    def test_phase_snapping_levels(self):
        quantizer = WeightQuantizer(phase_bits=2, amplitude_range_db=None)
        phases = np.array([0.1, np.pi / 4 + 0.2, -0.1])
        snapped = quantizer.quantize_phases(phases)
        step = 2 * np.pi / 4
        assert np.allclose(np.mod(snapped, step), 0.0, atol=1e-12) or np.allclose(
            np.mod(snapped, step), step, atol=1e-12
        )

    def test_high_resolution_phase_nearly_exact(self):
        quantizer = WeightQuantizer(phase_bits=10, amplitude_range_db=None)
        phases = np.linspace(-np.pi, np.pi, 17)
        assert quantizer.quantize_phases(phases) == pytest.approx(
            phases, abs=2 * np.pi / 2 ** 10
        )

    def test_amplitude_floor(self):
        quantizer = WeightQuantizer(phase_bits=None, amplitude_range_db=20.0)
        amplitudes = np.array([1.0, 0.001])
        out = quantizer.quantize_amplitudes(amplitudes)
        assert out[0] == pytest.approx(1.0)
        assert out[1] == pytest.approx(0.1)  # clipped to -20 dB of peak

    def test_onoff_amplitude(self):
        quantizer = WeightQuantizer(
            phase_bits=None, amplitude_range_db=40.0, amplitude_bits=1
        )
        out = quantizer.quantize_amplitudes(np.array([1.0, 0.3, 0.005]))
        # 1-bit: either peak level or the floor.
        floor = 10 ** (-40 / 20)
        for value in out:
            assert value == pytest.approx(1.0) or value == pytest.approx(floor)

    def test_apply_preserves_unit_norm(self):
        array = UniformLinearArray(num_elements=8)
        beam = BeamWeights(single_beam_weights(array, 0.35))
        for quantizer in (TESTBED_QUANTIZER, COMMODITY_QUANTIZER):
            quantized = quantizer.apply(beam)
            assert np.linalg.norm(quantized.vector) == pytest.approx(1.0)

    def test_testbed_quantizer_barely_distorts(self):
        array = UniformLinearArray(num_elements=8)
        beam = BeamWeights(single_beam_weights(array, 0.35))
        quantized = TESTBED_QUANTIZER.apply(beam)
        # 6-bit phase control: correlation with the ideal beam stays high.
        correlation = abs(np.vdot(beam.vector, quantized.vector))
        assert correlation > 0.995

    def test_rejects_bad_bits(self):
        with pytest.raises(ValueError):
            WeightQuantizer(phase_bits=0)
        with pytest.raises(ValueError):
            WeightQuantizer(amplitude_bits=0)
        with pytest.raises(ValueError):
            WeightQuantizer(amplitude_range_db=-3.0)

    def test_zero_amplitudes_untouched(self):
        quantizer = WeightQuantizer()
        out = quantizer.quantize_amplitudes(np.zeros(4))
        assert out == pytest.approx(np.zeros(4))
