"""Tests for hybrid multi-RF-chain beamforming (Section 8)."""

import numpy as np
import pytest

from repro.arrays import UniformLinearArray
from repro.arrays.hybrid import (
    HybridBeamformer,
    multiuser_multibeam,
    multiuser_single_beam,
)
from repro.arrays.steering import single_beam_weights
from repro.sim.scenarios import two_path_channel


ARRAY = UniformLinearArray(num_elements=8)
NOISE = 1e-13
POWER = 1.0


def user_channels():
    """Two users, angularly separated, each with their own reflection."""
    user_a = two_path_channel(
        ARRAY, los_angle_rad=np.deg2rad(-30.0),
        nlos_angle_rad=np.deg2rad(-55.0), delta_db=-4.0,
    )
    user_b = two_path_channel(
        ARRAY, los_angle_rad=np.deg2rad(30.0),
        nlos_angle_rad=np.deg2rad(55.0), delta_db=-4.0, sigma_rad=-0.7,
    )
    return [user_a, user_b]


class TestHybridBeamformer:
    def test_requires_unit_norm_chains(self):
        with pytest.raises(ValueError, match="unit norm"):
            HybridBeamformer(
                array=ARRAY,
                chain_weights=(np.ones(8, dtype=complex),),
            )

    def test_requires_matching_shape(self):
        with pytest.raises(ValueError):
            HybridBeamformer(
                array=ARRAY,
                chain_weights=(np.ones(4, dtype=complex) / 2.0,),
            )

    def test_requires_chains(self):
        with pytest.raises(ValueError):
            HybridBeamformer(array=ARRAY, chain_weights=())

    def test_received_powers_shape(self):
        channels = user_channels()
        beamformer = multiuser_single_beam(ARRAY, channels)
        powers = beamformer.received_powers(channels[0], POWER)
        assert powers.shape == (2,)
        # The serving chain dominates at its own user.
        assert powers[0] > powers[1]

    def test_power_split_across_chains(self):
        # Adding a second chain halves each chain's transmit power.
        channel = user_channels()[0]
        w = single_beam_weights(ARRAY, np.deg2rad(-30.0))
        one = HybridBeamformer(array=ARRAY, chain_weights=(w,))
        two = HybridBeamformer(array=ARRAY, chain_weights=(w, w))
        assert two.received_powers(channel, POWER)[0] == pytest.approx(
            one.received_powers(channel, POWER)[0] / 2.0
        )


class TestMultiUser:
    def test_separated_users_usable_sinr(self):
        channels = user_channels()
        beamformer = multiuser_multibeam(ARRAY, channels, num_beams=2)
        for user in range(2):
            sinr = beamformer.sinr_db(channels, user, POWER, NOISE)
            # With negligible noise the link is interference-limited by
            # the other chain's sidelobes; an 8-element aperture keeps
            # that floor ~-13 dB down, leaving a usable SINR.
            assert sinr > 12.0
            # Interference costs real SINR relative to the lone-user SNR
            # (the reason the paper cites interference-aware multiplexing
            # as the companion technique).
            powers = beamformer.received_powers(channels[user], POWER)
            snr = 10 * np.log10(powers[user] / NOISE)
            assert sinr < snr

    def test_multibeam_sum_rate_beats_single_beam_noise_limited(self):
        # In the noise-limited regime (realistic thermal noise at the
        # cell edge) each user's constructive gain outweighs the extra
        # sidelobe interference.
        channels = user_channels()
        multibeam = multiuser_multibeam(ARRAY, channels, num_beams=2)
        single = multiuser_single_beam(ARRAY, channels)
        noise_limited = 1e-9
        assert multibeam.sum_spectral_efficiency(
            channels, POWER, noise_limited
        ) > single.sum_spectral_efficiency(channels, POWER, noise_limited)

    def test_interference_limited_regime_favors_narrow_beams(self):
        # The flip side (and why Section 8 calls for interference-aware
        # beam selection): with negligible noise, the multi-beam's extra
        # lobes raise the interference floor and single beams win.
        channels = user_channels()
        multibeam = multiuser_multibeam(ARRAY, channels, num_beams=2)
        single = multiuser_single_beam(ARRAY, channels)
        assert single.sum_spectral_efficiency(
            channels, POWER, NOISE
        ) > multibeam.sum_spectral_efficiency(channels, POWER, NOISE)

    def test_colocated_users_interfere(self):
        # Two chains pointed at the same user: SINR collapses to ~0 dB.
        channel = user_channels()[0]
        channels = [channel, channel]
        beamformer = multiuser_single_beam(ARRAY, channels)
        sinr = beamformer.sinr_db(channels, 0, POWER, NOISE)
        assert sinr < 3.0

    def test_validation(self):
        channels = user_channels()
        beamformer = multiuser_single_beam(ARRAY, channels)
        with pytest.raises(ValueError):
            beamformer.sinr_db(channels[:1], 0, POWER, NOISE)
        with pytest.raises(IndexError):
            beamformer.sinr_db(channels, 5, POWER, NOISE)
        with pytest.raises(ValueError):
            beamformer.received_powers(channels[0], 0.0)
        with pytest.raises(ValueError):
            multiuser_multibeam(ARRAY, [])
        with pytest.raises(ValueError):
            multiuser_single_beam(ARRAY, [])
