"""Tests for steering vectors and single-beam weights."""

import numpy as np
import pytest

from repro.arrays import UniformLinearArray, single_beam_weights, steering_vector
from repro.arrays.steering import beamforming_gain


@pytest.fixture
def array():
    return UniformLinearArray(num_elements=8)


class TestSteeringVector:
    def test_broadside_is_all_ones(self, array):
        a = steering_vector(array, 0.0)
        assert a == pytest.approx(np.ones(8))

    def test_unit_magnitude_elements(self, array):
        a = steering_vector(array, 0.7)
        assert np.abs(a) == pytest.approx(np.ones(8))

    def test_phase_progression(self, array):
        angle = np.deg2rad(30.0)
        a = steering_vector(array, angle)
        expected_step = -2 * np.pi * 0.5 * np.sin(angle)
        steps = np.angle(a[1:] / a[:-1])
        assert steps == pytest.approx([expected_step] * 7)

    def test_vectorized_shape(self, array):
        angles = np.linspace(-1, 1, 11)
        a = steering_vector(array, angles)
        assert a.shape == (11, 8)

    def test_symmetric_angles_conjugate(self, array):
        a_plus = steering_vector(array, 0.4)
        a_minus = steering_vector(array, -0.4)
        assert a_minus == pytest.approx(np.conj(a_plus))


class TestSingleBeamWeights:
    def test_unit_norm(self, array):
        w = single_beam_weights(array, np.deg2rad(25.0))
        assert np.linalg.norm(w) == pytest.approx(1.0)

    def test_full_array_gain_toward_steered_angle(self, array):
        angle = np.deg2rad(-15.0)
        w = single_beam_weights(array, angle)
        gain = beamforming_gain(array, w, angle)
        # Coherent combining: |a^T w| = sqrt(N).
        assert abs(gain) == pytest.approx(np.sqrt(8))

    def test_attenuates_off_beam_direction(self, array):
        w = single_beam_weights(array, 0.0)
        off = beamforming_gain(array, w, np.deg2rad(40.0))
        assert abs(off) < 0.3 * np.sqrt(8)

    def test_matches_conjugate_of_steering(self, array):
        angle = 0.3
        w = single_beam_weights(array, angle)
        a = steering_vector(array, angle)
        assert w == pytest.approx(np.conj(a) / np.sqrt(8))


class TestBeamformingGain:
    def test_single_element_array_is_isotropic(self):
        array = UniformLinearArray(num_elements=1)
        w = single_beam_weights(array, 0.0)
        for angle in np.linspace(-1.5, 1.5, 7):
            assert abs(beamforming_gain(array, w, angle)) == pytest.approx(1.0)

    def test_gain_is_complex(self, array):
        w = single_beam_weights(array, 0.0)
        gain = beamforming_gain(array, w, 0.2)
        assert isinstance(gain, complex)
