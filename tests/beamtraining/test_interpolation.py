"""Tests for sub-grid peak interpolation in beam training."""

import numpy as np
import pytest

from repro.arrays import UniformLinearArray, uniform_codebook
from repro.beamtraining import ExhaustiveTrainer, top_k_directions
from repro.beamtraining.base import BeamTrainingResult, interpolate_peak
from repro.phy.ofdm import ChannelSounder, OfdmConfig
from repro.sim.scenarios import two_path_channel


ARRAY = UniformLinearArray(num_elements=8)


def parabolic_result(true_angle, grid_step=np.deg2rad(3.75)):
    """A synthetic sweep whose dB profile is exactly parabolic."""
    angles = np.arange(-16, 17) * grid_step
    powers_db = -5.0 * ((angles - true_angle) / grid_step) ** 2
    return BeamTrainingResult(
        angles_rad=angles, powers=10 ** (powers_db / 10.0),
        num_probes=angles.size,
    )


class TestInterpolatePeak:
    def test_exact_on_parabola(self):
        true_angle = np.deg2rad(1.3)  # off-grid
        result = parabolic_result(true_angle)
        index = int(np.argmax(result.powers))
        assert interpolate_peak(result, index) == pytest.approx(
            true_angle, abs=1e-9
        )

    def test_on_grid_peak_unchanged(self):
        result = parabolic_result(0.0)
        index = int(np.argmax(result.powers))
        assert interpolate_peak(result, index) == pytest.approx(0.0, abs=1e-12)

    def test_edge_falls_back_to_grid(self):
        result = parabolic_result(0.0)
        assert interpolate_peak(result, 0) == result.angles_rad[0]
        last = result.angles_rad.size - 1
        assert interpolate_peak(result, last) == result.angles_rad[last]

    def test_shift_clamped_to_half_bin(self):
        # A flat-ish top cannot send the estimate beyond half a bin.
        angles = np.array([-1.0, 0.0, 1.0])
        powers = np.array([0.99, 1.0, 0.999999])
        result = BeamTrainingResult(
            angles_rad=angles, powers=powers, num_probes=3
        )
        refined = interpolate_peak(result, 1)
        assert abs(refined) <= 0.5

    def test_index_validation(self):
        result = parabolic_result(0.0)
        with pytest.raises(IndexError):
            interpolate_peak(result, 999)


class TestInterpolatedTopK:
    def test_beats_grid_resolution(self):
        """Interpolation recovers an off-grid LOS better than the grid."""
        true_angle = np.deg2rad(1.7)  # between 33-entry codebook beams
        channel = two_path_channel(
            ARRAY, los_angle_rad=true_angle, delta_db=-20.0
        )
        sounder = ChannelSounder(
            config=OfdmConfig(bandwidth_hz=100e6, num_subcarriers=64), rng=0
        )
        trainer = ExhaustiveTrainer(
            codebook=uniform_codebook(ARRAY, 33), sounder=sounder
        )
        result = trainer.train(channel)
        coarse, _ = top_k_directions(result, 1)
        refined, _ = top_k_directions(result, 1, interpolate=True)
        coarse_error = abs(coarse[0] - true_angle)
        refined_error = abs(refined[0] - true_angle)
        assert refined_error < coarse_error
        assert refined_error < np.deg2rad(1.0)
