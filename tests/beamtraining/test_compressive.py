"""Tests for compressive (random multi-lobe) beam training."""

import numpy as np
import pytest

from repro.arrays import UniformLinearArray
from repro.beamtraining import top_k_directions
from repro.beamtraining.compressive import (
    CompressiveTrainer,
    random_multilobe_weights,
)
from repro.phy.ofdm import ChannelSounder, OfdmConfig
from repro.phy.reference_signals import ProbeBudget, ProbeKind
from repro.sim.scenarios import two_path_channel
from repro.utils import ensure_rng


ARRAY = UniformLinearArray(num_elements=8)


def make_trainer(seed=0, num_probes=14):
    sounder = ChannelSounder(
        config=OfdmConfig(bandwidth_hz=100e6, num_subcarriers=64), rng=seed
    )
    return CompressiveTrainer(
        array=ARRAY, sounder=sounder, num_probes=num_probes, rng=seed + 1
    )


class TestRandomMultilobeWeights:
    def test_unit_norm(self):
        rng = ensure_rng(0)
        weights = random_multilobe_weights(ARRAY, rng)
        assert np.linalg.norm(weights) == pytest.approx(1.0)

    def test_constant_amplitude(self):
        rng = ensure_rng(1)
        weights = random_multilobe_weights(ARRAY, rng)
        assert np.abs(weights) == pytest.approx(
            np.full(8, 1 / np.sqrt(8))
        )

    def test_patterns_differ(self):
        rng = ensure_rng(2)
        a = random_multilobe_weights(ARRAY, rng)
        b = random_multilobe_weights(ARRAY, rng)
        assert not np.allclose(a, b)


class TestCompressiveTrainer:
    def test_finds_both_paths(self):
        channel = two_path_channel(ARRAY, delta_db=-4.0)
        result = make_trainer().train(channel)
        angles, _powers = top_k_directions(
            result, 2, min_separation_rad=np.deg2rad(10.0)
        )
        found = sorted(np.rad2deg(angles))
        # Recovery is limited by the 8-element aperture's ~13-degree
        # resolution: peaks land within about half a beamwidth.
        assert found[0] == pytest.approx(0.0, abs=7.5)
        assert found[1] == pytest.approx(30.0, abs=7.5)

    def test_fewer_probes_than_grid(self):
        trainer = make_trainer(num_probes=14)
        channel = two_path_channel(ARRAY)
        result = trainer.train(channel)
        assert result.num_probes == 14
        assert result.num_probes < trainer.grid_size

    def test_profile_non_negative(self):
        channel = two_path_channel(ARRAY)
        result = make_trainer().train(channel)
        assert np.all(result.powers >= 0)

    def test_charges_budget(self):
        channel = two_path_channel(ARRAY)
        budget = ProbeBudget()
        make_trainer().train(channel, budget=budget)
        assert budget.total_probes(ProbeKind.SSB) == 14

    def test_relative_path_strength_recovered(self):
        # NNLS smears each path's energy over grid bins within the
        # aperture resolution, so compare *window* sums around the two
        # true directions rather than single bins.
        channel = two_path_channel(ARRAY, delta_db=-6.0)
        result = make_trainer(seed=3, num_probes=24).train(channel)
        grid_deg = np.rad2deg(result.angles_rad)

        def window_power(center_deg, half_width_deg=8.0):
            mask = np.abs(grid_deg - center_deg) <= half_width_deg
            return float(np.sum(result.powers[mask]))

        ratio_db = 10 * np.log10(window_power(30.0) / window_power(0.0))
        # The reflection sits 12 dB below the LOS in power (delta^2).
        assert ratio_db == pytest.approx(-12.0, abs=6.0)

    def test_validation(self):
        sounder = ChannelSounder(config=OfdmConfig(), rng=0)
        with pytest.raises(ValueError):
            CompressiveTrainer(array=ARRAY, sounder=sounder, num_probes=1)
        with pytest.raises(ValueError):
            CompressiveTrainer(array=ARRAY, sounder=sounder, grid_size=1)
