"""Tests for beam training (exhaustive + hierarchical) and peak picking."""

import numpy as np
import pytest

from repro.arrays import UniformLinearArray, uniform_codebook
from repro.beamtraining import (
    BeamTrainingResult,
    ExhaustiveTrainer,
    HierarchicalTrainer,
    top_k_directions,
)
from repro.phy.ofdm import ChannelSounder, OfdmConfig
from repro.phy.reference_signals import ProbeBudget, ProbeKind
from repro.sim.scenarios import two_path_channel


@pytest.fixture
def array():
    return UniformLinearArray(num_elements=8)


@pytest.fixture
def sounder():
    return ChannelSounder(config=OfdmConfig(num_subcarriers=64), rng=0)


@pytest.fixture
def channel(array):
    return two_path_channel(
        array, los_angle_rad=0.0, nlos_angle_rad=np.deg2rad(30.0),
        delta_db=-5.0,
    )


class TestBeamTrainingResult:
    def test_best_angle(self):
        result = BeamTrainingResult(
            angles_rad=np.array([0.0, 0.5]), powers=np.array([1.0, 2.0]),
            num_probes=2,
        )
        assert result.best_angle_rad == pytest.approx(0.5)
        assert result.best_power == pytest.approx(2.0)

    def test_power_at_nearest(self):
        result = BeamTrainingResult(
            angles_rad=np.array([0.0, 0.5]), powers=np.array([1.0, 2.0]),
            num_probes=2,
        )
        assert result.power_at(0.45) == pytest.approx(2.0)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            BeamTrainingResult(
                angles_rad=np.zeros(3), powers=np.zeros(2), num_probes=3
            )


class TestExhaustiveTrainer:
    def test_finds_los(self, array, sounder, channel):
        trainer = ExhaustiveTrainer(
            codebook=uniform_codebook(array, 33), sounder=sounder
        )
        result = trainer.train(channel)
        assert result.best_angle_rad == pytest.approx(0.0, abs=np.deg2rad(4.0))

    def test_probe_count_equals_codebook(self, array, sounder, channel):
        trainer = ExhaustiveTrainer(
            codebook=uniform_codebook(array, 16), sounder=sounder
        )
        budget = ProbeBudget()
        result = trainer.train(channel, budget=budget)
        assert result.num_probes == 16
        assert budget.total_probes(ProbeKind.SSB) == 16

    def test_sees_both_paths(self, array, sounder, channel):
        trainer = ExhaustiveTrainer(
            codebook=uniform_codebook(array, 33), sounder=sounder
        )
        result = trainer.train(channel)
        angles, powers = top_k_directions(result, 2)
        assert len(angles) == 2
        found = sorted(np.rad2deg(angles))
        assert found[0] == pytest.approx(0.0, abs=4.0)
        assert found[1] == pytest.approx(30.0, abs=4.0)


class TestHierarchicalTrainer:
    def test_converges_to_los(self, array, sounder, channel):
        trainer = HierarchicalTrainer(
            array=array, sounder=sounder, num_levels=5, branching=2
        )
        result = trainer.train(channel)
        assert result.best_angle_rad == pytest.approx(0.0, abs=np.deg2rad(6.0))

    def test_logarithmic_probe_count(self, array, sounder, channel):
        trainer = HierarchicalTrainer(
            array=array, sounder=sounder, num_levels=5, branching=2
        )
        result = trainer.train(channel)
        assert result.num_probes == 10  # 2 probes x 5 levels

    def test_fewer_probes_than_exhaustive(self, array, sounder, channel):
        hier = HierarchicalTrainer(array=array, sounder=sounder, num_levels=5)
        exhaustive = ExhaustiveTrainer(
            codebook=uniform_codebook(array, 32), sounder=sounder
        )
        assert (
            hier.train(channel).num_probes
            < exhaustive.train(channel).num_probes
        )

    def test_refine_around(self, array, sounder, channel):
        trainer = HierarchicalTrainer(array=array, sounder=sounder)
        angle, power = trainer.refine_around(
            channel, center_rad=np.deg2rad(2.0), span_rad=np.deg2rad(10.0)
        )
        assert abs(angle) < np.deg2rad(8.0)
        assert power > 0

    def test_validation(self, array, sounder):
        with pytest.raises(ValueError):
            HierarchicalTrainer(array=array, sounder=sounder, num_levels=0)
        with pytest.raises(ValueError):
            HierarchicalTrainer(array=array, sounder=sounder, branching=1)


class TestTopKDirections:
    def make_result(self):
        angles = np.deg2rad(np.linspace(-60, 60, 25))
        powers = np.ones(25) * 1e-12
        powers[12] = 1.0   # 0 deg
        powers[13] = 0.9   # adjacent, should be suppressed
        powers[18] = 0.3   # 30 deg
        return BeamTrainingResult(
            angles_rad=angles, powers=powers, num_probes=25
        )

    def test_non_maximum_suppression(self):
        angles, powers = top_k_directions(
            self.make_result(), 2, min_separation_rad=np.deg2rad(10.0)
        )
        assert np.rad2deg(angles[0]) == pytest.approx(0.0, abs=1.0)
        assert np.rad2deg(angles[1]) == pytest.approx(30.0, abs=1.0)

    def test_noise_floor_excluded(self):
        angles, _ = top_k_directions(
            self.make_result(), 5, min_separation_rad=np.deg2rad(10.0),
            min_relative_power_db=20.0,
        )
        assert len(angles) == 2  # the 1e-12 noise bins never qualify

    def test_k_one(self):
        angles, powers = top_k_directions(self.make_result(), 1)
        assert len(angles) == 1
        assert powers[0] == pytest.approx(1.0)

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            top_k_directions(self.make_result(), 0)
