"""Unit tests for the JSONL trace exporter and the timeline renderer."""

import io
import json

import numpy as np
import pytest

from repro.telemetry import (
    Event,
    EventLog,
    event_to_jsonable,
    read_events_jsonl,
    render_timeline,
    write_events_jsonl,
)


def _events():
    return EventLog(
        [
            Event(time_s=0.0, kind="run_start", run="a#0",
                  fields={"label": "a"}),
            Event(time_s=0.005, kind="probe_tx", run="a#0",
                  fields={"probe": "ssb", "count": 33}),
            Event(time_s=0.010, kind="blockage_onset", run="a#0",
                  fields={"beam": 1, "power_db": -3.25}),
            Event(time_s=1.0, kind="run_end", run="a#0",
                  fields={"samples": 100}),
        ]
    )


class TestJsonable:
    def test_numpy_fields_degrade_to_plain_types(self):
        event = Event(
            time_s=0.0,
            kind="per_beam_power_estimate",
            fields={
                "powers_db": np.array([1.5, -2.0]),
                "snr_db": np.float64(12.5),
                "active": [np.bool_(True), np.bool_(False)],
            },
        )
        payload = event_to_jsonable(event)
        assert payload["powers_db"] == [1.5, -2.0]
        assert payload["snr_db"] == 12.5
        assert payload["active"] == [True, False]
        json.dumps(payload, allow_nan=False)  # strictly serializable

    def test_non_finite_fields_sanitized(self):
        event = Event(
            time_s=0.0,
            kind="mcs_switch",
            fields={
                "snr_db": float("nan"),
                "up": float("inf"),
                "down": float("-inf"),
            },
        )
        payload = event_to_jsonable(event)
        assert payload["snr_db"] is None
        assert payload["up"] == "Infinity"
        assert payload["down"] == "-Infinity"
        json.dumps(payload, allow_nan=False)


class TestJsonlRoundTrip:
    def test_write_then_read_is_identity(self):
        buffer = io.StringIO()
        count = write_events_jsonl(_events(), buffer)
        assert count == 4
        buffer.seek(0)
        parsed = read_events_jsonl(buffer)
        assert list(parsed) == list(_events())

    def test_blank_lines_skipped(self):
        buffer = io.StringIO()
        write_events_jsonl(_events(), buffer)
        buffer.write("\n\n")
        buffer.seek(0)
        assert len(read_events_jsonl(buffer)) == 4

    def test_bad_line_reports_line_number(self):
        stream = io.StringIO(
            '{"time_s": 0.0, "kind": "run_start", "run": "a"}\nnot json\n'
        )
        with pytest.raises(ValueError, match="line 2"):
            read_events_jsonl(stream)


class TestTimeline:
    def test_empty(self):
        assert render_timeline(EventLog()) == "(empty trace)"

    def test_groups_by_run_with_counts(self):
        text = render_timeline(_events())
        assert "== run a#0 — 4 events ==" in text
        assert "probe_tx" in text
        assert "probe=ssb count=33" in text
        assert "run_start=1" in text

    def test_kind_filter(self):
        text = render_timeline(_events(), kind="probe_tx")
        assert "1 events" in text
        assert "blockage_onset" not in text

    def test_limit_elides(self):
        text = render_timeline(_events(), limit=2)
        assert "... 2 more" in text
