"""Unit tests for the mergeable telemetry digest."""

import pickle

import pytest

from repro.telemetry import TelemetryRecorder, TelemetrySummary


def _summary(**kwargs):
    recorder = TelemetryRecorder()
    recorder.begin_run("X", time_s=0.0)
    recorder.emit("probe_tx", 0.1, count=1)
    recorder.counter("probes.ssb").inc(4)
    recorder.gauge("margin").set(kwargs.get("margin", 1.0))
    recorder.histogram("step_s").observe(kwargs.get("step", 0.5))
    recorder.end_run(1.0)
    return recorder.summary()


class TestFromRecorder:
    def test_counts_events_and_runs(self):
        summary = _summary()
        assert summary.num_events == 3  # run_start, probe_tx, run_end
        assert summary.num_runs == 1
        assert summary.count("probe_tx") == 1
        assert summary.counters["telemetry.runs"] == 1

    def test_picklable(self):
        summary = _summary()
        assert pickle.loads(pickle.dumps(summary)) == summary


class TestMerge:
    def test_merge_sums_counts_and_counters(self):
        merged = TelemetrySummary.merge([_summary(), _summary(), None])
        assert merged.num_events == 6
        assert merged.num_runs == 2
        assert merged.count("probe_tx") == 2
        assert merged.counters["probes.ssb"] == 8

    def test_merge_histogram_moments(self):
        merged = TelemetrySummary.merge(
            [_summary(step=1.0), _summary(step=3.0)]
        )
        stats = merged.histograms["step_s"]
        assert stats["count"] == 2
        assert stats["min"] == 1.0
        assert stats["max"] == 3.0
        assert stats["mean"] == pytest.approx(2.0)

    def test_merge_gauges_last_wins(self):
        merged = TelemetrySummary.merge(
            [_summary(margin=1.0), _summary(margin=-2.0)]
        )
        assert merged.gauges["margin"] == -2.0

    def test_merge_empty_is_empty(self):
        merged = TelemetrySummary.merge([None, None])
        assert merged == TelemetrySummary()
        assert merged.num_events == 0


class TestDescribe:
    def test_empty(self):
        assert "no events" in TelemetrySummary().describe()

    def test_populated(self):
        text = _summary().describe()
        assert "3 events" in text
        assert "probe_tx=1" in text
        assert "step_s" in text

    def test_top_kinds_ranked(self):
        summary = _summary()
        ranked = summary.top_kinds(limit=2)
        assert len(ranked) == 2
        assert ranked[0][1] >= ranked[1][1]

    def test_fast_path_lines(self):
        recorder = TelemetryRecorder()
        recorder.begin_run("X", time_s=0.0)
        recorder.counter("perf.cache.multibeam.weights.hits").inc(30)
        recorder.counter("perf.cache.multibeam.weights.misses").inc(10)
        recorder.counter("sim.samples").inc(200)
        recorder.counter("sim.fast_samples").inc(200)
        recorder.gauge("sim.last_batch_samples").set(50)
        recorder.end_run(1.0)
        text = recorder.summary().describe()
        assert (
            "cache multibeam.weights: hits=30 misses=10 hit_rate=75.0%"
            in text
        )
        assert "batched samples: 200 (100.0% of 200)" in text
        assert "last batch size: 50" in text

    def test_no_fast_path_lines_without_counters(self):
        text = _summary().describe()
        assert "cache " not in text
        assert "batched samples" not in text
