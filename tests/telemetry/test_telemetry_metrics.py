"""Unit tests for counters, gauges, histograms, and timers."""

import pytest

from repro.telemetry import Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_increments(self):
        counter = Counter("x")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match=">= 0"):
            Counter("x").inc(-1)


class TestGauge:
    def test_last_value_wins(self):
        gauge = Gauge("margin")
        gauge.set(1.0)
        gauge.set(-2.5)
        assert gauge.value == -2.5


class TestHistogram:
    def test_streaming_moments(self):
        histogram = Histogram("h")
        for value in (1.0, 3.0, 2.0):
            histogram.observe(value)
        snap = histogram.snapshot()
        assert snap["count"] == 3
        assert snap["total"] == 6.0
        assert snap["min"] == 1.0
        assert snap["max"] == 3.0
        assert snap["mean"] == pytest.approx(2.0)

    def test_empty_snapshot_is_zeroed(self):
        snap = Histogram("h").snapshot()
        assert snap == {
            "count": 0, "total": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0
        }
        assert Histogram("h").mean == 0.0


class TestRegistry:
    def test_metrics_created_on_first_use(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        registry.counter("a").inc()
        registry.gauge("g").set(7.0)
        registry.histogram("h").observe(1.0)
        snap = registry.snapshot()
        assert snap["counters"] == {"a": 2.0}
        assert snap["gauges"] == {"g": 7.0}
        assert snap["histograms"]["h"]["count"] == 1

    def test_timer_feeds_histogram(self):
        registry = MetricsRegistry()
        with registry.timer("step_s"):
            pass
        with registry.timer("step_s"):
            pass
        snap = registry.snapshot()["histograms"]["step_s"]
        assert snap["count"] == 2
        assert snap["total"] >= 0.0
        assert snap["min"] <= snap["max"]
