"""Unit tests for the event model and the event log."""

import pickle

import pytest

from repro.telemetry import Event, EventKind, EventLog, KNOWN_KINDS


class TestEventKind:
    def test_taxonomy_is_stable(self):
        assert EventKind.PROBE_TX == "probe_tx"
        assert EventKind.BLOCKAGE_ONSET == "blockage_onset"
        assert EventKind.BLOCKAGE_CLEARED == "blockage_cleared"
        assert EventKind.BEAM_RETRAIN == "beam_retrain"
        assert EventKind.TRACKING_UPDATE == "tracking_update"
        assert EventKind.MCS_SWITCH == "mcs_switch"
        assert EventKind.PER_BEAM_POWER_ESTIMATE == "per_beam_power_estimate"
        assert EventKind.RUN_START == "run_start"
        assert EventKind.RUN_END == "run_end"

    def test_all_lists_every_kind(self):
        kinds = EventKind.all()
        assert set(kinds) == set(KNOWN_KINDS)
        assert len(kinds) == 24
        assert len(set(kinds)) == len(kinds)


class TestEvent:
    def test_round_trips_through_dict(self):
        event = Event(
            time_s=0.005,
            kind=EventKind.PROBE_TX,
            run="fig16#0",
            fields={"probe": "ssb", "count": 3},
        )
        assert Event.from_dict(event.to_dict()) == event

    def test_dict_form_is_flat(self):
        event = Event(time_s=1.0, kind="probe_tx", fields={"count": 2})
        payload = event.to_dict()
        assert payload == {
            "time_s": 1.0, "kind": "probe_tx", "run": "", "count": 2
        }

    def test_empty_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            Event(time_s=0.0, kind="")

    def test_picklable(self):
        event = Event(time_s=0.1, kind="mcs_switch", fields={"mcs": 7})
        assert pickle.loads(pickle.dumps(event)) == event


class TestEventLog:
    def _log(self):
        log = EventLog()
        log.append(Event(time_s=0.0, kind="run_start", run="a#0"))
        log.append(Event(time_s=0.1, kind="probe_tx", run="a#0"))
        log.append(Event(time_s=0.0, kind="run_start", run="b#1"))
        log.append(Event(time_s=0.2, kind="probe_tx", run="b#1"))
        log.append(Event(time_s=0.3, kind="run_end", run="a#0"))
        return log

    def test_len_iter_getitem(self):
        log = self._log()
        assert len(log) == 5
        assert list(log)[0].kind == "run_start"
        assert log[1].kind == "probe_tx"
        assert [e.kind for e in log[1:3]] == ["probe_tx", "run_start"]

    def test_filter_by_kind_and_run(self):
        log = self._log()
        assert len(log.filter(kind="probe_tx")) == 2
        assert len(log.filter(run="a#0")) == 3
        assert len(log.filter(kind="probe_tx", run="b#1")) == 1

    def test_kinds_counts_in_first_seen_order(self):
        assert self._log().kinds() == {
            "run_start": 2, "probe_tx": 2, "run_end": 1
        }

    def test_runs_and_by_run(self):
        log = self._log()
        assert log.runs() == ("a#0", "b#1")
        groups = log.by_run()
        assert len(groups["a#0"]) == 3
        assert len(groups["b#1"]) == 2
