"""Unit tests for the recorder and the current-recorder slot."""

from repro.telemetry import (
    NULL_RECORDER,
    Event,
    TelemetryRecorder,
    get_recorder,
    set_recorder,
    use_recorder,
)


class TestNullRecorder:
    def test_disabled_and_inert(self):
        assert NULL_RECORDER.enabled is False
        NULL_RECORDER.emit("probe_tx", 0.0, count=1)
        assert NULL_RECORDER.begin_run("x") == ""
        NULL_RECORDER.end_run(1.0)
        NULL_RECORDER.counter("c").inc()
        NULL_RECORDER.gauge("g").set(1.0)
        NULL_RECORDER.histogram("h").observe(1.0)
        with NULL_RECORDER.timer("t"):
            pass
        # Nothing above raised and nothing was stored anywhere.

    def test_is_the_default(self):
        assert get_recorder() is NULL_RECORDER


class TestCurrentSlot:
    def test_use_recorder_scopes_and_restores(self):
        recorder = TelemetryRecorder()
        assert get_recorder() is NULL_RECORDER
        with use_recorder(recorder) as active:
            assert active is recorder
            assert get_recorder() is recorder
        assert get_recorder() is NULL_RECORDER

    def test_use_recorder_restores_on_exception(self):
        try:
            with use_recorder(TelemetryRecorder()):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert get_recorder() is NULL_RECORDER

    def test_set_recorder_none_installs_null(self):
        previous = set_recorder(None)
        try:
            assert get_recorder() is NULL_RECORDER
        finally:
            set_recorder(previous)


class TestTelemetryRecorder:
    def test_emit_records_current_run(self):
        recorder = TelemetryRecorder()
        recorder.emit("probe_tx", 0.25, count=2)
        event = recorder.events[0]
        assert event == Event(
            time_s=0.25, kind="probe_tx", run="", fields={"count": 2}
        )

    def test_run_scoping_and_sequence(self):
        recorder = TelemetryRecorder()
        first = recorder.begin_run("Oracle", time_s=0.0)
        assert first == "Oracle#0"
        recorder.emit("mcs_switch", 0.1, mcs=5)
        recorder.end_run(1.0, samples=10)
        second = recorder.begin_run("Oracle", time_s=0.0)
        assert second == "Oracle#1"
        runs = [event.run for event in recorder.events]
        assert runs == ["Oracle#0", "Oracle#0", "Oracle#0", "Oracle#1"]
        assert recorder.events[0].kind == "run_start"
        assert recorder.events[2].kind == "run_end"

    def test_scope_prefixes_run_labels(self):
        recorder = TelemetryRecorder(scope="fig16/seed3")
        label = recorder.begin_run("MultiBeamManager")
        assert label == "fig16/seed3:MultiBeamManager#0"
        recorder.end_run(1.0)
        assert recorder.current_run == "fig16/seed3"

    def test_absorb_folds_in_foreign_events(self):
        recorder = TelemetryRecorder()
        foreign = (
            Event(time_s=0.0, kind="run_start", run="w/seed0:X#0"),
            Event(time_s=1.0, kind="run_end", run="w/seed0:X#0"),
        )
        recorder.absorb(foreign)
        assert len(recorder.events) == 2
        assert recorder.events[1].run == "w/seed0:X#0"

    def test_absorb_metrics_sums_counters_and_sets_gauges(self):
        def worker_summary(hits, batch):
            worker = TelemetryRecorder()
            worker.counter("perf.cache.steering.single_beam.hits").inc(hits)
            worker.gauge("sim.last_batch_samples").set(batch)
            return worker.summary()

        recorder = TelemetryRecorder()
        recorder.absorb_metrics(worker_summary(hits=5, batch=10))
        recorder.absorb_metrics(worker_summary(hits=3, batch=40))
        snapshot = recorder.metrics.snapshot()
        assert (
            snapshot["counters"]["perf.cache.steering.single_beam.hits"] == 8
        )
        assert snapshot["gauges"]["sim.last_batch_samples"] == 40

    def test_mark_and_since_summary(self):
        recorder = TelemetryRecorder()
        recorder.emit("probe_tx", 0.0)
        mark = recorder.mark()
        recorder.emit("mcs_switch", 0.1)
        summary = recorder.summary(since=mark)
        assert summary.num_events == 1
        assert summary.count("mcs_switch") == 1
        assert summary.count("probe_tx") == 0

    def test_summary_includes_metrics(self):
        recorder = TelemetryRecorder()
        recorder.counter("probes.ssb").inc(33)
        recorder.gauge("olla.margin_db").set(1.5)
        with recorder.timer("sim.establish_s"):
            pass
        summary = recorder.summary()
        assert summary.counters["probes.ssb"] == 33
        assert summary.gauges["olla.margin_db"] == 1.5
        assert summary.histograms["sim.establish_s"]["count"] == 1
