"""End-to-end telemetry: instrumented simulator runs and the CLI.

Covers the acceptance contract: a traced run emits the taxonomy's load-
bearing kinds with monotone sim-time per run, tracing never perturbs the
simulated numbers, and the JSONL trace survives a round trip into the
timeline renderer.
"""

import io

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arrays import UniformLinearArray, uniform_codebook
from repro.baselines import ReactiveSingleBeam
from repro.beamtraining import ExhaustiveTrainer
from repro.core.maintenance import MultiBeamManager
from repro.phy.ofdm import ChannelSounder, OfdmConfig
from repro.sim.link import LinkSimulator
from repro.telemetry import (
    EventKind,
    TelemetryRecorder,
    read_events_jsonl,
    render_timeline,
    use_recorder,
    write_events_jsonl,
)

ARRAY = UniformLinearArray(num_elements=8)


def make_sim(seed=0, duration=0.1, manager_cls=MultiBeamManager):
    from repro.sim.scenarios import indoor_two_path_scenario

    sounder = ChannelSounder(
        config=OfdmConfig(bandwidth_hz=400e6, num_subcarriers=64),
        rng=seed,
    )
    trainer = ExhaustiveTrainer(
        codebook=uniform_codebook(ARRAY, 17), sounder=sounder
    )
    if manager_cls is MultiBeamManager:
        manager = MultiBeamManager(
            array=ARRAY, sounder=sounder, trainer=trainer, num_beams=2
        )
    else:
        manager = manager_cls(array=ARRAY, sounder=sounder, trainer=trainer)
    scenario = indoor_two_path_scenario(ARRAY)
    return LinkSimulator(
        scenario=scenario, manager=manager, duration_s=duration
    )


class TestInstrumentedRun:
    def test_expected_kinds_present(self):
        recorder = TelemetryRecorder()
        with use_recorder(recorder):
            make_sim().run()
        kinds = recorder.events.kinds()
        assert kinds[EventKind.RUN_START] == 1
        assert kinds[EventKind.RUN_END] == 1
        assert kinds[EventKind.PROBE_TX] > 0
        assert kinds[EventKind.BEAM_RETRAIN] >= 1
        assert kinds[EventKind.PER_BEAM_POWER_ESTIMATE] > 0
        assert kinds[EventKind.MCS_SWITCH] >= 1

    def test_run_label_names_the_manager(self):
        recorder = TelemetryRecorder()
        with use_recorder(recorder):
            make_sim().run()
            make_sim(manager_cls=ReactiveSingleBeam).run()
        assert recorder.events.runs() == (
            "MultiBeamManager#0", "ReactiveSingleBeam#1"
        )

    def test_tracing_does_not_perturb_results(self):
        plain = make_sim(seed=1).run()
        recorder = TelemetryRecorder()
        with use_recorder(recorder):
            traced = make_sim(seed=1).run()
        np.testing.assert_array_equal(plain.snr_db, traced.snr_db)
        assert plain.actions == traced.actions
        assert plain.training_rounds == traced.training_rounds
        assert plain.probe_airtime_s == traced.probe_airtime_s

    def test_untraced_run_records_nothing(self):
        recorder = TelemetryRecorder()
        make_sim().run()  # recorder never installed
        assert len(recorder.events) == 0

    def test_timers_and_counters_populated(self):
        recorder = TelemetryRecorder()
        with use_recorder(recorder):
            make_sim().run()
        snapshot = recorder.metrics.snapshot()
        assert snapshot["counters"]["sim.samples"] == 100
        assert snapshot["histograms"]["sim.establish_s"]["count"] == 1
        assert snapshot["histograms"]["sim.maintenance_step_s"]["count"] > 0


class TestEventOrdering:
    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**16))
    def test_sim_time_monotone_within_each_run(self, seed):
        recorder = TelemetryRecorder()
        with use_recorder(recorder):
            make_sim(seed=seed, duration=0.05).run()
        for run, log in recorder.events.by_run().items():
            times = [event.time_s for event in log]
            assert times == sorted(times), f"run {run} out of order"
            assert log[0].kind == EventKind.RUN_START
            assert log[-1].kind == EventKind.RUN_END


class TestTraceRoundTrip:
    def test_simulated_trace_survives_jsonl_and_renders(self):
        recorder = TelemetryRecorder()
        with use_recorder(recorder):
            make_sim().run()
        buffer = io.StringIO()
        count = write_events_jsonl(recorder.events, buffer)
        assert count == len(recorder.events)
        buffer.seek(0)
        parsed = read_events_jsonl(buffer)
        assert len(parsed) == count
        assert parsed.kinds() == recorder.events.kinds()
        text = render_timeline(parsed, limit=5)
        assert "MultiBeamManager#0" in text
        assert "probe_tx" in text


class TestExperimentAttach:
    def test_result_carries_summary_when_requested(self):
        from repro.experiments.registry import (
            ExperimentConfig,
            get_experiment,
        )

        experiment = get_experiment("fig16")
        result = experiment.run(ExperimentConfig(telemetry=True))
        assert result.telemetry is not None
        assert result.telemetry.count(EventKind.BLOCKAGE_ONSET) > 0
        assert result.telemetry.count(EventKind.PROBE_TX) > 0

    def test_result_skips_summary_by_default(self):
        from repro.experiments.registry import get_experiment

        result = get_experiment("fig04").run()
        assert result.telemetry is None


class TestCli:
    def test_run_trace_then_render(self, tmp_path):
        from repro.cli import command_run, command_trace

        trace_path = tmp_path / "t.jsonl"
        out = io.StringIO()
        assert command_run("fig16", trace_path=str(trace_path), out=out) == 0
        assert "telemetry events" in out.getvalue()
        assert trace_path.exists()

        with open(trace_path, encoding="utf-8") as stream:
            events = read_events_jsonl(stream)
        kinds = events.kinds()
        for kind in (
            EventKind.PROBE_TX,
            EventKind.BLOCKAGE_ONSET,
            EventKind.BEAM_RETRAIN,
            EventKind.MCS_SWITCH,
        ):
            assert kinds[kind] > 0, kind

        # Worker metric totals fold back into the trace as one synthetic
        # event, so `repro trace` shows the fast paths were exercised.
        assert kinds["perf_counters"] == 1
        perf_fields = events.filter(kind="perf_counters")[0].fields
        assert perf_fields["sim.fast_samples"] == perf_fields["sim.samples"]
        assert any(
            key.startswith("perf.cache.") and key.endswith(".hits")
            for key in perf_fields
        )

        rendered = io.StringIO()
        assert command_trace(str(trace_path), out=rendered) == 0
        assert "== run" in rendered.getvalue()
        assert "perf_counters" in rendered.getvalue()

        filtered = io.StringIO()
        assert command_trace(
            str(trace_path), kind="blockage_onset", limit=2, out=filtered
        ) == 0
        assert "blockage_onset" in filtered.getvalue()

    def test_trace_missing_file_errors(self):
        from repro.cli import command_trace

        out = io.StringIO()
        assert command_trace("/nonexistent/x.jsonl", out=out) == 2
        assert "error" in out.getvalue()

    def test_parser_accepts_trace_flags(self):
        from repro.cli import build_parser

        parser = build_parser()
        run_args = parser.parse_args(
            ["run", "fig16", "--trace", "out.jsonl"]
        )
        assert run_args.trace_path == "out.jsonl"
        trace_args = parser.parse_args(
            ["trace", "out.jsonl", "--kind", "probe_tx", "--limit", "3"]
        )
        assert trace_args.trace_file == "out.jsonl"
        assert trace_args.kind == "probe_tx"
        assert trace_args.limit == 3
