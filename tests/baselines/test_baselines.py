"""Tests for the comparison baselines."""

import numpy as np
import pytest

from repro.arrays import UniformLinearArray, uniform_codebook
from repro.baselines import (
    BeamSpySingleBeam,
    OracleBeam,
    ReactiveSingleBeam,
    WideBeam,
)
from repro.beamtraining import ExhaustiveTrainer
from repro.channel.blockage import BlockageEvent, BlockageSchedule
from repro.phy.mcs import OUTAGE_SNR_DB
from repro.phy.ofdm import ChannelSounder, OfdmConfig
from repro.sim.scenarios import SyntheticScenario, two_path_channel


@pytest.fixture
def array():
    return UniformLinearArray(num_elements=8)


def make_sounder(seed=0):
    return ChannelSounder(
        config=OfdmConfig(bandwidth_hz=400e6, num_subcarriers=64), rng=seed
    )


def make_trainer(array, sounder):
    return ExhaustiveTrainer(
        codebook=uniform_codebook(array, 33), sounder=sounder
    )


def blocked_scenario(array, depth_db=30.0):
    base = two_path_channel(array, delta_db=-5.0)
    schedule = BlockageSchedule(
        events=(
            BlockageEvent(path_index=0, start_s=0.05, duration_s=0.3,
                          depth_db=depth_db),
        )
    )
    return SyntheticScenario(base_channel=base, blockage=schedule)


class TestReactiveSingleBeam:
    def test_establish_points_at_los(self, array):
        sounder = make_sounder()
        manager = ReactiveSingleBeam(
            array=array, sounder=sounder, trainer=make_trainer(array, sounder)
        )
        channel = two_path_channel(array)
        angle = manager.establish(channel)
        assert angle == pytest.approx(0.0, abs=np.deg2rad(4.0))
        assert np.linalg.norm(manager.current_weights()) == pytest.approx(1.0)

    def test_waits_reaction_delay_before_retraining(self, array):
        sounder = make_sounder()
        manager = ReactiveSingleBeam(
            array=array, sounder=sounder,
            trainer=make_trainer(array, sounder), reaction_delay_s=0.1,
        )
        scenario = blocked_scenario(array)
        manager.establish(scenario.channel_at(0.0))
        retrain_time = None
        for t in np.arange(0.005, 0.4, 0.005):
            report = manager.step(scenario.channel_at(float(t)), float(t))
            if report.action == "retrain":
                retrain_time = t
                break
        # Blockage starts at 0.05; retrain only after ~0.1 s of outage.
        assert retrain_time is not None
        assert retrain_time >= 0.15 - 1e-9

    def test_retrain_recovers_via_reflection(self, array):
        sounder = make_sounder()
        manager = ReactiveSingleBeam(
            array=array, sounder=sounder,
            trainer=make_trainer(array, sounder), reaction_delay_s=0.05,
        )
        scenario = blocked_scenario(array)
        manager.establish(scenario.channel_at(0.0))
        for t in np.arange(0.005, 0.3, 0.005):
            manager.step(scenario.channel_at(float(t)), float(t))
        # Mid-blockage: the retrained beam points at the reflection (30 deg).
        assert manager.beam_angle_rad == pytest.approx(
            np.deg2rad(30.0), abs=np.deg2rad(5.0)
        )

    def test_requires_establish(self, array):
        sounder = make_sounder()
        manager = ReactiveSingleBeam(
            array=array, sounder=sounder, trainer=make_trainer(array, sounder)
        )
        with pytest.raises(RuntimeError):
            manager.current_weights()


class TestBeamSpy:
    def test_profile_switch_without_retraining(self, array):
        sounder = make_sounder()
        manager = BeamSpySingleBeam(
            array=array, sounder=sounder,
            trainer=make_trainer(array, sounder), reaction_delay_s=0.01,
        )
        scenario = blocked_scenario(array)
        manager.establish(scenario.channel_at(0.0))
        actions = []
        for t in np.arange(0.005, 0.2, 0.005):
            report = manager.step(scenario.channel_at(float(t)), float(t))
            actions.append(report.action)
        assert "profile_switch" in actions
        assert manager.training_rounds == 1  # never did a full retrain

    def test_switch_target_is_reflection(self, array):
        sounder = make_sounder()
        manager = BeamSpySingleBeam(
            array=array, sounder=sounder,
            trainer=make_trainer(array, sounder), reaction_delay_s=0.01,
        )
        scenario = blocked_scenario(array)
        manager.establish(scenario.channel_at(0.0))
        for t in np.arange(0.005, 0.2, 0.005):
            manager.step(scenario.channel_at(float(t)), float(t))
        assert manager.beam_angle_rad == pytest.approx(
            np.deg2rad(30.0), abs=np.deg2rad(5.0)
        )

    def test_profile_recorded_at_training(self, array):
        sounder = make_sounder()
        manager = BeamSpySingleBeam(
            array=array, sounder=sounder, trainer=make_trainer(array, sounder)
        )
        manager.establish(two_path_channel(array))
        # At least the two physical paths (a weak sidelobe direction may
        # also qualify for the profile — that is how real BeamSpy works).
        assert len(manager.profile) >= 2
        top_two = sorted(
            np.rad2deg([a for a, _ in manager.profile[:2]])
        )
        assert top_two[0] == pytest.approx(0.0, abs=4.0)
        assert top_two[1] == pytest.approx(30.0, abs=4.0)


class TestWideBeam:
    def test_lower_peak_snr_than_full_aperture(self, array):
        sounder = make_sounder()
        wide = WideBeam(
            array=array, sounder=sounder,
            trainer=make_trainer(array, sounder), active_elements=3,
        )
        narrow = ReactiveSingleBeam(
            array=array, sounder=sounder, trainer=make_trainer(array, sounder)
        )
        channel = two_path_channel(array)
        wide.establish(channel)
        narrow.establish(channel)
        assert wide.link_snr_db(channel) < narrow.link_snr_db(channel)

    def test_more_tolerant_to_misalignment(self, array):
        sounder = make_sounder()
        wide = WideBeam(
            array=array, sounder=sounder,
            trainer=make_trainer(array, sounder), active_elements=3,
        )
        narrow = ReactiveSingleBeam(
            array=array, sounder=sounder, trainer=make_trainer(array, sounder)
        )
        channel = two_path_channel(array)
        wide.establish(channel)
        narrow.establish(channel)
        rotated = channel.rotated(np.deg2rad(8.0))
        wide_loss = wide.link_snr_db(channel) - wide.link_snr_db(rotated)
        narrow_loss = narrow.link_snr_db(channel) - narrow.link_snr_db(rotated)
        assert wide_loss < narrow_loss

    def test_unit_norm_weights(self, array):
        sounder = make_sounder()
        wide = WideBeam(
            array=array, sounder=sounder,
            trainer=make_trainer(array, sounder), active_elements=4,
        )
        wide.establish(two_path_channel(array))
        assert np.linalg.norm(wide.current_weights()) == pytest.approx(1.0)

    def test_validation(self, array):
        sounder = make_sounder()
        with pytest.raises(ValueError):
            WideBeam(
                array=array, sounder=sounder,
                trainer=make_trainer(array, sounder), active_elements=0,
            )


class TestOracle:
    def test_beats_every_single_beam(self, array):
        sounder = make_sounder()
        oracle = OracleBeam(array=array, sounder=sounder)
        channel = two_path_channel(array, delta_db=-3.0)
        oracle.establish(channel)
        from repro.arrays.steering import single_beam_weights

        for angle in np.linspace(-1.0, 1.0, 9):
            single = sounder.link_snr_db(
                channel, single_beam_weights(array, float(angle))
            )
            assert oracle.link_snr_db(channel) >= single - 1e-9

    def test_tracks_channel_changes_for_free(self, array):
        sounder = make_sounder()
        oracle = OracleBeam(array=array, sounder=sounder)
        channel = two_path_channel(array)
        oracle.establish(channel)
        rotated = channel.rotated(np.deg2rad(10.0))
        oracle.step(rotated, 0.1)
        # After the genie refresh the SNR is restored.
        assert oracle.link_snr_db(rotated) == pytest.approx(
            oracle.link_snr_db(rotated), abs=1e-9
        )
        assert oracle.budget.total_probes() == 0
