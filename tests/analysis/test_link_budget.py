"""Tests for the link-budget analysis module."""

import numpy as np
import pytest

from repro.analysis import LinkBudget, max_range_m
from repro.arrays import UniformLinearArray, single_beam_weights
from repro.phy.mcs import OUTAGE_SNR_DB
from repro.phy.ofdm import ChannelSounder, OfdmConfig
from repro.sim.scenarios import two_path_channel


class TestLinkBudget:
    def test_snr_monotone_in_distance(self):
        budget = LinkBudget()
        distances = np.array([5.0, 10.0, 20.0, 40.0, 80.0])
        snrs = [budget.snr_db(d) for d in distances]
        assert np.all(np.diff(snrs) < 0)

    def test_matches_simulated_scenario(self):
        # The budget arithmetic must agree with the simulator's SNR for
        # the canonical 7 m indoor single-beam link (within ~1 dB; the
        # simulator's beam response is not exactly the peak gain).
        budget = LinkBudget()
        array = UniformLinearArray(num_elements=8)
        channel = two_path_channel(array, delta_db=-30.0, distance_m=7.0)
        sounder = ChannelSounder(
            config=OfdmConfig(bandwidth_hz=400e6, num_subcarriers=64),
            rng=0,
        )
        simulated = sounder.link_snr_db(
            channel, single_beam_weights(array, 0.0)
        )
        assert budget.snr_db(7.0) == pytest.approx(simulated, abs=1.5)

    def test_60ghz_worse_than_28ghz(self):
        a = LinkBudget(carrier_frequency_hz=28e9)
        b = LinkBudget(carrier_frequency_hz=60e9)
        assert b.snr_db(50.0) < a.snr_db(50.0) - 5.0

    def test_margin_sign(self):
        budget = LinkBudget()
        assert budget.margin_db(7.0) > 0
        assert budget.margin_db(5000.0) < 0

    def test_mcs_degrades_with_distance(self):
        budget = LinkBudget()
        near = budget.mcs_at(7.0)
        far = budget.mcs_at(60.0)
        assert near is not None and far is not None
        assert near.index > far.index
        assert budget.spectral_efficiency_at(7.0) > budget.spectral_efficiency_at(60.0)

    def test_outage_far_away(self):
        budget = LinkBudget()
        assert budget.mcs_at(5000.0) is None
        assert budget.spectral_efficiency_at(5000.0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            LinkBudget(carrier_frequency_hz=0.0)
        with pytest.raises(ValueError):
            LinkBudget(bandwidth_hz=-1.0)


class TestMaxRange:
    def test_range_at_threshold(self):
        budget = LinkBudget()
        edge = max_range_m(budget)
        assert budget.snr_db(edge) == pytest.approx(OUTAGE_SNR_DB, abs=1e-6)

    def test_higher_target_shrinks_range(self):
        budget = LinkBudget()
        assert max_range_m(budget, target_snr_db=20.0) < max_range_m(
            budget, target_snr_db=OUTAGE_SNR_DB
        )

    def test_more_gain_extends_range(self):
        small = LinkBudget(tx_gain_db=9.0)
        large = LinkBudget(tx_gain_db=18.0)  # 64-element array
        assert max_range_m(large) > max_range_m(small)

    def test_unreachable_target_raises(self):
        budget = LinkBudget(transmit_power_dbm=-100.0)
        with pytest.raises(ValueError, match="even at 1 m"):
            max_range_m(budget)
