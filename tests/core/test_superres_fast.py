"""Differential tests: stacked super-resolution search vs the naive path.

The stacked fitter assembles every candidate dictionary into one tensor
and solves all ridge systems with a single batched ``np.linalg.solve``.
It must enumerate identical candidates in identical order, pick the same
anchor under the same tie-breaking, and agree numerically to the
documented 1e-9 tolerance.
"""

import numpy as np
import pytest

from repro.channel.wideband import (
    dirichlet_dictionary,
    sampled_cir,
    sinc_dictionary,
    stacked_dirichlet_dictionaries,
    stacked_sinc_dictionaries,
)
from repro.core.superres import SuperResolver, estimate_pulse_tof
from repro.perf import clear_caches

BANDWIDTH = 400e6


def make_resolver(fast: bool, **overrides) -> SuperResolver:
    kwargs = dict(
        bandwidth_hz=BANDWIDTH,
        relative_delays_s=np.array([0.0, 1.2e-9]),
        regularization=1e-4,
        fast=fast,
    )
    kwargs.update(overrides)
    return SuperResolver(**kwargs)


def noisy_cir(seed: int, alphas, relative=(0.0, 1.2e-9), base=25e-9):
    rng = np.random.default_rng(seed)
    delays = [base + r for r in relative]
    cir = sampled_cir(alphas, delays, BANDWIDTH, 64)
    noise = 1e-3 * (
        rng.standard_normal(cir.size) + 1j * rng.standard_normal(cir.size)
    )
    return cir + noise


class TestStackedDictionaries:
    def test_dirichlet_matches_per_delay_builds(self):
        delay_sets = np.array([[25e-9, 26.2e-9], [24.5e-9, 25.7e-9]])
        stacked = stacked_dirichlet_dictionaries(delay_sets, BANDWIDTH, 64)
        for c, delays in enumerate(delay_sets):
            naive = dirichlet_dictionary(delays, BANDWIDTH, 64, fast=False)
            np.testing.assert_allclose(stacked[c], naive, rtol=1e-12)

    def test_sinc_matches_per_delay_builds(self):
        delay_sets = np.array([[25e-9, 26.2e-9], [24.5e-9, 25.7e-9]])
        stacked = stacked_sinc_dictionaries(delay_sets, BANDWIDTH, 64)
        for c, delays in enumerate(delay_sets):
            naive = sinc_dictionary(delays, BANDWIDTH, 64)
            np.testing.assert_array_equal(stacked[c], naive)

    def test_shape_validation(self):
        with pytest.raises(ValueError, match="2-D"):
            stacked_dirichlet_dictionaries(
                np.array([25e-9, 26e-9]), BANDWIDTH, 64
            )

    def test_dictionary_cache_reuses_fast_builds(self):
        from repro.channel.wideband import _DICTIONARY_CACHE

        clear_caches("wideband.dictionary")
        delays = [25e-9, 26.2e-9]
        first = dirichlet_dictionary(delays, BANDWIDTH, 64)
        hits_before = _DICTIONARY_CACHE.hits
        second = dirichlet_dictionary(delays, BANDWIDTH, 64)
        assert second is first
        assert _DICTIONARY_CACHE.hits == hits_before + 1


class TestResolverFastMatchesNaive:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    @pytest.mark.parametrize("kernel", ["dirichlet", "sinc"])
    def test_single_estimate(self, seed, kernel):
        cir = noisy_cir(seed, [1.0 + 0j, 0.4 * np.exp(0.7j)])
        fast = make_resolver(True, kernel=kernel).estimate(cir)
        naive = make_resolver(False, kernel=kernel).estimate(cir)
        np.testing.assert_allclose(fast.alphas, naive.alphas, rtol=1e-9)
        np.testing.assert_array_equal(fast.delays_s, naive.delays_s)
        assert fast.residual == pytest.approx(naive.residual, rel=1e-9)

    def test_tracked_sequence_keeps_same_anchor(self):
        fast = make_resolver(True, initial_base_s=25e-9)
        naive = make_resolver(False, initial_base_s=25e-9)
        for seed in range(5):
            cir = noisy_cir(seed, [1.0 + 0j, 0.4 * np.exp(0.7j)])
            ours = fast.estimate(cir)
            theirs = naive.estimate(cir)
            np.testing.assert_allclose(ours.alphas, theirs.alphas, rtol=1e-9)
            assert fast._last_base_s == pytest.approx(
                naive._last_base_s, rel=0, abs=1e-15
            )

    def test_active_subset_matches(self):
        cir = noisy_cir(9, [1.0 + 0j, 0.0j])
        fast = make_resolver(True).estimate(cir, active_indices=[0])
        naive = make_resolver(False).estimate(cir, active_indices=[0])
        np.testing.assert_allclose(fast.alphas, naive.alphas, rtol=1e-9)
        assert fast.alphas[1] == 0 and naive.alphas[1] == 0


class TestEstimatePulseTof:
    @pytest.mark.parametrize("kernel", ["dirichlet", "sinc"])
    def test_fast_matches_naive(self, kernel):
        cir = sampled_cir([1.0 + 0.2j], [25.4e-9], BANDWIDTH, 64)
        fast = estimate_pulse_tof(
            cir, BANDWIDTH, kernel=kernel, fast=True
        )
        naive = estimate_pulse_tof(
            cir, BANDWIDTH, kernel=kernel, fast=False
        )
        assert fast == naive

    def test_keeps_first_of_tied_maxima(self):
        # A symmetric on-grid pulse scores its true delay best on both
        # paths; equality here pins the shared argmax/first-tie rule.
        cir = sampled_cir([1.0], [10 / BANDWIDTH], BANDWIDTH, 64)
        fast = estimate_pulse_tof(cir, BANDWIDTH, fast=True)
        naive = estimate_pulse_tof(cir, BANDWIDTH, fast=False)
        assert fast == naive == pytest.approx(10 / BANDWIDTH, abs=1e-12)
