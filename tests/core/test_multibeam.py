"""Tests for constructive multi-beam synthesis (Eq. 10, Appendix A)."""

import numpy as np
import pytest

from repro.arrays import UniformLinearArray, WeightQuantizer, single_beam_weights
from repro.core.multibeam import (
    MultiBeam,
    constructive_multibeam,
    equal_split_probe_weights,
    multibeam_from_channel,
    optimal_mrt_weights,
)
from repro.sim.scenarios import three_path_channel, two_path_channel


@pytest.fixture
def array():
    return UniformLinearArray(num_elements=8)


def narrowband_snr(channel, weights):
    """Received power at band center through given weights."""
    response = np.sum(channel.beamformed_path_gains(np.asarray(weights)))
    return abs(response) ** 2


class TestConstructiveMultibeam:
    def test_unit_norm(self, array):
        w = constructive_multibeam(array, [0.0, 0.5], [1.0, 0.5j])
        assert np.linalg.norm(w) == pytest.approx(1.0)

    def test_single_beam_degenerate_case(self, array):
        w = constructive_multibeam(array, [0.3], [1.0])
        assert w == pytest.approx(single_beam_weights(array, 0.3))

    def test_matches_mrt_for_two_path_channel(self, array):
        channel = two_path_channel(array, delta_db=-3.0, sigma_rad=0.8)
        genie = multibeam_from_channel(channel, 2)
        w_multibeam = genie.weights().vector
        w_mrt = optimal_mrt_weights(channel)
        # Equal up to a global phase: |<a, b>| == 1.
        overlap = abs(np.vdot(w_multibeam, w_mrt))
        assert overlap == pytest.approx(1.0, abs=5e-3)

    def test_snr_gain_follows_one_plus_delta_squared(self, array):
        # Paper Eq. 9: SNR_multi / SNR_single = 1 + delta^2.
        for delta_db in (-3.0, -6.0, -10.0):
            channel = two_path_channel(array, delta_db=delta_db, sigma_rad=1.3)
            single = narrowband_snr(channel, single_beam_weights(array, 0.0))
            multi = narrowband_snr(
                channel, multibeam_from_channel(channel, 2).weights().vector
            )
            delta_sq = 10 ** (delta_db / 10)
            assert multi / single == pytest.approx(1 + delta_sq, rel=0.05)

    def test_equal_paths_give_3db(self, array):
        channel = two_path_channel(array, delta_db=0.0, sigma_rad=0.5)
        single = narrowband_snr(channel, single_beam_weights(array, 0.0))
        multi = narrowband_snr(
            channel, multibeam_from_channel(channel, 2).weights().vector
        )
        assert 10 * np.log10(multi / single) == pytest.approx(3.0, abs=0.3)

    def test_three_beam_beats_two_beam(self, array):
        channel = three_path_channel(array)
        two = narrowband_snr(
            channel, multibeam_from_channel(channel, 2).weights().vector
        )
        three = narrowband_snr(
            channel, multibeam_from_channel(channel, 3).weights().vector
        )
        assert three > two

    def test_k_beams_on_k_paths_equals_mrt(self, array):
        # Appendix A Eq. 30: B = L beams reach the optimum.
        channel = three_path_channel(array)
        three = narrowband_snr(
            channel, multibeam_from_channel(channel, 3).weights().vector
        )
        mrt = narrowband_snr(channel, optimal_mrt_weights(channel))
        assert three == pytest.approx(mrt, rel=2e-3)

    def test_validation(self, array):
        with pytest.raises(ValueError):
            constructive_multibeam(array, [], [])
        with pytest.raises(ValueError):
            constructive_multibeam(array, [0.0], [1.0, 2.0])


class TestMultiBeamDataclass:
    def test_weights_quantized(self, array):
        multibeam = MultiBeam(
            array=array, angles_rad=(0.0, 0.5), relative_gains=(1.0, 0.4j)
        )
        quantizer = WeightQuantizer(phase_bits=6, amplitude_range_db=27.0)
        weights = multibeam.weights(quantizer)
        assert np.linalg.norm(weights.vector) == pytest.approx(1.0)

    def test_with_angles(self, array):
        multibeam = MultiBeam(
            array=array, angles_rad=(0.0, 0.5), relative_gains=(1.0, 0.4)
        )
        updated = multibeam.with_angles((0.01, 0.52))
        assert updated.angles_rad == (0.01, 0.52)
        assert updated.relative_gains == multibeam.relative_gains

    def test_without_beam_renormalizes(self, array):
        multibeam = MultiBeam(
            array=array,
            angles_rad=(0.0, 0.5, -0.4),
            relative_gains=(1.0, 0.5, 0.25),
        )
        dropped = multibeam.without_beam(0)
        assert dropped.num_beams == 2
        assert dropped.relative_gains[0] == pytest.approx(1.0)

    def test_without_only_beam_rejected(self, array):
        multibeam = MultiBeam(
            array=array, angles_rad=(0.0,), relative_gains=(1.0,)
        )
        with pytest.raises(ValueError):
            multibeam.without_beam(0)

    def test_validation(self, array):
        with pytest.raises(ValueError):
            MultiBeam(array=array, angles_rad=(), relative_gains=())
        with pytest.raises(ValueError):
            MultiBeam(array=array, angles_rad=(0.0,), relative_gains=(0.0,))


class TestEqualSplitProbeWeights:
    def test_unit_norm_and_norm_factor(self, array):
        weights, norm = equal_split_probe_weights(
            array, (0.0, 0.5), (0.0, np.pi / 2)
        )
        assert np.linalg.norm(weights) == pytest.approx(1.0)
        # Well-separated beams: norm ~ sqrt(2).
        assert norm == pytest.approx(np.sqrt(2.0), rel=0.15)

    def test_phase_applied_to_second_beam(self, array):
        w0, _ = equal_split_probe_weights(array, (0.0, 0.5), (0.0, 0.0))
        w1, _ = equal_split_probe_weights(array, (0.0, 0.5), (0.0, np.pi))
        assert not np.allclose(w0, w1)

    def test_validation(self, array):
        with pytest.raises(ValueError):
            equal_split_probe_weights(array, (0.0, 0.5), (0.0,))


class TestOracle:
    def test_mrt_is_best_of_all(self, array):
        channel = three_path_channel(array)
        mrt = narrowband_snr(channel, optimal_mrt_weights(channel))
        for angle in np.linspace(-1.0, 1.0, 21):
            assert mrt >= narrowband_snr(
                channel, single_beam_weights(array, angle)
            ) - 1e-12

    def test_genie_multibeam_requires_beams(self, array):
        channel = two_path_channel(array)
        with pytest.raises(ValueError):
            multibeam_from_channel(channel, 0)
