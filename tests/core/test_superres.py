"""Tests for super-resolution per-beam gain estimation (Eq. 23)."""

import numpy as np
import pytest

from repro.channel.wideband import sampled_cir
from repro.core.superres import (
    SuperResolver,
    ridge_solve,
    superres_gains,
)


BANDWIDTH = 400e6


class TestRidgeSolve:
    def test_exact_recovery_without_regularization(self):
        s = np.array([[1.0, 0.0], [0.0, 1.0], [1.0, 1.0]])
        alpha_true = np.array([1.0 + 1j, 2.0 - 0.5j])
        y = s @ alpha_true
        alpha = ridge_solve(s, y, regularization=0.0)
        assert alpha == pytest.approx(alpha_true)

    def test_regularization_shrinks(self):
        s = np.eye(2)
        y = np.array([1.0, 1.0], dtype=complex)
        alpha = ridge_solve(s, y, regularization=1.0)
        assert np.all(np.abs(alpha) < 1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            ridge_solve(np.eye(2), np.ones(3), 0.1)
        with pytest.raises(ValueError):
            ridge_solve(np.eye(2), np.ones(2), -0.1)


class TestSuperresGains:
    def test_on_grid_two_paths(self):
        delays = [10 / BANDWIDTH, 14 / BANDWIDTH]
        alphas_true = [1.0 + 0j, 0.4j]
        cir = sampled_cir(alphas_true, delays, BANDWIDTH, 64)
        alphas = superres_gains(cir, delays, BANDWIDTH, regularization=1e-6)
        assert alphas == pytest.approx(alphas_true, abs=1e-6)

    def test_below_resolution_separation(self):
        # Paths 1 ns apart — well below the 2.5 ns resolution at 400 MHz.
        delays = [25e-9, 26e-9]
        alphas_true = [1.0, 0.5 * np.exp(1j * 1.0)]
        cir = sampled_cir(alphas_true, delays, BANDWIDTH, 64)
        alphas = superres_gains(cir, delays, BANDWIDTH, regularization=1e-6)
        assert alphas == pytest.approx(alphas_true, rel=1e-3)


class TestSuperResolver:
    def make_cir(self, alphas, base_delay=25e-9, relative=(0.0, 1.2e-9)):
        delays = [base_delay + r for r in relative]
        return sampled_cir(alphas, delays, BANDWIDTH, 64)

    def test_recovers_per_beam_power(self):
        alphas_true = [1.0, 0.5 * np.exp(0.7j)]
        resolver = SuperResolver(
            bandwidth_hz=BANDWIDTH,
            relative_delays_s=np.array([0.0, 1.2e-9]),
            regularization=1e-4,
            kernel="sinc",
        )
        result = resolver.estimate(self.make_cir(alphas_true))
        powers = result.per_beam_power()
        assert powers[0] == pytest.approx(1.0, rel=0.05)
        assert powers[1] == pytest.approx(0.25, rel=0.1)

    def test_tracks_anchor_drift(self):
        # Absolute ToF moved (timing drift) but relative ToF held.
        alphas_true = [1.0, 0.5]
        resolver = SuperResolver(
            bandwidth_hz=BANDWIDTH,
            relative_delays_s=np.array([0.0, 1.2e-9]),
            kernel="sinc",
        )
        for base in (20e-9, 30e-9, 40e-9):
            result = resolver.estimate(
                self.make_cir(alphas_true, base_delay=base)
            )
            assert result.per_beam_power()[0] == pytest.approx(1.0, rel=0.15)

    def test_jitter_search_absorbs_small_tof_error(self):
        # True relative ToF differs from the trained value by 0.4 ns.
        alphas_true = [1.0, 0.6]
        cir = self.make_cir(alphas_true, relative=(0.0, 1.6e-9))
        resolver = SuperResolver(
            bandwidth_hz=BANDWIDTH,
            relative_delays_s=np.array([0.0, 1.2e-9]),
            jitter_candidates=9,
            jitter_span_s=1e-9,
            kernel="sinc",
        )
        result = resolver.estimate(cir)
        assert result.per_beam_power()[0] == pytest.approx(1.0, rel=0.2)
        assert result.per_beam_power()[1] == pytest.approx(0.36, rel=0.35)

    def test_active_subset_zeroes_inactive(self):
        alphas_true = [0.0, 0.8]  # beam 0 dropped, beam 1 transmitting
        cir = self.make_cir(alphas_true)
        resolver = SuperResolver(
            bandwidth_hz=BANDWIDTH,
            relative_delays_s=np.array([0.0, 1.2e-9]),
            kernel="sinc",
        )
        result = resolver.estimate(cir, active_indices=[1])
        assert result.alphas[0] == 0.0
        assert abs(result.alphas[1]) == pytest.approx(0.8, rel=0.05)

    def test_power_db_floor(self):
        resolver = SuperResolver(
            bandwidth_hz=BANDWIDTH, relative_delays_s=np.array([0.0, 1.2e-9]),
            kernel="sinc",
        )
        result = resolver.estimate(self.make_cir([1.0, 0.0]))
        db = result.per_beam_power_db(floor_db=-100.0)
        assert db[1] >= -100.0

    def test_validation(self):
        with pytest.raises(ValueError):
            SuperResolver(bandwidth_hz=0.0, relative_delays_s=np.array([0.0]))
        with pytest.raises(ValueError):
            SuperResolver(
                bandwidth_hz=BANDWIDTH, relative_delays_s=np.array([1e-9])
            )
        resolver = SuperResolver(
            bandwidth_hz=BANDWIDTH, relative_delays_s=np.array([0.0, 1e-9])
        )
        with pytest.raises(ValueError):
            resolver.estimate(np.ones(1))
        with pytest.raises(ValueError):
            resolver.estimate(np.ones(16), active_indices=[])
        with pytest.raises(IndexError):
            resolver.estimate(np.ones(16), active_indices=[5])

    def test_resolution_property(self):
        resolver = SuperResolver(
            bandwidth_hz=BANDWIDTH, relative_delays_s=np.array([0.0])
        )
        assert resolver.resolution_s() == pytest.approx(2.5e-9)
