"""Tests for the multi-beam UE extension (Section 4.4)."""

import numpy as np
import pytest

from repro.arrays import ula_power_pattern
from repro.core.ue import UeMisalignmentEstimator, associate_beams


class TestAssociateBeams:
    def test_matches_by_tof_rank(self):
        gnb_delays = [10e-9, 14e-9]
        ue_delays = [14.2e-9, 10.1e-9]  # same paths, observed swapped
        pairs = associate_beams(gnb_delays, ue_delays)
        assert pairs == [(0, 1), (1, 0)]

    def test_identity_when_aligned(self):
        pairs = associate_beams([1e-9, 2e-9, 3e-9], [1e-9, 2e-9, 3e-9])
        assert pairs == [(0, 0), (1, 1), (2, 2)]

    def test_count_mismatch_rejected(self):
        with pytest.raises(ValueError, match="mismatch"):
            associate_beams([1e-9], [1e-9, 2e-9])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            associate_beams([], [])


class TestRotationEstimation:
    def test_roundtrip(self):
        estimator = UeMisalignmentEstimator(gnb_elements=8, ue_elements=4)
        angle_true = np.deg2rad(4.0)
        drop_db = -10 * np.log10(ula_power_pattern(4, angle_true))
        estimate = estimator.rotation_angle(drop_db)
        assert estimate == pytest.approx(angle_true, abs=1e-6)

    def test_zero_drop(self):
        estimator = UeMisalignmentEstimator(gnb_elements=8, ue_elements=4)
        assert estimator.rotation_angle(0.0) == 0.0

    def test_rejects_negative_drop(self):
        estimator = UeMisalignmentEstimator(gnb_elements=8, ue_elements=4)
        with pytest.raises(ValueError):
            estimator.rotation_angle(-1.0)


class TestTranslationEstimation:
    def test_roundtrip(self):
        estimator = UeMisalignmentEstimator(gnb_elements=8, ue_elements=4)
        angle_true = np.deg2rad(2.5)
        # Translation misaligns both ends by the same angle: the measured
        # drop is the sum of the two pattern losses.
        drop_db = -10 * np.log10(
            ula_power_pattern(8, angle_true) * ula_power_pattern(4, angle_true)
        )
        estimate = estimator.translation_angle(drop_db)
        assert estimate == pytest.approx(angle_true, abs=1e-6)

    def test_translation_drop_larger_than_rotation(self):
        # The same physical angle costs more power under translation
        # because both patterns contribute — so for a fixed measured drop
        # the translation hypothesis infers a smaller angle.
        estimator = UeMisalignmentEstimator(gnb_elements=8, ue_elements=8)
        drop_db = 3.0
        assert estimator.translation_angle(drop_db) < estimator.rotation_angle(
            drop_db
        )

    def test_huge_drop_clamps(self):
        estimator = UeMisalignmentEstimator(gnb_elements=8, ue_elements=4)
        estimate = estimator.translation_angle(300.0)
        assert np.isfinite(estimate)
        assert estimate > 0


class TestRealignmentPlan:
    def test_translation_plan_counter_rotates(self):
        estimator = UeMisalignmentEstimator(gnb_elements=8, ue_elements=4)
        plan = estimator.realignment_plan(
            association=[(0, 1), (1, 0)],
            misalignment_rad=[0.01, 0.02],
            motion="translation",
        )
        assert plan[0] == (0, 0.01, 1, -0.01)
        assert plan[1] == (1, 0.02, 0, -0.02)

    def test_rotation_plan_only_ue(self):
        estimator = UeMisalignmentEstimator(gnb_elements=8, ue_elements=4)
        plan = estimator.realignment_plan(
            association=[(0, 0)], misalignment_rad=[0.05], motion="rotation"
        )
        assert plan[0] == (0, 0.0, 0, 0.05)

    def test_validation(self):
        estimator = UeMisalignmentEstimator(gnb_elements=8, ue_elements=4)
        with pytest.raises(ValueError):
            estimator.realignment_plan([(0, 0)], [0.1], motion="teleport")
        with pytest.raises(ValueError):
            estimator.realignment_plan([(0, 0)], [0.1, 0.2])
        with pytest.raises(ValueError):
            UeMisalignmentEstimator(gnb_elements=1, ue_elements=4)
