"""Tests for the directional multi-beam UE link manager (Section 4.4)."""

import numpy as np
import pytest

from repro.arrays import UniformLinearArray, single_beam_weights
from repro.channel.geometric import GeometricChannel
from repro.channel.paths import Path
from repro.core.ue_link import DirectionalUeLinkManager
from repro.phy.ofdm import ChannelSounder, OfdmConfig
from repro.sim.scenarios import DEFAULT_IMPLEMENTATION_LOSS_DB, _los_gain


GNB = UniformLinearArray(num_elements=8)
UE = UniformLinearArray(num_elements=4)


def directional_channel(distance_m=30.0, delta_db=-4.0, sigma=1.0):
    """Two paths with both AoD and AoA, for a directional UE."""
    gain = _los_gain(distance_m, GNB.carrier_frequency_hz,
                     DEFAULT_IMPLEMENTATION_LOSS_DB)
    relative = 10 ** (delta_db / 20.0) * np.exp(1j * sigma)
    los_delay = distance_m / 3e8
    paths = (
        Path(aod_rad=0.0, gain=gain, delay_s=los_delay, aoa_rad=0.0,
             label="los"),
        Path(aod_rad=np.deg2rad(30.0), gain=gain * relative,
             delay_s=los_delay + 1.2e-9, aoa_rad=np.deg2rad(-25.0),
             label="reflection"),
    )
    return GeometricChannel(tx_array=GNB, paths=paths, rx_array=UE)


def make_manager(seed=0):
    sounder = ChannelSounder(
        config=OfdmConfig(bandwidth_hz=100e6, num_subcarriers=64), rng=seed
    )
    return DirectionalUeLinkManager(
        gnb_array=GNB, ue_array=UE, sounder=sounder, num_beams=2
    )


class TestEstablish:
    def test_builds_both_multibeams(self):
        manager = make_manager()
        channel = directional_channel()
        gnb, ue = manager.establish(channel)
        assert gnb.num_beams == 2
        assert ue.num_beams == 2
        assert gnb.angles_rad == pytest.approx((0.0, np.deg2rad(30.0)))
        assert ue.angles_rad == pytest.approx((0.0, np.deg2rad(-25.0)))

    def test_ue_gains_real_nonnegative(self):
        # The identity: constructive gNB transmission phase-aligns the
        # copies at the UE, so UE gains are real |c|^2.
        manager = make_manager()
        manager.establish(directional_channel())
        for gain in manager.ue_multibeam.relative_gains:
            assert np.imag(gain) == 0.0
            assert np.real(gain) >= 0.0

    def test_directional_ue_beats_omni_ue(self):
        manager = make_manager()
        channel = directional_channel()
        manager.establish(channel)
        directional = manager.link_snr_db(channel)
        tx, _rx = manager.current_weights()
        omni = manager.sounder.link_snr_db(channel, tx, rx_weights=None)
        # A 4-element UE array adds up to 6 dB of aperture.
        assert directional > omni + 3.0

    def test_requires_rx_array(self):
        manager = make_manager()
        channel = directional_channel()
        omni_channel = GeometricChannel(
            tx_array=GNB, paths=channel.paths, rx_array=None
        )
        with pytest.raises(ValueError, match="rx_array"):
            manager.establish(omni_channel)

    def test_step_before_establish(self):
        manager = make_manager()
        with pytest.raises(RuntimeError):
            manager.step(directional_channel(), 0.0)
        with pytest.raises(RuntimeError):
            manager.current_weights()


class TestRealignment:
    def test_recovers_from_translation(self):
        manager = make_manager()
        channel = directional_channel()
        manager.establish(channel)
        aligned = manager.link_snr_db(channel)
        # Translation: both ends' bearings rotate by ~4 degrees (AoD
        # and AoA of each path move by the same magnitude).
        offset = np.deg2rad(4.0)
        moved = channel.rotated([offset, offset], [-offset, -offset])
        degraded = manager.link_snr_db(moved)
        assert degraded < aligned - 1.0
        report = manager.step(moved, 0.1)
        assert report.action == "realign"
        recovered = manager.link_snr_db(moved)
        assert recovered > degraded + 1.0
        assert recovered == pytest.approx(aligned, abs=1.5)

    def test_static_link_holds(self):
        manager = make_manager()
        channel = directional_channel()
        manager.establish(channel)
        report = manager.step(channel, 0.1)
        assert report.action == "none"
        assert report.misalignment_rad == 0.0

    def test_probe_budget_charged(self):
        manager = make_manager()
        channel = directional_channel()
        manager.establish(channel)
        before = manager.budget.total_probes()
        offset = np.deg2rad(4.0)
        manager.step(
            channel.rotated([offset, offset], [-offset, -offset]), 0.1
        )
        assert manager.budget.total_probes() > before

    def test_misalignment_estimate_close_to_truth(self):
        manager = make_manager()
        channel = directional_channel()
        manager.establish(channel)
        offset = np.deg2rad(4.0)
        moved = channel.rotated([offset, offset], [-offset, -offset])
        report = manager.step(moved, 0.1)
        assert report.misalignment_rad == pytest.approx(
            offset, abs=np.deg2rad(1.5)
        )
