"""Tests for the MultiBeamManager state machine (Fig. 9)."""

import numpy as np
import pytest

from repro.arrays import UniformLinearArray, uniform_codebook
from repro.beamtraining import ExhaustiveTrainer
from repro.channel.blockage import BlockageEvent, BlockageSchedule
from repro.core.maintenance import MultiBeamManager
from repro.phy.mcs import OUTAGE_SNR_DB
from repro.phy.ofdm import ChannelSounder, OfdmConfig
from repro.phy.reference_signals import ProbeKind
from repro.sim.scenarios import SyntheticScenario, two_path_channel


def make_manager(array, seed=0, num_beams=2, bandwidth=100e6):
    config = OfdmConfig(bandwidth_hz=bandwidth, num_subcarriers=64)
    sounder = ChannelSounder(config=config, rng=seed)
    trainer = ExhaustiveTrainer(
        codebook=uniform_codebook(array, 33), sounder=sounder
    )
    return MultiBeamManager(
        array=array, sounder=sounder, trainer=trainer, num_beams=num_beams
    )


@pytest.fixture
def array():
    return UniformLinearArray(num_elements=8)


class TestEstablish:
    def test_creates_multibeam_on_both_paths(self, array):
        channel = two_path_channel(array, delta_db=-5.0)
        manager = make_manager(array)
        multibeam = manager.establish(channel)
        assert multibeam.num_beams == 2
        found = sorted(np.rad2deg(multibeam.angles_rad))
        assert found[0] == pytest.approx(0.0, abs=4.0)
        assert found[1] == pytest.approx(30.0, abs=4.0)

    def test_estimated_gains_near_truth(self, array):
        channel = two_path_channel(array, delta_db=-5.0, sigma_rad=1.0)
        manager = make_manager(array)
        multibeam = manager.establish(channel)
        assert abs(multibeam.relative_gains[1]) == pytest.approx(
            10 ** (-5.0 / 20.0), rel=0.3
        )

    def test_charges_training_and_probes(self, array):
        channel = two_path_channel(array)
        manager = make_manager(array)
        manager.establish(channel)
        assert manager.budget.total_probes(ProbeKind.SSB) == 33
        assert manager.budget.total_probes(ProbeKind.CSI_RS) > 0
        assert len(manager.training_windows) == 1

    def test_multibeam_snr_beats_single_beam(self, array):
        from repro.arrays.steering import single_beam_weights

        channel = two_path_channel(array, delta_db=-3.0)
        manager = make_manager(array)
        manager.establish(channel)
        multi_snr = manager.link_snr_db(channel)
        single_snr = manager.sounder.link_snr_db(
            channel, single_beam_weights(array, 0.0)
        )
        assert multi_snr > single_snr

    def test_step_before_establish_raises(self, array):
        manager = make_manager(array)
        with pytest.raises(RuntimeError):
            manager.step(two_path_channel(array), 0.0)
        with pytest.raises(RuntimeError):
            manager.current_weights()


class TestStaticMaintenance:
    def test_static_channel_stays_stable(self, array):
        channel = two_path_channel(array, delta_db=-5.0)
        manager = make_manager(array)
        manager.establish(channel)
        initial_snr = manager.link_snr_db(channel)
        for t in np.arange(0.005, 0.2, 0.005):
            manager.step(channel, float(t))
        assert manager.link_snr_db(channel) >= initial_snr - 1.0
        assert manager.training_rounds == 1  # never retrained

    def test_reports_have_fields(self, array):
        channel = two_path_channel(array)
        manager = make_manager(array)
        manager.establish(channel)
        report = manager.step(channel, 0.005)
        assert report.per_beam_power_db.shape == (2,)
        assert report.blocked_mask.shape == (2,)
        assert report.probes_used >= 1


class TestBlockageResponse:
    def run_with_blockage(self, array, depth_db=26.0):
        base = two_path_channel(array, delta_db=-5.0)
        schedule = BlockageSchedule(
            events=(
                BlockageEvent(path_index=0, start_s=0.05, duration_s=0.2,
                              depth_db=depth_db),
            )
        )
        scenario = SyntheticScenario(base_channel=base, blockage=schedule)
        manager = make_manager(array)
        manager.establish(scenario.channel_at(0.0))
        actions = []
        snrs = []
        for t in np.arange(0.005, 0.4, 0.005):
            channel = scenario.channel_at(float(t))
            report = manager.step(channel, float(t))
            actions.append(report.action)
            snrs.append(manager.link_snr_db(channel))
        return actions, np.asarray(snrs), manager

    def test_detects_and_drops_blocked_beam(self, array):
        actions, _snrs, _manager = self.run_with_blockage(array)
        assert "blockage_drop" in actions

    def test_link_survives_blockage(self, array):
        _actions, snrs, manager = self.run_with_blockage(array)
        # After the drop is handled the link must stay above outage.
        assert np.all(snrs[4:] > OUTAGE_SNR_DB)
        assert manager.training_rounds == 1

    def test_beam_restored_after_blockage(self, array):
        actions, snrs, manager = self.run_with_blockage(array)
        # Recovery probe restores the beam once the blocker leaves
        # (reprobe interval is 100 ms; blockage ends at 250 ms).
        assert not manager._detector.blocked_mask.any()
        # Restored constructive multi-beam: final SNR near initial.
        assert snrs[-1] == pytest.approx(snrs[0], abs=2.0)


class TestFullOutage:
    def test_retrains_when_everything_blocked(self, array):
        base = two_path_channel(array, delta_db=-5.0)
        events = tuple(
            BlockageEvent(path_index=k, start_s=0.05, duration_s=0.1,
                          depth_db=40.0)
            for k in range(2)
        )
        scenario = SyntheticScenario(
            base_channel=base, blockage=BlockageSchedule(events=events)
        )
        manager = make_manager(array)
        manager.establish(scenario.channel_at(0.0))
        for t in np.arange(0.005, 0.25, 0.005):
            manager.step(scenario.channel_at(float(t)), float(t))
        assert manager.training_rounds >= 2


class TestMobilityTracking:
    def test_tracks_translation(self, array):
        base = two_path_channel(array, delta_db=-5.0)
        scenario = SyntheticScenario(
            base_channel=base,
            angular_rates_rad_s=(np.deg2rad(12.0), np.deg2rad(7.0)),
        )
        manager = make_manager(array)
        manager.establish(scenario.channel_at(0.0))
        for t in np.arange(0.005, 1.0, 0.005):
            channel = scenario.channel_at(float(t))
            manager.step(channel, float(t))
        final_channel = scenario.channel_at(1.0)
        # After 12 degrees of LOS drift the tracked multi-beam must still
        # be roughly aligned: its LOS beam within ~3 degrees of truth.
        los_estimate = manager.multibeam.angles_rad[0]
        los_truth = final_channel.aods()[0]
        assert abs(np.rad2deg(los_estimate - los_truth)) < 3.0
        # And without any retraining.
        assert manager.training_rounds == 1

    def test_tracking_preserves_throughput(self, array):
        base = two_path_channel(array, delta_db=-5.0)
        scenario = SyntheticScenario(
            base_channel=base,
            angular_rates_rad_s=(np.deg2rad(12.0), np.deg2rad(7.0)),
        )
        manager = make_manager(array)
        manager.establish(scenario.channel_at(0.0))
        start_snr = manager.link_snr_db(scenario.channel_at(0.0))
        for t in np.arange(0.005, 1.0, 0.005):
            manager.step(scenario.channel_at(float(t)), float(t))
        end_snr = manager.link_snr_db(scenario.channel_at(1.0))
        assert end_snr > start_snr - 3.0


class TestValidation:
    def test_bad_configuration(self, array):
        config = OfdmConfig()
        sounder = ChannelSounder(config=config, rng=0)
        with pytest.raises(ValueError):
            MultiBeamManager(
                array=array, sounder=sounder, trainer=None, num_beams=0
            )
        with pytest.raises(ValueError):
            MultiBeamManager(
                array=array, sounder=sounder, trainer=None,
                reprobe_interval_s=0.0,
            )
