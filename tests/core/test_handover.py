"""Tests for multi-gNB handover (Fig. 9's last resort)."""

import numpy as np
import pytest

from repro.arrays import UniformLinearArray, uniform_codebook
from repro.beamtraining import ExhaustiveTrainer
from repro.channel.blockage import BlockageEvent, BlockageSchedule
from repro.core.handover import MultiGnbManager
from repro.core.maintenance import MultiBeamManager
from repro.phy.mcs import OUTAGE_SNR_DB
from repro.phy.ofdm import ChannelSounder, OfdmConfig
from repro.sim.scenarios import SyntheticScenario, two_path_channel


ARRAY = UniformLinearArray(num_elements=8)


def make_single_manager(seed):
    sounder = ChannelSounder(
        config=OfdmConfig(bandwidth_hz=400e6, num_subcarriers=64), rng=seed
    )
    trainer = ExhaustiveTrainer(
        codebook=uniform_codebook(ARRAY, 33), sounder=sounder
    )
    return MultiBeamManager(
        array=ARRAY, sounder=sounder, trainer=trainer, num_beams=2
    )


def make_multi_gnb(seed=0, **overrides):
    return MultiGnbManager(
        managers=[make_single_manager(seed), make_single_manager(seed + 50)],
        **overrides,
    )


def dual_scenarios(block_serving=True):
    """Two gNBs: the first (stronger, 7 m) and a backup (10 m).

    Optionally both paths of the serving gNB get blocked at 0.1 s for
    0.3 s — the unrecoverable case handover exists for.
    """
    serving_events = ()
    if block_serving:
        serving_events = tuple(
            BlockageEvent(path_index=k, start_s=0.1, duration_s=0.3,
                          depth_db=40.0)
            for k in range(2)
        )
    serving = SyntheticScenario(
        base_channel=two_path_channel(ARRAY, distance_m=7.0),
        blockage=BlockageSchedule(events=serving_events),
    )
    backup = SyntheticScenario(
        base_channel=two_path_channel(ARRAY, distance_m=10.0, sigma_rad=0.3),
    )
    return serving, backup


class TestEstablish:
    def test_serves_on_strongest(self):
        manager = make_multi_gnb()
        serving, backup = dual_scenarios(block_serving=False)
        channels = [serving.channel_at(0.0), backup.channel_at(0.0)]
        manager.establish(channels)
        assert manager.serving_index == 0  # the 7 m gNB is stronger

    def test_validation(self):
        with pytest.raises(ValueError, match="two gNBs"):
            MultiGnbManager(managers=[make_single_manager(0)])
        manager = make_multi_gnb()
        with pytest.raises(ValueError):
            manager.establish([dual_scenarios()[0].channel_at(0.0)])


class TestHandover:
    def run(self, manager, duration=0.6):
        serving, backup = dual_scenarios()
        manager.establish(
            [serving.channel_at(0.0), backup.channel_at(0.0)]
        )
        history = []
        for t in np.arange(0.005, duration, 0.005):
            channels = [
                serving.channel_at(float(t)), backup.channel_at(float(t))
            ]
            report = manager.step(channels, float(t))
            history.append((float(t), report, manager.link_snr_db(channels)))
        return history

    def test_hands_over_on_total_blockage(self):
        manager = make_multi_gnb()
        history = self.run(manager)
        assert manager.handover_count >= 1
        handover_times = [
            t for t, report, _ in history if report.action == "handover"
        ]
        # Blockage starts at 0.1; handover follows within ~50 ms.
        assert handover_times[0] == pytest.approx(0.11, abs=0.05)

    def test_link_survives_on_backup(self):
        manager = make_multi_gnb()
        history = self.run(manager)
        # Once on the backup gNB the link is healthy for the rest of the
        # serving outage.
        post = [snr for t, r, snr in history if 0.2 <= t <= 0.35]
        assert np.all(np.asarray(post) > OUTAGE_SNR_DB)

    def test_handover_windows_recorded(self):
        manager = make_multi_gnb(handover_latency_s=30e-3)
        self.run(manager)
        assert len(manager.handover_windows) == manager.handover_count
        start, duration = manager.handover_windows[0]
        assert duration == pytest.approx(30e-3)
        # Handover interruptions surface in the combined windows.
        assert (start, duration) in manager.training_windows

    def test_no_ping_pong_on_healthy_link(self):
        manager = make_multi_gnb()
        serving, backup = dual_scenarios(block_serving=False)
        manager.establish(
            [serving.channel_at(0.0), backup.channel_at(0.0)]
        )
        for t in np.arange(0.005, 0.5, 0.005):
            channels = [
                serving.channel_at(float(t)), backup.channel_at(float(t))
            ]
            manager.step(channels, float(t))
        assert manager.handover_count == 0

    def test_hysteresis_blocks_marginal_switch(self):
        # The backup being merely comparable (not better by the margin)
        # must not trigger a handover.
        manager = make_multi_gnb(hysteresis_db=20.0)
        serving, backup = dual_scenarios(block_serving=False)
        manager.establish(
            [serving.channel_at(0.0), backup.channel_at(0.0)]
        )
        for t in np.arange(0.005, 0.3, 0.005):
            channels = [
                serving.channel_at(float(t)), backup.channel_at(float(t))
            ]
            manager.step(channels, float(t))
        assert manager.serving_index == 0
        assert manager.handover_count == 0
