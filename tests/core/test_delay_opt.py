"""Tests for true-time-delay optimization (Section 3.4, Figs. 7-8)."""

import numpy as np
import pytest

from repro.arrays import UniformLinearArray
from repro.core.delay_opt import (
    band_response_db,
    build_delay_array,
    compensating_delays,
    flatness_db,
)
from repro.sim.scenarios import two_path_channel


@pytest.fixture
def array():
    return UniformLinearArray(num_elements=8)


class TestCompensatingDelays:
    def test_equalizes_to_slowest_path(self):
        delays = compensating_delays([10e-9, 15e-9, 12e-9])
        assert delays == pytest.approx([5e-9, 0.0, 3e-9])

    def test_all_non_negative(self):
        delays = compensating_delays([3e-9, 7e-9])
        assert np.all(delays >= 0)

    def test_single_path_zero(self):
        assert compensating_delays([5e-9]) == pytest.approx([0.0])

    def test_validation(self):
        with pytest.raises(ValueError):
            compensating_delays([])
        with pytest.raises(ValueError):
            compensating_delays([-1e-9])


class TestDelayArrayResponse:
    def run_case(self, array, excess_delay_s, compensate, delta_db=-3.0):
        channel = two_path_channel(
            array, delta_db=delta_db, excess_delay_s=excess_delay_s
        )
        dpa = build_delay_array(array, channel, 2, compensate=compensate)
        freqs = np.linspace(-200e6, 200e6, 101)
        return band_response_db(dpa, channel, freqs)

    def test_compensated_response_is_flat(self, array):
        # Paper Fig. 8: delay-optimized mmReliable is flat across the band.
        for spread in (5e-9, 10e-9):
            response = self.run_case(array, spread, compensate=True)
            assert flatness_db(response) < 1.5

    def test_uncompensated_response_notches(self, array):
        # Without delay compensation a 5-10 ns spread creates deep notches
        # (equal-strength paths cancel fully at the destructive
        # frequencies; a weaker second path bounds the notch depth).
        for spread in (5e-9, 10e-9):
            response = self.run_case(
                array, spread, compensate=False, delta_db=0.0
            )
            assert flatness_db(response) > 15.0

    def test_compensation_helps_more_with_larger_spread(self, array):
        ripple_5 = flatness_db(self.run_case(array, 5e-9, compensate=False))
        ripple_compensated = flatness_db(
            self.run_case(array, 5e-9, compensate=True)
        )
        assert ripple_compensated < ripple_5 / 4

    def test_notch_count_scales_with_delay_spread(self, array):
        # 10 ns spread -> notch spacing 100 MHz; 5 ns -> 200 MHz.
        response_5 = self.run_case(array, 5e-9, compensate=False)
        response_10 = self.run_case(array, 10e-9, compensate=False)

        def count_notches(response):
            threshold = np.median(response) - 6.0
            below = response < threshold
            # count rising edges of "below threshold" regions
            return int(np.sum(np.diff(below.astype(int)) == 1) + below[0])

        assert count_notches(response_10) > count_notches(response_5)


class TestBuildDelayArray:
    def test_requires_enough_paths(self, array):
        channel = two_path_channel(array)
        with pytest.raises(ValueError):
            build_delay_array(array, channel, 3)
        with pytest.raises(ValueError):
            build_delay_array(array, channel, 0)

    def test_compensated_delays_match_channel(self, array):
        channel = two_path_channel(array, excess_delay_s=4e-9)
        dpa = build_delay_array(array, channel, 2, compensate=True)
        # LOS sub-array waits for the slower reflected path.
        assert dpa.subarrays[0].delay_s == pytest.approx(4e-9)
        assert dpa.subarrays[1].delay_s == pytest.approx(0.0)

    def test_flatness_validation(self):
        with pytest.raises(ValueError):
            flatness_db(np.array([]))
