"""Batched sounding (``sound_many``) vs per-beam ``sound`` parity.

The probing controller stacks its per-beam loops into one noiseless
response evaluation.  Noise, CFO, and fault-injection draws must stay in
the exact per-beam order of sequential sounding so every RNG stream is
preserved; the responses themselves match to the documented last-ulp
tolerance of the batched contractions (rtol 1e-12 here, far below any
physical noise floor).
"""

import numpy as np
import pytest

from repro.arrays.geometry import UniformLinearArray
from repro.arrays.steering import single_beam_weights
from repro.channel.geometric import GeometricChannel
from repro.channel.impairments import CfoSfoModel
from repro.channel.paths import Path
from repro.core.probing import ProbeController
from repro.faults import FaultInjector, FaultKind, FaultSpec
from repro.phy.ofdm import ChannelSounder, OfdmConfig
from repro.phy.reference_signals import ProbeBudget

ARRAY = UniformLinearArray(num_elements=16, spacing_wavelengths=0.5)
ANGLES = [0.2, -0.4, 0.05]


def make_channel():
    paths = (
        Path(aod_rad=0.2, aoa_rad=0.1, delay_s=10e-9, gain=0.9 + 0.1j),
        Path(aod_rad=-0.4, aoa_rad=0.3, delay_s=35e-9, gain=0.3 - 0.2j),
        Path(aod_rad=0.05, aoa_rad=-0.2, delay_s=60e-9, gain=0.1 + 0.2j),
    )
    return GeometricChannel(tx_array=ARRAY, paths=paths)


def make_sounder(seed=42, cfo=False, faults=False):
    injector = None
    if faults:
        injector = FaultInjector(
            specs=(
                FaultSpec(kind=FaultKind.PROBE_CORRUPTION, rate=0.5),
                FaultSpec(kind=FaultKind.STUCK_ELEMENTS, rate=0.3),
            ),
            seed=7,
        )
    cfo_model = (
        CfoSfoModel(rng=np.random.default_rng(seed + 1)) if cfo else None
    )
    return ChannelSounder(
        config=OfdmConfig(),
        cfo_model=cfo_model,
        rng=np.random.default_rng(seed),
        fault_injector=injector,
    )


def assert_estimates_match(batched, sequential):
    assert len(batched) == len(sequential)
    for ours, theirs in zip(batched, sequential):
        np.testing.assert_allclose(ours.csi, theirs.csi, rtol=1e-12)
        np.testing.assert_array_equal(
            ours.frequencies_hz, theirs.frequencies_hz
        )
        assert ours.time_s == theirs.time_s


class TestSoundMany:
    @pytest.mark.parametrize("cfo", [False, True])
    @pytest.mark.parametrize("faults", [False, True])
    def test_matches_sequential_sound(self, cfo, faults):
        weights = [single_beam_weights(ARRAY, a) for a in ANGLES]
        # Sequential reference: one sounder, probes in order.
        reference_sounder = make_sounder(cfo=cfo, faults=faults)
        channel = make_channel()
        sequential = [
            reference_sounder.sound(channel, w, time_s=0.001)
            for w in weights
        ]
        batched = make_sounder(cfo=cfo, faults=faults).sound_many(
            make_channel(), weights, time_s=0.001
        )
        assert_estimates_match(batched, sequential)

    def test_empty_list(self):
        assert make_sounder().sound_many(make_channel(), []) == []

    def test_channel_double_without_batched_response(self):
        class ScalarOnly:
            def __init__(self, channel):
                self._channel = channel

            def frequency_response(self, tx_weights, freqs, rx_weights=None):
                return self._channel.frequency_response(
                    tx_weights, freqs, rx_weights
                )

        weights = [single_beam_weights(ARRAY, a) for a in ANGLES]
        via_double = make_sounder().sound_many(
            ScalarOnly(make_channel()), weights
        )
        direct = make_sounder().sound_many(make_channel(), weights)
        for ours, theirs in zip(via_double, direct):
            np.testing.assert_allclose(ours.csi, theirs.csi, rtol=1e-12)

    def test_rng_stream_consumed_identically(self):
        # After sounding the same probes, both sounders' RNGs must be in
        # the same state: the next draw from each is identical.
        weights = [single_beam_weights(ARRAY, a) for a in ANGLES]
        seq_sounder = make_sounder(cfo=True)
        channel = make_channel()
        for w in weights:
            seq_sounder.sound(channel, w)
        batch_sounder = make_sounder(cfo=True)
        batch_sounder.sound_many(make_channel(), weights)
        assert (
            seq_sounder.rng.standard_normal()
            == batch_sounder.rng.standard_normal()
        )
        assert (
            seq_sounder.cfo_model.rng.standard_normal()
            == batch_sounder.cfo_model.rng.standard_normal()
        )


class TestProbeControllerBatched:
    def _sequential_reference_powers(self, controller, channel, time_s=0.0):
        """The pre-batching implementation: one sound() call per beam."""
        powers = []
        for angle in ANGLES:
            weights = single_beam_weights(controller.array, float(angle))
            estimate = controller.sounder.sound(
                channel, weights, time_s=time_s
            )
            powers.append(np.abs(estimate.csi) ** 2)
        return powers

    def test_measure_reference_powers_matches_sequential(self):
        batched = ProbeController(
            array=ARRAY, sounder=make_sounder(cfo=True)
        ).measure_reference_powers(make_channel(), ANGLES)
        reference = self._sequential_reference_powers(
            ProbeController(array=ARRAY, sounder=make_sounder(cfo=True)),
            make_channel(),
        )
        for ours, theirs in zip(batched, reference):
            np.testing.assert_allclose(ours, theirs, rtol=1e-12)

    def test_budget_charged_once_per_beam(self):
        budget = ProbeBudget()
        ProbeController(
            array=ARRAY, sounder=make_sounder()
        ).measure_reference_powers(make_channel(), ANGLES, budget=budget)
        assert budget.total_probes() == len(ANGLES)

    def test_probe_relative_gains_deterministic_across_paths(self):
        # End-to-end: the full two-probe round through the batched
        # sounder is reproducible and estimates every beam.
        outcomes = [
            ProbeController(
                array=ARRAY, sounder=make_sounder(cfo=True)
            ).probe_relative_gains(make_channel(), ANGLES)
            for _ in range(2)
        ]
        assert outcomes[0].estimate == outcomes[1].estimate
        assert all(outcomes[0].valid)
        assert outcomes[0].estimate.num_probes == len(ANGLES) + 2 * (
            len(ANGLES) - 1
        )
