"""Tests for the CFO-robust two-probe relative-gain estimator."""

import numpy as np
import pytest

from repro.arrays import UniformLinearArray
from repro.channel.impairments import CfoSfoModel
from repro.core.multibeam import multibeam_from_channel
from repro.core.probing import (
    ProbeController,
    two_probe_ratio,
    wideband_relative_gain,
)
from repro.phy.ofdm import ChannelSounder, OfdmConfig
from repro.phy.reference_signals import ProbeBudget, ProbeKind
from repro.sim.scenarios import three_path_channel, two_path_channel


@pytest.fixture
def array():
    return UniformLinearArray(num_elements=8)


class TestTwoProbeRatio:
    def test_exact_on_synthetic_powers(self):
        h1 = 1.3
        h2 = 0.6 * np.exp(1j * 2.1)
        p1, p2 = abs(h1) ** 2, abs(h2) ** 2
        p3 = abs(h1 + h2) ** 2
        p4 = abs(h1 + 1j * h2) ** 2
        ratio = two_probe_ratio(p1, p2, p3, p4)
        assert ratio == pytest.approx(h2 / h1, abs=1e-12)

    def test_vectorized_over_subcarriers(self):
        h1 = np.array([1.0, 2.0])
        h2 = np.array([0.5j, -0.3])
        ratio = two_probe_ratio(
            np.abs(h1) ** 2,
            np.abs(h2) ** 2,
            np.abs(h1 + h2) ** 2,
            np.abs(h1 + 1j * h2) ** 2,
        )
        assert ratio == pytest.approx(h2 / h1)

    def test_zero_second_path(self):
        ratio = two_probe_ratio(1.0, 0.0, 1.0, 1.0)
        assert ratio == pytest.approx(0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            two_probe_ratio(0.0, 1.0, 1.0, 1.0)
        with pytest.raises(ValueError):
            two_probe_ratio(1.0, -1.0, 1.0, 1.0)


class TestWidebandRelativeGain:
    def test_flat_channel_reduces_to_ratio(self):
        ratio = np.full(16, 0.5 * np.exp(1j * 0.7))
        p1 = np.ones(16)
        assert wideband_relative_gain(ratio, p1) == pytest.approx(ratio[0])

    def test_weighting_favors_strong_subcarriers(self):
        ratio = np.array([1.0 + 0j, 0.0 + 0j])
        p1 = np.array([10.0, 1e-6])
        assert wideband_relative_gain(ratio, p1) == pytest.approx(1.0, abs=1e-3)

    def test_validation(self):
        with pytest.raises(ValueError):
            wideband_relative_gain(np.ones(3), np.ones(4))
        with pytest.raises(ValueError):
            wideband_relative_gain(np.ones(2), np.zeros(2))


class TestProbeController:
    def estimate_for(self, array, channel, rng=0, cfo=False):
        config = OfdmConfig(bandwidth_hz=100e6, num_subcarriers=64)
        cfo_model = CfoSfoModel(rng=rng + 1000) if cfo else None
        sounder = ChannelSounder(config=config, cfo_model=cfo_model, rng=rng)
        controller = ProbeController(array=array, sounder=sounder)
        angles = [p.aod_rad for p in channel.strongest_paths()]
        return controller.estimate_relative_gains(channel, angles)

    def test_recovers_delta_and_sigma(self, array):
        channel = two_path_channel(array, delta_db=-4.0, sigma_rad=1.0)
        estimate = self.estimate_for(array, channel)
        genie = multibeam_from_channel(channel, 2)
        true_gain = genie.relative_gains[1]
        assert estimate.deltas[1] == pytest.approx(abs(true_gain), rel=0.15)
        phase_error = np.angle(
            estimate.relative_gains[1] / true_gain
        )
        assert abs(phase_error) < np.deg2rad(20.0)

    def test_robust_to_cfo(self, array):
        # The headline property: estimation from |h|^2 survives random
        # per-probe phase rotations that break complex-ratio methods.
        channel = two_path_channel(array, delta_db=-4.0, sigma_rad=1.0)
        estimate = self.estimate_for(array, channel, cfo=True)
        genie = multibeam_from_channel(channel, 2)
        true_gain = genie.relative_gains[1]
        phase_error = np.angle(estimate.relative_gains[1] / true_gain)
        assert abs(phase_error) < np.deg2rad(25.0)
        assert estimate.deltas[1] == pytest.approx(abs(true_gain), rel=0.2)

    def test_probe_count_two_per_extra_beam(self, array):
        channel = three_path_channel(array)
        config = OfdmConfig(bandwidth_hz=100e6, num_subcarriers=64)
        sounder = ChannelSounder(config=config, rng=0)
        controller = ProbeController(array=array, sounder=sounder)
        angles = [p.aod_rad for p in channel.strongest_paths()]
        budget = ProbeBudget()
        powers = controller.measure_reference_powers(
            channel, angles, budget=budget
        )
        estimate = controller.estimate_relative_gains(
            channel, angles, reference_powers=powers, budget=budget
        )
        # 2 extra probes per non-reference beam: 4 for the 3-beam case.
        assert estimate.num_probes == 4
        assert budget.total_probes(ProbeKind.CSI_RS) == 3 + 4

    def test_reference_beam_gain_is_unity(self, array):
        channel = two_path_channel(array)
        estimate = self.estimate_for(array, channel)
        assert estimate.relative_gains[0] == 1.0 + 0.0j

    def test_estimated_multibeam_snr_near_genie(self, array):
        # End goal: the estimated gains produce nearly the genie SNR.
        channel = two_path_channel(array, delta_db=-3.0, sigma_rad=-0.7)
        estimate = self.estimate_for(array, channel)
        genie = multibeam_from_channel(channel, 2)
        estimated = genie.with_relative_gains(estimate.relative_gains)

        def power(multibeam):
            response = np.sum(
                channel.beamformed_path_gains(multibeam.weights().vector)
            )
            return abs(response) ** 2

        assert power(estimated) >= 0.95 * power(genie)

    def test_mismatched_reference_powers_rejected(self, array):
        channel = two_path_channel(array)
        config = OfdmConfig(num_subcarriers=16)
        controller = ProbeController(
            array=array, sounder=ChannelSounder(config=config, rng=0)
        )
        with pytest.raises(ValueError):
            controller.estimate_relative_gains(
                channel, [0.0, 0.5], reference_powers=[np.ones(16)]
            )
