"""Edge-case tests for the MultiBeamManager (ablation flags, quantizer,
recovery timing, probe accounting)."""

import numpy as np
import pytest

from repro.arrays import UniformLinearArray, WeightQuantizer, uniform_codebook
from repro.beamtraining import ExhaustiveTrainer
from repro.channel.blockage import BlockageEvent, BlockageSchedule
from repro.core.maintenance import MultiBeamManager
from repro.phy.ofdm import ChannelSounder, OfdmConfig
from repro.phy.reference_signals import ProbeKind
from repro.sim.scenarios import SyntheticScenario, two_path_channel


ARRAY = UniformLinearArray(num_elements=8)


def make_manager(seed=0, **overrides):
    sounder = ChannelSounder(
        config=OfdmConfig(bandwidth_hz=400e6, num_subcarriers=64), rng=seed
    )
    trainer = ExhaustiveTrainer(
        codebook=uniform_codebook(ARRAY, 33), sounder=sounder
    )
    return MultiBeamManager(
        array=ARRAY, sounder=sounder, trainer=trainer, num_beams=2,
        **overrides,
    )


class TestQuantizerIntegration:
    def test_quantized_weights_unit_norm(self):
        manager = make_manager(
            quantizer=WeightQuantizer(phase_bits=2, amplitude_range_db=27.0)
        )
        channel = two_path_channel(ARRAY)
        manager.establish(channel)
        assert np.linalg.norm(manager.current_weights()) == pytest.approx(1.0)

    def test_coarse_quantizer_costs_under_a_db(self):
        channel = two_path_channel(ARRAY, delta_db=-4.0)
        ideal = make_manager(seed=1)
        coarse = make_manager(
            seed=1,
            quantizer=WeightQuantizer(phase_bits=2, amplitude_range_db=27.0),
        )
        ideal.establish(channel)
        coarse.establish(channel)
        assert ideal.link_snr_db(channel) - coarse.link_snr_db(
            channel
        ) < 1.5


class TestAblationFlags:
    def test_no_tracking_never_refines(self):
        scenario = SyntheticScenario(
            base_channel=two_path_channel(ARRAY),
            angular_rates_rad_s=(np.deg2rad(12.0), np.deg2rad(7.0)),
        )
        manager = make_manager(enable_tracking=False)
        manager.establish(scenario.channel_at(0.0))
        actions = set()
        for t in np.arange(0.005, 0.3, 0.005):
            actions.add(manager.step(scenario.channel_at(float(t)), float(t)).action)
        assert "tracking_refine" not in actions

    def test_non_constructive_uses_equal_gains(self):
        manager = make_manager(constructive=False)
        manager.establish(two_path_channel(ARRAY, delta_db=-4.0))
        assert manager.multibeam.relative_gains == (1.0 + 0j, 1.0 + 0j)

    def test_no_blockage_response_keeps_beams(self):
        schedule = BlockageSchedule(
            events=(
                BlockageEvent(path_index=0, start_s=0.02, duration_s=0.2,
                              depth_db=26.0),
            )
        )
        scenario = SyntheticScenario(
            base_channel=two_path_channel(ARRAY, delta_db=-4.0),
            blockage=schedule,
        )
        manager = make_manager(enable_blockage_response=False)
        manager.establish(scenario.channel_at(0.0))
        for t in np.arange(0.005, 0.15, 0.005):
            manager.step(scenario.channel_at(float(t)), float(t))
        # Gains never zeroed: both beams still live in the weights.
        assert all(g != 0 for g in manager.multibeam.relative_gains)


class TestProbeAccounting:
    def test_every_step_charges_at_least_one_probe(self):
        manager = make_manager()
        channel = two_path_channel(ARRAY)
        manager.establish(channel)
        before = manager.budget.total_probes(ProbeKind.CSI_RS)
        manager.step(channel, 0.005)
        after = manager.budget.total_probes(ProbeKind.CSI_RS)
        assert after >= before + 1

    def test_reports_probe_counts(self):
        manager = make_manager()
        channel = two_path_channel(ARRAY)
        manager.establish(channel)
        report = manager.step(channel, 0.005)
        assert report.probes_used >= 1

    def test_training_windows_accumulate_on_retrain(self):
        schedule = BlockageSchedule(
            events=tuple(
                BlockageEvent(path_index=k, start_s=0.02, duration_s=0.1,
                              depth_db=40.0)
                for k in range(2)
            )
        )
        scenario = SyntheticScenario(
            base_channel=two_path_channel(ARRAY), blockage=schedule
        )
        manager = make_manager()
        manager.establish(scenario.channel_at(0.0))
        for t in np.arange(0.005, 0.2, 0.005):
            manager.step(scenario.channel_at(float(t)), float(t))
        assert len(manager.training_windows) == manager.training_rounds
        assert manager.training_rounds >= 2


class TestRecoveryTiming:
    def test_recovery_waits_for_reprobe_interval(self):
        schedule = BlockageSchedule(
            events=(
                BlockageEvent(path_index=0, start_s=0.02, duration_s=0.05,
                              depth_db=26.0),
            )
        )
        scenario = SyntheticScenario(
            base_channel=two_path_channel(ARRAY, delta_db=-4.0),
            blockage=schedule,
        )
        manager = make_manager(reprobe_interval_s=0.1)
        manager.establish(scenario.channel_at(0.0))
        blocked_at, recovered_at = None, None
        for t in np.arange(0.005, 0.4, 0.005):
            report = manager.step(scenario.channel_at(float(t)), float(t))
            if report.blocked_mask.any() and blocked_at is None:
                blocked_at = t
            if (
                blocked_at is not None
                and recovered_at is None
                and not report.blocked_mask.any()
            ):
                recovered_at = t
        assert blocked_at is not None
        assert recovered_at is not None
        # The blockage ends at 0.07; the recovery probe runs on the
        # reprobe cadence, so restoration happens at the next 0.1 s
        # boundary after the path returns.
        assert recovered_at >= 0.1

    def test_recovered_link_restores_constructive_snr(self):
        schedule = BlockageSchedule(
            events=(
                BlockageEvent(path_index=0, start_s=0.02, duration_s=0.05,
                              depth_db=26.0),
            )
        )
        scenario = SyntheticScenario(
            base_channel=two_path_channel(ARRAY, delta_db=-4.0),
            blockage=schedule,
        )
        manager = make_manager(reprobe_interval_s=0.1)
        initial_channel = scenario.channel_at(0.0)
        manager.establish(initial_channel)
        initial_snr = manager.link_snr_db(initial_channel)
        for t in np.arange(0.005, 0.4, 0.005):
            manager.step(scenario.channel_at(float(t)), float(t))
        final = manager.link_snr_db(scenario.channel_at(0.4))
        assert final == pytest.approx(initial_snr, abs=1.0)
