"""Tests for blockage detection and power reallocation (Section 4.1)."""

import numpy as np
import pytest

from repro.arrays import UniformLinearArray
from repro.core.blockage import BlockageDetector, reallocate_gains
from repro.core.multibeam import MultiBeam


@pytest.fixture
def array():
    return UniformLinearArray(num_elements=8)


class TestBlockageDetector:
    def test_fires_on_fast_drop(self):
        detector = BlockageDetector(num_beams=2, drop_threshold_db=10.0,
                                    window_s=15e-3, confirmations=1)
        detector.update(0.000, [-40.0, -46.0])
        detector.update(0.005, [-40.0, -46.0])
        mask = detector.update(0.010, [-66.0, -46.0])  # 26 dB crash
        assert mask.tolist() == [True, False]

    def test_confirmation_suppresses_single_glitch(self):
        detector = BlockageDetector(num_beams=1, drop_threshold_db=10.0,
                                    window_s=30e-3, confirmations=2)
        detector.update(0.000, [-40.0])
        mask = detector.update(0.005, [-66.0])  # one noisy snapshot
        assert not mask[0]
        mask = detector.update(0.010, [-40.5])  # back to normal
        assert not mask[0]
        # A real blockage persists: two breaches in a row confirm it.
        detector.update(0.015, [-66.0])
        mask = detector.update(0.020, [-66.0])
        assert mask[0]

    def test_ignores_slow_drift(self):
        # Mobility-scale decay: ~0.5 dB per 5 ms never trips the detector.
        detector = BlockageDetector(num_beams=1, drop_threshold_db=10.0,
                                    window_s=15e-3)
        power = -40.0
        for t in np.arange(0.0, 0.2, 0.005):
            mask = detector.update(t, [power])
            power -= 0.5
        assert not mask[0]

    def test_recovery_by_power_return(self):
        detector = BlockageDetector(num_beams=1, drop_threshold_db=10.0,
                                    window_s=15e-3, recovery_margin_db=3.0,
                                    confirmations=1)
        detector.update(0.000, [-40.0])
        detector.update(0.005, [-66.0])
        assert detector.blocked_mask[0]
        mask = detector.update(0.010, [-41.0])
        assert not mask[0]

    def test_inactive_beam_state_frozen(self):
        detector = BlockageDetector(num_beams=2, window_s=15e-3,
                                    confirmations=1)
        detector.update(0.000, [-40.0, -46.0])
        detector.update(0.005, [-66.0, -46.0])
        assert detector.blocked_mask.tolist() == [True, False]
        # Beam 0 dropped from the multi-beam: silent power reading must
        # not change its state.
        mask = detector.update(
            0.010, [-300.0, -46.0], active_mask=[False, True]
        )
        assert mask.tolist() == [True, False]

    def test_mark_recovered(self):
        detector = BlockageDetector(num_beams=2, window_s=15e-3,
                                    confirmations=1)
        detector.update(0.000, [-40.0, -46.0])
        detector.update(0.005, [-66.0, -46.0])
        detector.mark_recovered(0)
        assert detector.blocked_mask.tolist() == [False, False]

    def test_healthy_level_recorded(self):
        detector = BlockageDetector(num_beams=1, window_s=15e-3,
                                    confirmations=1)
        detector.update(0.000, [-40.0])
        detector.update(0.005, [-66.0])
        assert detector.healthy_level_db(0) == pytest.approx(-40.0)

    def test_reset(self):
        detector = BlockageDetector(num_beams=1, window_s=15e-3,
                                    confirmations=1)
        detector.update(0.000, [-40.0])
        detector.update(0.005, [-66.0])
        detector.reset()
        assert not detector.blocked_mask[0]

    def test_validation(self):
        with pytest.raises(ValueError):
            BlockageDetector(num_beams=0)
        with pytest.raises(ValueError):
            BlockageDetector(num_beams=1, drop_threshold_db=0.0)
        detector = BlockageDetector(num_beams=2)
        with pytest.raises(ValueError):
            detector.update(0.0, [-40.0])
        with pytest.raises(ValueError):
            detector.update(0.0, [-40.0, -40.0], active_mask=[True])
        with pytest.raises(IndexError):
            detector.mark_recovered(5)


class TestReallocateGains:
    def make_multibeam(self, array):
        return MultiBeam(
            array=array,
            angles_rad=(0.0, 0.5, -0.4),
            relative_gains=(1.0, 0.5, 0.25j),
        )

    def test_no_blockage_identity(self, array):
        multibeam = self.make_multibeam(array)
        assert reallocate_gains(multibeam, [False, False, False]) is multibeam

    def test_blocked_beam_zeroed(self, array):
        multibeam = self.make_multibeam(array)
        out = reallocate_gains(multibeam, [False, True, False])
        assert out.relative_gains[1] == 0.0
        assert out.relative_gains[0] != 0.0

    def test_power_moves_to_survivors(self, array):
        # Zeroing a beam and renormalizing increases the survivors' share
        # of radiated power along their directions.
        multibeam = MultiBeam(
            array=array, angles_rad=(0.0, 0.5), relative_gains=(1.0, 1.0)
        )
        full = multibeam.weights().vector
        out = reallocate_gains(multibeam, [True, False]).weights().vector
        from repro.arrays.steering import steering_vector

        survivor_gain_full = abs(steering_vector(array, 0.5) @ full)
        survivor_gain_after = abs(steering_vector(array, 0.5) @ out)
        assert survivor_gain_after > survivor_gain_full

    def test_reference_reassigned(self, array):
        multibeam = self.make_multibeam(array)
        out = reallocate_gains(multibeam, [True, False, False])
        # Strongest survivor (index 1) becomes the unit reference.
        assert out.relative_gains[1] == pytest.approx(1.0)

    def test_total_blockage_raises(self, array):
        multibeam = self.make_multibeam(array)
        with pytest.raises(RuntimeError, match="outage"):
            reallocate_gains(multibeam, [True, True, True])

    def test_shape_validation(self, array):
        multibeam = self.make_multibeam(array)
        with pytest.raises(ValueError):
            reallocate_gains(multibeam, [True, False])
