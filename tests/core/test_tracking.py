"""Tests for the proactive mobility tracker (Eqs. 18-20)."""

import numpy as np
import pytest

from repro.arrays import UniformLinearArray, ula_power_pattern
from repro.core.multibeam import MultiBeam
from repro.core.tracking import BeamTracker, MultiBeamTracker, PowerSmoother


@pytest.fixture
def array():
    return UniformLinearArray(num_elements=8)


class TestPowerSmoother:
    def test_first_sample_passthrough(self):
        smoother = PowerSmoother()
        assert smoother.update(0.0, -40.0) == pytest.approx(-40.0)

    def test_smooths_noise(self):
        rng = np.random.default_rng(0)
        smoother = PowerSmoother(forgetting_factor=0.8, window=8)
        outputs = [
            smoother.update(t, -40.0 + rng.normal(0, 2.0))
            for t in np.arange(0, 0.1, 0.005)
        ]
        # Smoothed variance well below raw sample variance.
        assert np.std(outputs[4:]) < 1.5

    def test_follows_trend(self):
        smoother = PowerSmoother(forgetting_factor=0.5, window=6)
        times = np.arange(0, 0.1, 0.005)
        last = None
        for t in times:
            last = smoother.update(t, -40.0 - 100.0 * t)
        # Tracks a -10 dB/0.1s ramp to within a few dB of the endpoint.
        assert last == pytest.approx(-50.0, abs=4.0)

    def test_reset(self):
        smoother = PowerSmoother()
        smoother.update(0.0, -40.0)
        smoother.reset()
        assert smoother.update(1.0, -60.0) == pytest.approx(-60.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            PowerSmoother(forgetting_factor=0.0)
        with pytest.raises(ValueError):
            PowerSmoother(window=2)


class TestBeamTracker:
    def test_requires_anchor(self):
        tracker = BeamTracker(num_elements=8, steer_angle_rad=0.0)
        with pytest.raises(RuntimeError):
            tracker.update(0.0, -40.0)

    def test_zero_offset_at_reference(self):
        tracker = BeamTracker(num_elements=8, steer_angle_rad=0.0)
        tracker.anchor(-40.0)
        assert tracker.update(0.0, -40.0) == 0.0

    def test_recovers_known_rotation(self):
        offset_true = np.deg2rad(3.0)
        drop = -10 * np.log10(ula_power_pattern(8, offset_true))
        tracker = BeamTracker(
            num_elements=8, steer_angle_rad=0.0,
            smoother=PowerSmoother(forgetting_factor=1.0),
        )
        tracker.anchor(-40.0)
        estimate = tracker.update(0.0, -40.0 - drop)
        assert estimate == pytest.approx(offset_true, abs=np.deg2rad(0.2))

    def test_paper_accuracy_with_noise(self):
        # Paper Fig. 17b: ~1 degree mean error across 2-8 degree rotations.
        rng = np.random.default_rng(1)
        errors = []
        for offset_deg in (2.0, 4.0, 6.0, 8.0):
            offset_true = np.deg2rad(offset_deg)
            drop = -10 * np.log10(ula_power_pattern(8, offset_true))
            tracker = BeamTracker(num_elements=8, steer_angle_rad=0.0)
            tracker.anchor(-40.0)
            estimate = 0.0
            for i, t in enumerate(np.arange(0, 0.06, 0.005)):
                noisy = -40.0 - drop + rng.normal(0.0, 0.5)
                estimate = tracker.update(t, noisy)
            errors.append(abs(np.rad2deg(estimate) - offset_deg))
        assert np.mean(errors) < 1.5

    def test_blockage_scale_drop_ignored(self):
        tracker = BeamTracker(
            num_elements=8, steer_angle_rad=0.0, max_drop_db=12.0,
            smoother=PowerSmoother(forgetting_factor=1.0),
        )
        tracker.anchor(-40.0)
        assert tracker.update(0.0, -40.0 - 26.0) == 0.0

    def test_power_gain_maps_to_zero(self):
        tracker = BeamTracker(num_elements=8, steer_angle_rad=0.0)
        tracker.anchor(-40.0)
        assert tracker.update(0.0, -35.0) == 0.0


class TestMultiBeamTracker:
    def make(self, array):
        multibeam = MultiBeam(
            array=array,
            angles_rad=(0.0, np.deg2rad(30.0)),
            relative_gains=(1.0, 0.5),
        )
        tracker = MultiBeamTracker.for_multibeam(multibeam)
        return multibeam, tracker

    def test_anchor_then_update(self, array):
        multibeam, tracker = self.make(array)
        tracker.anchor([-40.0, -46.0])
        offsets = tracker.update(0.0, [-40.0, -46.0])
        assert offsets == pytest.approx([0.0, 0.0])

    def test_candidate_multibeams(self, array):
        multibeam, tracker = self.make(array)
        offsets = np.array([0.01, 0.02])
        plus, minus = tracker.candidate_multibeams(multibeam, offsets)
        assert plus.angles_rad[0] == pytest.approx(0.01)
        assert minus.angles_rad[1] == pytest.approx(np.deg2rad(30.0) - 0.02)

    def test_refine_picks_improving_sign(self, array):
        multibeam, tracker = self.make(array)
        tracker.anchor([-40.0, -46.0])
        # Both beams misaligned by +1.5 degrees.
        offset = np.deg2rad(1.5)
        drop = -10 * np.log10(ula_power_pattern(8, offset))

        def snr_probe(candidate):
            # The +offset candidate realigns perfectly -> higher SNR.
            error = abs(candidate.angles_rad[0] - offset)
            return 30.0 - np.rad2deg(error)

        for t in (0.005, 0.01, 0.015):
            refined, probes = tracker.refine(
                multibeam, t, [-40.0 - drop, -46.0 - drop], snr_probe, 25.0
            )
        assert probes >= 1
        assert refined.angles_rad[0] == pytest.approx(offset, abs=np.deg2rad(1.0))

    def test_refine_holds_when_neither_improves(self, array):
        multibeam, tracker = self.make(array)
        tracker.anchor([-40.0, -46.0])

        def snr_probe(candidate):
            return -100.0  # every candidate is terrible

        refined, probes = tracker.refine(
            multibeam, 0.005, [-43.0, -49.0], snr_probe, 25.0
        )
        assert refined is multibeam
        assert probes == 2

    def test_no_probe_when_static(self, array):
        multibeam, tracker = self.make(array)
        tracker.anchor([-40.0, -46.0])
        refined, probes = tracker.refine(
            multibeam, 0.005, [-40.0, -46.0], lambda c: 0.0, 25.0
        )
        assert refined is multibeam
        assert probes == 0

    def test_shape_validation(self, array):
        multibeam, tracker = self.make(array)
        with pytest.raises(ValueError):
            tracker.anchor([-40.0])
        tracker.anchor([-40.0, -46.0])
        with pytest.raises(ValueError):
            tracker.update(0.0, [-40.0])
        with pytest.raises(ValueError):
            tracker.candidate_multibeams(multibeam, np.array([0.1]))
