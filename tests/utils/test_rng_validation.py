"""Tests for repro.utils.rng and repro.utils.validation."""

import numpy as np
import pytest

from repro.utils import check_array_1d, check_in_range, check_positive, ensure_rng


class TestEnsureRng:
    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = ensure_rng(42).random(5)
        b = ensure_rng(42).random(5)
        assert a == pytest.approx(b)

    def test_generator_passthrough(self):
        rng = np.random.default_rng(1)
        assert ensure_rng(rng) is rng

    def test_numpy_integer_seed(self):
        rng = ensure_rng(np.int64(7))
        assert isinstance(rng, np.random.Generator)

    def test_rejects_bad_type(self):
        with pytest.raises(TypeError):
            ensure_rng("seed")


class TestCheckPositive:
    def test_accepts_positive(self):
        check_positive("x", 1.5)

    def test_rejects_zero(self):
        with pytest.raises(ValueError, match="x must be positive"):
            check_positive("x", 0)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_positive("x", -2)


class TestCheckInRange:
    def test_inclusive_bounds(self):
        check_in_range("x", 0.0, 0.0, 1.0)
        check_in_range("x", 1.0, 0.0, 1.0)

    def test_exclusive_bounds_reject_edges(self):
        with pytest.raises(ValueError):
            check_in_range("x", 0.0, 0.0, 1.0, inclusive=False)

    def test_out_of_range(self):
        with pytest.raises(ValueError, match="must be in"):
            check_in_range("x", 2.0, 0.0, 1.0)


class TestCheckArray1d:
    def test_accepts_list(self):
        out = check_array_1d("x", [1, 2, 3])
        assert out.shape == (3,)

    def test_rejects_2d(self):
        with pytest.raises(ValueError, match="one-dimensional"):
            check_array_1d("x", np.zeros((2, 2)))
