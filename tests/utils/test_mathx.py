"""Tests for repro.utils.mathx helpers."""

import numpy as np
import pytest

from repro.utils import (
    angle_difference,
    complex_from_polar,
    is_unit_norm,
    normalized_sinc,
    unit_vector,
    wrap_angle,
    wrap_phase,
)


class TestSinc:
    def test_zero_is_one(self):
        assert normalized_sinc(0.0) == pytest.approx(1.0)

    def test_integer_zeros(self):
        assert normalized_sinc(np.array([1.0, 2.0, -3.0])) == pytest.approx(
            [0.0, 0.0, 0.0], abs=1e-12
        )

    def test_half_value(self):
        assert normalized_sinc(0.5) == pytest.approx(2.0 / np.pi)


class TestWrapAngle:
    def test_identity_in_range(self):
        assert wrap_angle(0.3) == pytest.approx(0.3)

    def test_wraps_positive(self):
        assert wrap_angle(np.pi + 0.1) == pytest.approx(-np.pi + 0.1)

    def test_wraps_negative(self):
        assert wrap_angle(-np.pi - 0.1) == pytest.approx(np.pi - 0.1)

    def test_pi_maps_to_pi(self):
        assert wrap_angle(np.pi) == pytest.approx(np.pi)
        assert wrap_angle(-np.pi) == pytest.approx(np.pi)

    def test_array(self):
        out = wrap_angle(np.array([0.0, 2 * np.pi, 3 * np.pi]))
        assert out == pytest.approx([0.0, 0.0, np.pi])


class TestWrapPhase:
    def test_in_range(self):
        assert wrap_phase(1.0) == pytest.approx(1.0)

    def test_negative_wraps_up(self):
        assert wrap_phase(-0.5) == pytest.approx(2 * np.pi - 0.5)

    def test_two_pi_wraps_to_zero(self):
        assert wrap_phase(2 * np.pi) == pytest.approx(0.0)


class TestAngleDifference:
    def test_simple(self):
        assert angle_difference(0.5, 0.2) == pytest.approx(0.3)

    def test_across_wrap(self):
        assert angle_difference(np.pi - 0.1, -np.pi + 0.1) == pytest.approx(-0.2)


class TestUnitVector:
    def test_normalizes(self):
        v = unit_vector(np.array([3.0, 4.0]))
        assert np.linalg.norm(v) == pytest.approx(1.0)
        assert v == pytest.approx([0.6, 0.8])

    def test_complex(self):
        v = unit_vector(np.array([1j, 1.0]))
        assert np.linalg.norm(v) == pytest.approx(1.0)

    def test_zero_vector_raises(self):
        with pytest.raises(ValueError):
            unit_vector(np.zeros(4))


class TestComplexFromPolar:
    def test_basic(self):
        z = complex_from_polar(2.0, np.pi / 2)
        assert z == pytest.approx(2j)

    def test_array(self):
        z = complex_from_polar(np.array([1.0, 2.0]), np.array([0.0, np.pi]))
        assert z == pytest.approx([1.0, -2.0])


class TestIsUnitNorm:
    def test_true_case(self):
        assert is_unit_norm(np.array([1.0, 0.0]))

    def test_false_case(self):
        assert not is_unit_norm(np.array([1.0, 1.0]))

    def test_tolerance(self):
        assert is_unit_norm(np.array([1.0 + 1e-12, 0.0]))
