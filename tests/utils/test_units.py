"""Tests for repro.utils.units conversions."""

import numpy as np
import pytest

from repro.utils import (
    SPEED_OF_LIGHT,
    db_to_linear,
    dbm_to_watt,
    linear_to_db,
    power_db_to_linear,
    power_linear_to_db,
    watt_to_dbm,
    wavelength,
)


class TestAmplitudeConversions:
    def test_zero_db_is_unity(self):
        assert db_to_linear(0.0) == pytest.approx(1.0)

    def test_six_db_doubles_amplitude(self):
        assert db_to_linear(20.0 * np.log10(2.0)) == pytest.approx(2.0)

    def test_roundtrip(self):
        values = np.array([0.1, 1.0, 3.7, 250.0])
        assert linear_to_db(db_to_linear(linear_to_db(values))) == pytest.approx(
            linear_to_db(values)
        )

    def test_array_input(self):
        out = db_to_linear(np.array([0.0, 20.0]))
        assert out == pytest.approx([1.0, 10.0])


class TestPowerConversions:
    def test_three_db_doubles_power(self):
        assert power_db_to_linear(10.0 * np.log10(2.0)) == pytest.approx(2.0)

    def test_ten_db_is_factor_ten(self):
        assert power_db_to_linear(10.0) == pytest.approx(10.0)

    def test_roundtrip(self):
        assert power_linear_to_db(power_db_to_linear(7.3)) == pytest.approx(7.3)

    def test_amplitude_and_power_rules_differ(self):
        # 20 dB is amplitude x10 but power x100.
        assert db_to_linear(20.0) == pytest.approx(10.0)
        assert power_db_to_linear(20.0) == pytest.approx(100.0)


class TestDbm:
    def test_30_dbm_is_one_watt(self):
        assert dbm_to_watt(30.0) == pytest.approx(1.0)

    def test_0_dbm_is_one_milliwatt(self):
        assert dbm_to_watt(0.0) == pytest.approx(1e-3)

    def test_roundtrip(self):
        assert watt_to_dbm(dbm_to_watt(17.0)) == pytest.approx(17.0)


class TestWavelength:
    def test_28ghz_wavelength(self):
        assert wavelength(28e9) == pytest.approx(SPEED_OF_LIGHT / 28e9)
        assert wavelength(28e9) == pytest.approx(0.0107, abs=1e-4)

    def test_60ghz_shorter_than_28ghz(self):
        assert wavelength(60e9) < wavelength(28e9)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            wavelength(0.0)
        with pytest.raises(ValueError):
            wavelength(-1e9)
