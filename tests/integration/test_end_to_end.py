"""Integration tests: the full pipeline against the paper's headline claims."""

import numpy as np
import pytest

from repro.arrays import UniformLinearArray, uniform_codebook
from repro.baselines import OracleBeam, ReactiveSingleBeam, WideBeam
from repro.beamtraining import ExhaustiveTrainer, HierarchicalTrainer
from repro.channel.blockage import random_blockage_schedule
from repro.core.maintenance import MultiBeamManager
from repro.phy.ofdm import ChannelSounder, OfdmConfig
from repro.sim.link import LinkSimulator
from repro.sim.scenarios import indoor_two_path_scenario


ARRAY = UniformLinearArray(num_elements=8)
CONFIG = OfdmConfig(bandwidth_hz=400e6, num_subcarriers=64)


def build_manager(kind, seed):
    sounder = ChannelSounder(config=CONFIG, rng=seed)
    exhaustive = ExhaustiveTrainer(
        codebook=uniform_codebook(ARRAY, 33), sounder=sounder
    )
    hierarchical = HierarchicalTrainer(
        array=ARRAY, sounder=sounder, num_levels=5
    )
    if kind == "mmreliable":
        return MultiBeamManager(
            array=ARRAY, sounder=sounder, trainer=exhaustive, num_beams=2
        )
    if kind == "reactive":
        return ReactiveSingleBeam(
            array=ARRAY, sounder=sounder, trainer=hierarchical
        )
    if kind == "widebeam":
        return WideBeam(
            array=ARRAY, sounder=sounder, trainer=exhaustive,
            active_elements=3,
        )
    if kind == "oracle":
        return OracleBeam(array=ARRAY, sounder=sounder)
    raise ValueError(kind)


def run(kind, seed, blockage=True, speed=1.5, duration=1.0):
    schedule = (
        random_blockage_schedule(
            num_paths=2, num_events=2, rng=1000 + seed,
            block_strongest_only=True,
        )
        if blockage
        else random_blockage_schedule(
            num_paths=2, num_events=0, rng=0
        )
    )
    scenario = indoor_two_path_scenario(
        ARRAY, translation_speed_mps=speed, blockage=schedule
    )
    simulator = LinkSimulator(
        scenario=scenario, manager=build_manager(kind, seed),
        duration_s=duration,
    )
    return simulator.run().metrics()


class TestHeadlineClaims:
    """The paper's Section 6.2 comparisons, at reduced ensemble size."""

    @pytest.fixture(scope="class")
    def results(self):
        seeds = range(4)
        return {
            kind: [run(kind, seed) for seed in seeds]
            for kind in ("mmreliable", "reactive", "widebeam", "oracle")
        }

    def test_mmreliable_reliability_near_one(self, results):
        reliability = np.median(
            [m.reliability for m in results["mmreliable"]]
        )
        assert reliability > 0.93

    def test_mmreliable_more_reliable_than_reactive(self, results):
        mmr = np.mean([m.reliability for m in results["mmreliable"]])
        reactive = np.mean([m.reliability for m in results["reactive"]])
        assert mmr > reactive

    def test_mmreliable_higher_product_than_baselines(self, results):
        mmr = np.mean([m.product for m in results["mmreliable"]])
        for baseline in ("reactive", "widebeam"):
            other = np.mean([m.product for m in results[baseline]])
            assert mmr > other

    def test_widebeam_lowest_throughput(self, results):
        wide = np.mean(
            [m.mean_throughput_bps for m in results["widebeam"]]
        )
        for other_kind in ("mmreliable", "reactive", "oracle"):
            other = np.mean(
                [m.mean_throughput_bps for m in results[other_kind]]
            )
            assert wide < other

    def test_oracle_upper_bounds_everything(self, results):
        oracle = np.mean([m.product for m in results["oracle"]])
        for kind in ("mmreliable", "reactive", "widebeam"):
            assert oracle >= np.mean([m.product for m in results[kind]])

    def test_mmreliable_trains_once(self, results):
        # Proactive maintenance means no reactive retraining storms.
        for metrics in results["mmreliable"]:
            assert metrics.training_rounds <= 2


class TestStaticUnblockedGain:
    def test_multibeam_beats_single_beam_without_blockage(self):
        # Fig. 15d: constructive multi-beam gains ~1 dB even on a static
        # unblocked link.
        mmr = run("mmreliable", seed=0, blockage=False, speed=0.0,
                  duration=0.2)
        reactive = run("reactive", seed=0, blockage=False, speed=0.0,
                       duration=0.2)
        assert mmr.mean_snr_db > reactive.mean_snr_db
        # No outages; the only unavailability is the initial training
        # sweep (16.5 ms of SSBs over a 0.2 s window).
        assert mmr.reliability > 0.9
