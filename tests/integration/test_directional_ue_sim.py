"""Integration: the directional-UE link manager driven by the simulator."""

import numpy as np
import pytest

from repro.core.ue_link import DirectionalUeLinkManager
from repro.phy.mcs import OUTAGE_SNR_DB
from repro.phy.ofdm import ChannelSounder, OfdmConfig
from repro.sim.link import LinkSimulator
from repro.sim.scenarios import SyntheticScenario

import sys

sys.path.insert(0, "tests/core")
from test_ue_link import GNB, UE, directional_channel  # noqa: E402


def make_manager(seed=0):
    sounder = ChannelSounder(
        config=OfdmConfig(bandwidth_hz=100e6, num_subcarriers=64), rng=seed
    )
    return DirectionalUeLinkManager(
        gnb_array=GNB, ue_array=UE, sounder=sounder, num_beams=2
    )


class UeScenarioAdapter:
    """Adapt a multi-channel scenario to the single-channel protocol.

    The ``LinkSimulator`` calls ``link_snr_db(channel)`` on the manager;
    the directional manager has exactly that signature, so the adapter
    only needs to surface ``channel_at``.
    """

    def __init__(self, scenario):
        self.scenario = scenario

    def channel_at(self, time_s):
        return self.scenario.channel_at(time_s)


class TestDirectionalUeSimulation:
    def test_tracked_link_survives_translation(self):
        # Both ends' bearings sweep at ~5 deg/s: without joint
        # realignment the 4-element UE lobe (HPBW ~26 deg) plus the
        # 8-element gNB lobe lose several dB over 1.5 s.
        rate = np.deg2rad(5.0)
        scenario = SyntheticScenario(
            base_channel=directional_channel(),
            angular_rates_rad_s=(rate, rate),
            aoa_rates_rad_s=(-rate, -rate),
        )
        simulator = LinkSimulator(
            scenario=UeScenarioAdapter(scenario),
            manager=make_manager(0),
            duration_s=1.5,
            maintenance_period_s=10e-3,
        )
        trace = simulator.run()
        # Tracked: SNR never collapses and ends near where it started.
        assert np.min(trace.snr_db) > OUTAGE_SNR_DB
        assert np.mean(trace.snr_db[-100:]) > np.mean(
            trace.snr_db[:100]
        ) - 2.0

    def test_untracked_reference_degrades(self):
        rate = np.deg2rad(5.0)
        scenario = SyntheticScenario(
            base_channel=directional_channel(),
            angular_rates_rad_s=(rate, rate),
            aoa_rates_rad_s=(-rate, -rate),
        )
        manager = make_manager(1)
        manager.establish(scenario.channel_at(0.0))
        start = manager.link_snr_db(scenario.channel_at(0.0))
        # Freeze the beams and let the channel drift for 1.5 s.
        end = manager.link_snr_db(scenario.channel_at(1.5))
        assert end < start - 3.0
