# lint-fixture: relpath=src/repro/sim/_fixture_rng.py
"""RNG-discipline fixtures: one deliberate violation per RL0xx rule."""

import random
import time
from dataclasses import dataclass

import numpy as np


def legacy_draw():
    return np.random.rand(4)  # expect: RL001


def wall_clock_jitter():
    jitter = random.random()  # expect: RL002
    stamp = time.time()  # expect: RL002
    return jitter, stamp


def unseeded():
    return np.random.default_rng()  # expect: RL003


def constant_seed():
    return np.random.default_rng(1234)  # expect: RL003


def magic_offset(seed):
    return np.random.default_rng(500 + seed)  # expect: RL005


@dataclass(frozen=True)
class SimState:
    """Frozen state holding a generator, stream policy undocumented."""

    rng: np.random.Generator  # expect: RL004
