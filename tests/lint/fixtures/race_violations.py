# lint-fixture: relpath=src/repro/perf/_fixture_race_bad.py
"""Race-detection fixtures: one deliberate violation per RL6xx rule."""

import threading
from concurrent.futures import ThreadPoolExecutor

_RESULTS = {}
_POOL = ThreadPoolExecutor(max_workers=2)

_ENGINE = None


class _Engine:
    def __init__(self):
        self.ready = True


def _record(key, value):
    _RESULTS[key] = value  # expect: RL601


def _get_engine():
    global _ENGINE
    if _ENGINE is None:
        _ENGINE = _Engine()  # expect: RL603
    return _ENGINE


def fan_out(items):
    for index, item in enumerate(items):
        _POOL.submit(_record, index, item)
    _POOL.submit(_get_engine)


async def loop_side_write():
    _RESULTS["done"] = True  # expect: RL601


class LeakyCounter:
    """The lock protects writes in bump() but peek() skips it."""

    def __init__(self):
        self._lock = threading.Lock()
        self._counts = {}

    def bump(self, key):
        with self._lock:
            self._counts[key] = self._counts.get(key, 0) + 1

    def peek(self, key):
        return self._counts.get(key, 0)  # expect: RL602
