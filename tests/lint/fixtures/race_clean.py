# lint-fixture: relpath=src/repro/perf/_fixture_race.py
"""Race-detection fixtures: shared state handled correctly."""

import threading
from concurrent.futures import ThreadPoolExecutor

_RESULTS = {}
_RESULTS_LOCK = threading.Lock()
_POOL = ThreadPoolExecutor(max_workers=2)

_ENGINE = None


class _Engine:
    def __init__(self):
        self.ready = True


def _record(key, value):
    # Guarded write: safe from any number of workers.
    with _RESULTS_LOCK:
        _RESULTS[key] = value


def _get_engine():
    global _ENGINE
    with _RESULTS_LOCK:
        if _ENGINE is None:
            _ENGINE = _Engine()
    return _ENGINE


def fan_out(items):
    for index, item in enumerate(items):
        _POOL.submit(_record, index, item)
    _POOL.submit(_get_engine)


async def loop_side_read():
    # Reads alone never trip RL601; only unguarded writes do.
    with _RESULTS_LOCK:
        return dict(_RESULTS)


class GuardedCounter:
    """Every touch of the protected fields happens under the lock."""

    def __init__(self):
        self._lock = threading.Lock()
        self._counts = {}
        self.total = 0

    def bump(self, key):
        with self._lock:
            self._counts[key] = self._counts.get(key, 0) + 1
            self.total += 1

    def snapshot(self):
        with self._lock:
            return dict(self._counts), self.total
