# lint-fixture: relpath=src/repro/_fixture_contracts.py
"""Telemetry/contract fixtures: one deliberate violation per RL2xx rule."""


class EventKind:
    PROBE_TX = "probe_tx"
    NEVER_EMITTED = "never_emitted"  # expect: RL201


def emit_registered(recorder, time_s):
    recorder.emit(EventKind.PROBE_TX, time_s)


def emit_unregistered(recorder, time_s):
    recorder.emit("ghost_event", time_s)  # expect: RL202


def charge_outside_layer(probe_budget, cost):
    probe_budget.charge(cost)  # expect: RL203


def cache_key_for(weights):
    key = id(weights)  # expect: RL204
    return key
