# lint-fixture: relpath=src/repro/_fixture_purity.py
"""Purity fixtures: one deliberate violation per RL3xx rule."""

from dataclasses import dataclass


@dataclass(frozen=True)
class Label:
    text: str

    def rename(self, text):
        object.__setattr__(self, "text", text)  # expect: RL302


def accumulate(value, into=[]):  # expect: RL301
    into.append(value)
    return into
