# lint-fixture: relpath=src/repro/phy/_fixture_units_flow_bad.py
"""Flow-sensitive unit fixtures: mixing only dataflow can see."""

from repro.utils.units import db_to_linear, power_linear_to_db


def hidden_mix(path_loss_db):
    gain = db_to_linear(path_loss_db)
    return gain + path_loss_db  # expect: RL104


def branch_mix(flag, x_db, noise):
    if flag:
        level = db_to_linear(x_db)
    else:
        level = db_to_linear(x_db) * noise
    return level - x_db  # expect: RL104


def loop_mix(samples, floor_db):
    acc = db_to_linear(floor_db)
    for _sample in samples:
        acc = acc * 2.0
    return acc - floor_db  # expect: RL104


def suffix_lies(snr):
    snr_db = db_to_linear(snr)  # expect: RL105
    return snr_db


def conversion_lies(power):
    power_w = power_linear_to_db(power)  # expect: RL105
    return power_w
