# lint-fixture: relpath=src/repro/sim/_fixture_rng_clean.py
"""Seed-disciplined RNG usage that must produce zero findings."""

from dataclasses import dataclass

import numpy as np


def seeded(seed):
    return np.random.default_rng(seed)


def keyed_substream(seed, index):
    return np.random.default_rng([seed, index])


@dataclass(frozen=True)
class RekeyedState:
    """Holds a stream; the executor re-keys it per retry attempt."""

    rng: np.random.Generator
