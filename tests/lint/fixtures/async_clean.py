# lint-fixture: relpath=src/repro/serve/_fixture_async.py
"""Async-hygiene fixtures: every RL5xx idiom done correctly."""

import asyncio
import os


def _persist(path):
    descriptor = os.open(path, os.O_WRONLY)
    os.fsync(descriptor)
    os.close(descriptor)


async def offloaded_blocking(path):
    # Blocking work hops off the loop explicitly.
    await asyncio.to_thread(_persist, path)


async def retained_task(worker):
    task = asyncio.create_task(worker())
    await task
    return task.result()


async def stored_task(self_like, worker):
    # Attribute stores retain the handle beyond this frame.
    self_like.task = asyncio.create_task(worker())


async def async_lock_discipline(queue):
    lock = asyncio.Lock()
    async with lock:
        await queue.get()


async def bounded_external(loop, pool, job):
    result = await asyncio.wait_for(
        loop.run_in_executor(pool, job), timeout=5.0
    )
    return result


async def bounded_connection(host, port):
    async with asyncio.timeout(2.0):
        reader, writer = await asyncio.open_connection(host, port)
    return reader, writer
