# lint-fixture: relpath=src/repro/channel/_fixture_modules_clean.py
# lint-fixture: require-all=src/repro/channel
"""Module-hygiene-respecting fixture that must produce zero findings."""

import math

__all__ = ["circumference"]


def circumference(radius):
    return 2.0 * math.pi * radius
