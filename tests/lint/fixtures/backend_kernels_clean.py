# lint-fixture: relpath=src/repro/perf/_fixture_kernels_clean.py
"""A pure backend-kernel module that must produce zero findings.

Also proves the marker is load-bearing: the sibling module below uses
RNG *without* the marker and stays silent under RL310/RL311 (the
general RNG rules still apply on their own scopes).
"""

import math

import numpy as np

__backend_kernels__ = True


def pure_kernel(values, scale):
    out = np.empty_like(values)
    for index in range(values.shape[0]):
        out[index] = values[index] * scale + math.sin(float(index))
    return out
