# lint-fixture: relpath=src/repro/_fixture_purity_clean.py
"""Purity-respecting code that must produce zero findings."""

from dataclasses import dataclass


@dataclass(frozen=True)
class Label:
    text: str

    def __post_init__(self):
        object.__setattr__(self, "text", self.text.strip())


def accumulate(value, into=None):
    items = list(into or ())
    items.append(value)
    return items
