# lint-fixture: relpath=src/repro/sim/_fixture_pragmas.py
# repro-lint: disable-file=RL003
"""Pragma behaviour: inline and file-wide suppressions, same-line only."""

import numpy as np


def suppressed_inline():
    return np.random.rand(2)  # repro-lint: disable=RL001


def suppressed_file_wide():
    return np.random.default_rng()


def still_reported():
    return np.random.rand(3)  # expect: RL001
