# lint-fixture: relpath=src/repro/phy/_fixture_units_flow.py
"""Flow-sensitive unit fixtures: taint tracked, no domain ever mixed."""

from repro.utils.units import db_to_linear, linear_to_db


def amplitude_chain(path_loss_db, tx_power_db):
    combined_db = tx_power_db - path_loss_db
    amplitude = db_to_linear(combined_db)
    scaled = amplitude * 3.0
    return linear_to_db(scaled)


def branch_consistent(flag, x_db):
    if flag:
        value = db_to_linear(x_db)
    else:
        value = db_to_linear(x_db) * 2.0
    # Both arms are linear, so linear arithmetic stays clean.
    return value * value


def loop_consistent(samples, floor_db):
    acc = db_to_linear(floor_db)
    for _sample in samples:
        acc = acc * 2.0
    return linear_to_db(acc) - floor_db
