# lint-fixture: relpath=src/repro/_fixture_contracts_clean.py
"""Contract-respecting telemetry code that must produce zero findings."""


class EventKind:
    PROBE_TX = "probe_tx"
    LINK_DOWN = "link_down"


def emit_every_kind(recorder, time_s):
    recorder.emit(EventKind.PROBE_TX, time_s)
    recorder.emit("link_down", time_s)
