# lint-fixture: relpath=src/repro/core/_fixture_units.py
"""Unit-hygiene fixtures: one deliberate violation per RL1xx rule."""

import numpy as np


def mixed_domains(snr_db, noise_w):
    return snr_db + noise_w  # expect: RL101


def inline_db_to_linear(power_db):
    return 10.0 ** (power_db / 10.0)  # expect: RL102


def inline_linear_to_db(power):
    return 10.0 * np.log10(power)  # expect: RL102


def combining_gain(power):  # expect: RL103
    return 20.0 * np.log10(power)  # expect: RL102
