# lint-fixture: relpath=src/repro/channel/_fixture_modules.py  # expect: RL402
# lint-fixture: require-all=src/repro/channel
"""Module-hygiene fixtures: RL401 dead import, RL402 missing export list."""

import math  # expect: RL401


def passthrough(value):
    return value
