# lint-fixture: relpath=src/repro/serve/_fixture_async_bad.py
"""Async-hygiene fixtures: one deliberate violation per RL5xx rule."""

import asyncio
import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor

_STATE_LOCK = threading.Lock()


def _persist(path):
    descriptor = os.open(path, os.O_WRONLY)
    os.fsync(descriptor)
    os.close(descriptor)


async def sleepy_handler():
    time.sleep(0.5)  # expect: RL501


async def sneaky_read(path):
    with open(path) as stream:  # expect: RL501
        return stream.read()


async def executor_result_wait(job):
    pool = ThreadPoolExecutor(max_workers=1)
    future = pool.submit(job)
    return future.result()  # expect: RL501


async def fire_and_forget(worker):
    asyncio.create_task(worker())  # expect: RL502


async def dead_stored_task(worker):
    task = asyncio.create_task(worker())  # expect: RL502
    return None


async def lock_held_await(queue):
    with _STATE_LOCK:
        return await queue.get()  # expect: RL503


async def unbounded_executor_hop(loop, pool, job):
    return await loop.run_in_executor(pool, job)  # expect: RL504


async def unbounded_connection(host, port):
    return await asyncio.open_connection(host, port)  # expect: RL504


async def transitively_blocking(path):
    _persist(path)  # expect: RL505
