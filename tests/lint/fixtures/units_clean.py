# lint-fixture: relpath=src/repro/core/_fixture_units_clean.py
"""Unit-disciplined code that must produce zero findings."""

from repro.utils.units import power_db_to_linear, power_linear_to_db


def snr_linear(snr_db):
    return power_db_to_linear(snr_db)


def combining_gain_db(power):
    return power_linear_to_db(power)
