# lint-fixture: relpath=src/repro/perf/_fixture_kernels.py
"""Backend-kernel purity fixtures: RNG and telemetry inside kernels."""

import random  # expect: RL310

import numpy as np

from repro.telemetry import get_recorder  # expect: RL311

__backend_kernels__ = True


def noisy_kernel(taps, seed):
    rng = np.random.default_rng(seed)  # expect: RL310
    jitter = random.random()  # expect: RL310
    return rng.standard_normal(taps) * jitter


def chatty_kernel(values):
    get_recorder().counter("perf.backend.cheat").inc()  # expect: RL311
    return values * 2.0
