"""Golden fixture tests for every per-file rule family.

Each fixture under ``fixtures/`` declares its expected findings inline
with ``# expect: RLxxx`` markers (see ``conftest.py`` for the fixture
conventions).  The test runs the analyzer over the fixture and demands
an *exact* match: a missed violation fails the test, and so does any
extra finding — the fixtures are precision tests as much as recall
tests.  Clean ``*_clean.py`` fixtures carry no markers and must lint
spotless.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

from repro_lint import (
    rules_async,
    rules_modules,
    rules_purity,
    rules_rng,
    rules_units,
)
from repro_lint.config import LintConfig
from repro_lint.core import FileContext
from repro_lint.registry import ALL_RULES
from repro_lint.rules_contracts import ContractChecker
from repro_lint.rules_race import ConcurrencyChecker

FIXTURES_DIR = Path(__file__).resolve().parent / "fixtures"
FIXTURES = sorted(FIXTURES_DIR.glob("*.py"))

_DIRECTIVE_RE = re.compile(r"#\s*lint-fixture:\s*([\w-]+)=(\S+)")
_EXPECT_RE = re.compile(r"#\s*expect:\s*([A-Z0-9,\s]+)")

#: RL403 spans multiple modules, so it is exercised in test_engine.py
#: instead of through single-file fixtures.
_MULTI_FILE_RULES = frozenset({"RL403"})


def load_fixture(path: Path):
    source = path.read_text(encoding="utf-8")
    directives = dict(_DIRECTIVE_RE.findall(source))
    relpath = directives.get("relpath", f"tests/lint/fixtures/{path.name}")
    config = LintConfig(root=Path("."))
    if "require-all" in directives:
        config.require_all = tuple(directives["require-all"].split(","))
    return relpath, source, config


def expected_markers(source: str):
    expected = set()
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _EXPECT_RE.search(line)
        if match is None:
            continue
        for code in match.group(1).split(","):
            code = code.strip()
            if code:
                expected.add((lineno, code))
    return expected


def lint_single_file(relpath: str, source: str, config: LintConfig):
    """Run every rule family over one in-memory file, engine-style."""
    ctx = FileContext(relpath, source)
    findings = []
    for check in (
        rules_rng.check,
        rules_units.check,
        rules_purity.check,
        rules_modules.check,
        rules_async.check,
    ):
        findings.extend(check(ctx, config))
    contracts = ContractChecker()
    findings.extend(contracts.check_file(ctx, config))
    findings.extend(contracts.finalize(config))
    concurrency = ConcurrencyChecker()
    findings.extend(concurrency.check_file(ctx, config))
    findings.extend(concurrency.finalize(config))
    return [f for f in findings if not ctx.pragmas.suppresses(f)]


@pytest.mark.parametrize("fixture", FIXTURES, ids=lambda p: p.stem)
def test_fixture_findings_match_markers(fixture):
    relpath, source, config = load_fixture(fixture)
    findings = lint_single_file(relpath, source, config)
    actual = {(f.line, f.rule) for f in findings}
    expected = expected_markers(source)
    missing = expected - actual
    extra = actual - expected
    assert actual == expected, (
        f"{fixture.name}: findings diverge from # expect markers\n"
        f"  missing (expected, not found): {sorted(missing)}\n"
        f"  extra (found, not expected):   {sorted(extra)}\n"
        f"  raw: {[f.format() for f in findings]}"
    )


def test_clean_fixtures_carry_no_markers():
    for fixture in FIXTURES:
        if fixture.stem.endswith("_clean"):
            assert not expected_markers(fixture.read_text(encoding="utf-8")), (
                f"{fixture.name} is a clean fixture but declares expectations"
            )


def test_every_rule_has_a_fixture():
    covered = set()
    for fixture in FIXTURES:
        covered.update(
            code for _, code in expected_markers(fixture.read_text(encoding="utf-8"))
        )
    uncovered = set(ALL_RULES) - covered - _MULTI_FILE_RULES
    assert not uncovered, f"rules without a golden fixture: {sorted(uncovered)}"
    unknown = covered - set(ALL_RULES)
    assert not unknown, f"fixtures expect unregistered rules: {sorted(unknown)}"
