"""The repo's own lint surface must stay green and in sync.

These are the tests CI leans on: ``repro lint src tools --check-baseline``
over the real tree must exit 0, every committed baseline entry must
carry a real justification, and the ``repro lint`` subcommand must
dispatch to the analyzer.
"""

from __future__ import annotations

import io
from pathlib import Path

from repro_lint.baseline import load_baseline
from repro_lint.cli import main as lint_main
from repro_lint.registry import ALL_RULES

REPO_ROOT = Path(__file__).resolve().parents[2]
BASELINE_PATH = REPO_ROOT / "tools" / "repro_lint" / "baseline.json"


def test_repo_tree_lints_clean_with_baseline_in_sync():
    out = io.StringIO()
    code = lint_main(
        ["--root", str(REPO_ROOT), "src", "tools", "--check-baseline"], out=out
    )
    assert code == 0, (
        f"repro lint src tools --check-baseline failed:\n{out.getvalue()}"
    )


def test_committed_baseline_entries_are_justified_and_known():
    # The RL102 grandfather list was burned down to zero; the baseline
    # file must stay present (CI passes --check-baseline) but any entry
    # that reappears must be justified and name a real rule.
    entries = load_baseline(BASELINE_PATH)
    for entry in entries:
        assert entry.justification.strip(), (
            f"baseline entry without justification: {entry.rule} {entry.path} "
            f"{entry.code!r}"
        )
        assert entry.rule in ALL_RULES, f"baseline names unknown rule {entry.rule}"
        assert entry.path.startswith(("src/", "tools/")), (
            f"baseline entry outside the lint surface: {entry.path}"
        )


def test_repro_cli_dispatches_lint_subcommand(capsys):
    from repro.cli import main as repro_main

    code = repro_main(["lint", "--list-rules"])
    text = capsys.readouterr().out
    assert code == 0
    assert "RL001" in text
    assert "RL403" in text
    assert "RL505" in text
    assert "RL603" in text
