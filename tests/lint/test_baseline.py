"""Baseline mechanics: text-anchored matching, budgets, staleness."""

from __future__ import annotations

import json

from repro_lint.baseline import (
    BaselineEntry,
    load_baseline,
    reconcile,
    resolve_baseline_path,
    write_baseline,
)
from repro_lint.core import Finding


def finding(line, rule="RL102", path="src/repro/x.py"):
    return Finding(path=path, line=line, col=1, rule=rule, message="m")


def entry(code, rule="RL102", path="src/repro/x.py", justification="ok"):
    return BaselineEntry(rule=rule, path=path, code=code, justification=justification)


CONVERSION = "y = 10.0 ** (x / 10.0)"


class TestReconcile:
    def test_matches_by_stripped_text_not_line_number(self):
        # The entry was recorded at some other line; only the code text
        # has to agree, so unrelated edits never invalidate a baseline.
        lines = {"src/repro/x.py": ["", "", "", "", f"    {CONVERSION}"]}
        check = reconcile(
            [finding(5)],
            [BaselineEntry(rule="RL102", path="src/repro/x.py", code=CONVERSION,
                           line=99, justification="ok")],
            lines,
        )
        assert check.matched == 1
        assert not check.new_findings
        assert not check.stale_entries
        assert check.in_sync

    def test_one_entry_absorbs_only_one_of_two_identical_lines(self):
        lines = {"src/repro/x.py": [CONVERSION, CONVERSION]}
        check = reconcile([finding(1), finding(2)], [entry(CONVERSION)], lines)
        assert check.matched == 1
        assert len(check.new_findings) == 1
        assert not check.in_sync

    def test_two_entries_absorb_two_identical_lines(self):
        lines = {"src/repro/x.py": [CONVERSION, CONVERSION]}
        check = reconcile(
            [finding(1), finding(2)], [entry(CONVERSION), entry(CONVERSION)], lines
        )
        assert check.matched == 2
        assert not check.new_findings
        assert check.in_sync

    def test_unmatched_entry_is_stale(self):
        check = reconcile([], [entry(CONVERSION)], {})
        assert len(check.stale_entries) == 1
        assert not check.in_sync

    def test_empty_justification_breaks_sync(self):
        lines = {"src/repro/x.py": [CONVERSION]}
        check = reconcile(
            [finding(1)], [entry(CONVERSION, justification="  ")], lines
        )
        assert check.matched == 1
        assert check.unjustified_entries
        assert not check.in_sync


class TestFilePersistence:
    def test_write_then_load_round_trips(self, tmp_path):
        path = tmp_path / "baseline.json"
        lines = {"src/repro/x.py": [CONVERSION]}
        written = write_baseline(
            path, [finding(1)], lines, default_justification="grandfathered"
        )
        assert [e.code for e in written] == [CONVERSION]
        loaded = load_baseline(path)
        assert loaded == [
            BaselineEntry(
                rule="RL102",
                path="src/repro/x.py",
                code=CONVERSION,
                line=1,
                justification="grandfathered",
            )
        ]

    def test_rewrite_preserves_hand_written_justifications(self, tmp_path):
        path = tmp_path / "baseline.json"
        lines = {"src/repro/x.py": [CONVERSION]}
        previous = [entry(CONVERSION, justification="audited by hand")]
        written = write_baseline(
            path, [finding(1)], lines, previous=previous,
            default_justification="placeholder",
        )
        assert written[0].justification == "audited by hand"

    def test_missing_file_is_an_empty_baseline(self, tmp_path):
        assert load_baseline(tmp_path / "nope.json") == []

    def test_malformed_document_is_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"not": "a list"}), encoding="utf-8")
        try:
            load_baseline(path)
        except ValueError as error:
            assert "JSON list" in str(error)
        else:
            raise AssertionError("malformed baseline must be rejected")


class TestResolvePath:
    def test_explicit_beats_configured(self, tmp_path):
        resolved = resolve_baseline_path("explicit.json", "config.json", tmp_path)
        assert resolved == tmp_path / "explicit.json"

    def test_configured_is_root_relative(self, tmp_path):
        resolved = resolve_baseline_path(None, "config.json", tmp_path)
        assert resolved == tmp_path / "config.json"

    def test_nothing_configured_means_no_baseline(self, tmp_path):
        assert resolve_baseline_path(None, None, tmp_path) is None
