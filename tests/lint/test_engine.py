"""Engine-level tests: multi-file rules, filtering, scan semantics."""

from __future__ import annotations

import textwrap

import pytest

from repro_lint.config import LintConfig
from repro_lint.engine import lint_paths


def write(root, relpath, text):
    path = root / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(text), encoding="utf-8")
    return path


@pytest.fixture
def project(tmp_path):
    """An empty throwaway project rooted at ``tmp_path``."""
    config = LintConfig(root=tmp_path, paths=("src",))
    return tmp_path, config


class TestImportCycles:
    def test_module_level_cycle_is_reported(self, project):
        root, config = project
        write(
            root,
            "src/repro/a.py",
            """
            from repro.b import helper_b


            def helper_a():
                return helper_b() + 1
            """,
        )
        write(
            root,
            "src/repro/b.py",
            """
            from repro.a import helper_a


            def helper_b():
                return 0


            def round_trip():
                return helper_a()
            """,
        )
        result = lint_paths([], config, use_baseline=False)
        cycles = [f for f in result.new_findings if f.rule == "RL403"]
        assert len(cycles) == 1
        assert "repro.a" in cycles[0].message
        assert "repro.b" in cycles[0].message
        assert result.exit_code == 1

    def test_function_local_import_breaks_the_cycle(self, project):
        root, config = project
        write(
            root,
            "src/repro/a.py",
            """
            from repro.b import helper_b


            def helper_a():
                return helper_b() + 1
            """,
        )
        write(
            root,
            "src/repro/b.py",
            """
            def helper_b():
                return 0


            def round_trip():
                from repro.a import helper_a

                return helper_a()
            """,
        )
        result = lint_paths([], config, use_baseline=False)
        assert not [f for f in result.new_findings if f.rule == "RL403"]

    def test_type_checking_imports_break_the_cycle(self, project):
        # TYPE_CHECKING imports are erased at runtime: mutually
        # annotation-dependent modules are not a load-order cycle.
        root, config = project
        write(
            root,
            "src/repro/a.py",
            """
            from typing import TYPE_CHECKING

            if TYPE_CHECKING:
                from repro.b import B


            def make_a(b: "B"):
                return b
            """,
        )
        write(
            root,
            "src/repro/b.py",
            """
            from typing import TYPE_CHECKING

            if TYPE_CHECKING:
                from repro.a import make_a


            class B:
                def touch(self) -> "make_a":
                    return make_a
            """,
        )
        result = lint_paths([], config, use_baseline=False)
        assert not [f for f in result.new_findings if f.rule == "RL403"]


class TestScanScope:
    REGISTRY = """
    class EventKind:
        PROBE_TX = "probe_tx"
        GHOST = "ghost"


    def emit_probe(recorder, time_s):
        recorder.emit(EventKind.PROBE_TX, time_s)
    """

    def test_full_scan_reports_unemitted_kinds(self, project):
        root, config = project
        write(root, "src/repro/events.py", self.REGISTRY)
        result = lint_paths([], config, use_baseline=False)
        dead = [f for f in result.new_findings if f.rule == "RL201"]
        assert len(dead) == 1
        assert "GHOST" in dead[0].message

    def test_subset_scan_cannot_call_a_kind_dead(self, project):
        root, config = project
        write(root, "src/repro/events.py", self.REGISTRY)
        result = lint_paths(["src/repro/events.py"], config, use_baseline=False)
        assert not [f for f in result.new_findings if f.rule == "RL201"]

    def test_excluded_paths_are_not_scanned(self, project):
        root, config = project
        config.exclude = config.exclude + ("src/repro/vendor",)
        write(root, "src/repro/ok.py", "VALUE = 1\n")
        write(root, "src/repro/vendor/bad.py", "def f(x=[]):\n    return x\n")
        result = lint_paths([], config, use_baseline=False)
        assert result.files_scanned == 1
        assert not result.new_findings

    def test_unparseable_file_is_an_error_not_a_crash(self, project):
        root, config = project
        write(root, "src/repro/broken.py", "def broken(:\n")
        result = lint_paths([], config, use_baseline=False)
        assert result.errors and result.errors[0][0] == "src/repro/broken.py"
        assert result.exit_code == 2

    def test_missing_target_raises(self, project):
        _, config = project
        with pytest.raises(FileNotFoundError):
            lint_paths(["src/no/such/dir"], config, use_baseline=False)


class TestFiltering:
    SOURCE = """
    def f(x=[], y_db=0.0):
        return 10.0 ** (y_db / 10.0)
    """

    def rules_for(self, config, root):
        write(root, "src/repro/sample.py", self.SOURCE)
        result = lint_paths([], config, use_baseline=False)
        return sorted(f.rule for f in result.new_findings)

    def test_unfiltered_reports_both_rules(self, project):
        root, config = project
        assert self.rules_for(config, root) == ["RL102", "RL301"]

    def test_select_restricts_to_a_family(self, project):
        root, config = project
        config.select = ("RL1",)
        assert self.rules_for(config, root) == ["RL102"]

    def test_disable_removes_a_rule(self, project):
        root, config = project
        config.disable = ("RL102",)
        assert self.rules_for(config, root) == ["RL301"]

    def test_per_file_ignores_scope_by_prefix(self, project):
        root, config = project
        config.per_file_ignores = {"src/repro": ("RL301",)}
        assert self.rules_for(config, root) == ["RL102"]
