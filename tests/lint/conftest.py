"""Shared plumbing for the repro-lint self-tests.

The analyzer lives in ``tools/repro_lint`` (deliberately outside
``src`` — it is a development tool, not part of the shipped package), so
this conftest puts ``tools`` on ``sys.path`` before any test module
imports.  Files under ``fixtures/`` are lint *inputs*: they carry
deliberate violations, are excluded from pytest collection (no
``test_`` prefix) and from the repo's own lint/ruff surface.

Fixture file conventions
------------------------

``# lint-fixture: relpath=<path>`` (line 1) lints the file *as if* it
lived at ``<path>``, so path-scoped rules (deterministic core, units
exemptions, probe-budget layers) apply the way they would in ``src``.

``# lint-fixture: require-all=<prefix>[,<prefix>]`` opts the fixture
into RL402's ``__all__`` requirement for those path prefixes.

``# expect: RL001[,RL002]`` on a line declares that exactly those rules
must fire with that line as their anchor.  The golden test fails on any
missing *or* extra finding, so fixtures double as precision tests.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
TOOLS_DIR = REPO_ROOT / "tools"
FIXTURES_DIR = Path(__file__).resolve().parent / "fixtures"

if str(TOOLS_DIR) not in sys.path:
    sys.path.insert(0, str(TOOLS_DIR))
