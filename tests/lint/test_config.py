"""Configuration loading: the ``[tool.repro-lint]`` pyproject block."""

from __future__ import annotations

import textwrap

import pytest

from repro_lint.config import ConfigError, LintConfig, find_project_root, load_config


def write_pyproject(root, body):
    (root / "pyproject.toml").write_text(textwrap.dedent(body), encoding="utf-8")


class TestFindProjectRoot:
    def test_walks_up_to_the_pyproject(self, tmp_path):
        write_pyproject(tmp_path, "[tool.repro-lint]\n")
        nested = tmp_path / "src" / "deep"
        nested.mkdir(parents=True)
        assert find_project_root(nested) == tmp_path

    def test_none_when_no_pyproject_anywhere(self, tmp_path):
        nested = tmp_path / "plain"
        nested.mkdir()
        # tmp_path has no pyproject.toml and neither do its tmp ancestors.
        assert find_project_root(nested) is None


class TestLoadConfig:
    def test_missing_file_yields_defaults(self, tmp_path):
        config = load_config(tmp_path)
        assert config.root == tmp_path
        assert config.paths == ("src",)
        assert config.baseline is None

    def test_missing_block_yields_defaults(self, tmp_path):
        write_pyproject(tmp_path, "[project]\nname = 'x'\n")
        assert load_config(tmp_path).paths == ("src",)

    def test_block_overrides_are_applied(self, tmp_path):
        write_pyproject(
            tmp_path,
            """
            [tool.repro-lint]
            paths = ["src", "benchmarks"]
            disable = ["RL403"]
            baseline = "lint-baseline.json"
            units-exempt = ["src/units"]
            require-all = ["src/api"]

            [tool.repro-lint.per-file-ignores]
            "src/legacy" = ["RL301", "RL302"]
            """,
        )
        config = load_config(tmp_path)
        assert config.paths == ("src", "benchmarks")
        assert config.disable == ("RL403",)
        assert config.baseline == "lint-baseline.json"
        assert config.units_exempt == ("src/units",)
        assert config.require_all == ("src/api",)
        assert config.per_file_ignores == {"src/legacy": ("RL301", "RL302")}

    def test_unknown_key_is_rejected(self, tmp_path):
        write_pyproject(tmp_path, "[tool.repro-lint]\nbogus = true\n")
        with pytest.raises(ConfigError, match="unknown .* key"):
            load_config(tmp_path)

    def test_unknown_rule_code_is_rejected(self, tmp_path):
        write_pyproject(tmp_path, '[tool.repro-lint]\ndisable = ["RL999"]\n')
        with pytest.raises(ConfigError, match="RL999"):
            load_config(tmp_path)

    def test_wrongly_typed_list_is_rejected(self, tmp_path):
        write_pyproject(tmp_path, '[tool.repro-lint]\npaths = "src"\n')
        with pytest.raises(ConfigError, match="list of strings"):
            load_config(tmp_path)


class TestRuleEnabled:
    def test_select_matches_by_prefix(self):
        config = LintConfig(select=("RL1", "RL203"))
        assert config.rule_enabled("RL102")
        assert config.rule_enabled("RL203")
        assert not config.rule_enabled("RL001")

    def test_disable_beats_select(self):
        config = LintConfig(select=("RL1",), disable=("RL102",))
        assert not config.rule_enabled("RL102")
        assert config.rule_enabled("RL101")
