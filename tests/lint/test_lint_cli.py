"""CLI behaviour: exit codes, reports, and the baseline lifecycle."""

from __future__ import annotations

import io
import json
import textwrap

import pytest

from repro_lint.cli import main

VIOLATION = """
def snr_linear(snr_db):
    return 10.0 ** (snr_db / 10.0)
"""

CLEAN = """
from repro.utils.units import power_db_to_linear


def snr_linear(snr_db):
    return power_db_to_linear(snr_db)
"""


@pytest.fixture
def project(tmp_path):
    (tmp_path / "pyproject.toml").write_text(
        textwrap.dedent(
            """
            [tool.repro-lint]
            paths = ["src"]
            baseline = "lint-baseline.json"
            """
        ),
        encoding="utf-8",
    )
    sample = tmp_path / "src" / "repro" / "sample.py"
    sample.parent.mkdir(parents=True)
    sample.write_text(textwrap.dedent(VIOLATION), encoding="utf-8")
    return tmp_path, sample


def run(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestReporting:
    def test_violation_exits_one_with_text_report(self, project):
        root, _ = project
        code, text = run("--root", str(root))
        assert code == 1
        assert "RL102" in text
        assert "src/repro/sample.py:3" in text
        assert "1 finding" in text

    def test_json_format_is_machine_readable(self, project):
        root, _ = project
        code, text = run("--root", str(root), "--format", "json")
        assert code == 1
        payload = json.loads(text)
        assert payload["files_scanned"] == 1
        assert payload["findings"][0]["rule"] == "RL102"

    def test_list_rules_covers_every_family(self, project):
        code, text = run("--list-rules")
        assert code == 0
        for code_name in ("RL001", "RL102", "RL203", "RL301", "RL403"):
            assert code_name in text

    def test_select_flag_narrows_the_run(self, project):
        root, _ = project
        code, _ = run("--root", str(root), "--select", "RL3")
        assert code == 0

    def test_unknown_rule_code_is_a_usage_error(self, project):
        root, _ = project
        code, text = run("--root", str(root), "--disable", "RL999")
        assert code == 2
        assert "RL999" in text

    def test_missing_target_is_a_usage_error(self, project):
        root, _ = project
        code, text = run("--root", str(root), "no/such/path")
        assert code == 2
        assert "no such file" in text

    def test_root_is_autodetected_from_cwd(self, project, monkeypatch):
        root, _ = project
        monkeypatch.chdir(root / "src")
        code, text = run()
        assert code == 1
        assert "src/repro/sample.py" in text


class TestBaselineLifecycle:
    def test_update_absorb_check_then_stale(self, project):
        root, sample = project
        baseline = root / "lint-baseline.json"

        # 1. Grandfather the existing violation.
        code, text = run("--root", str(root), "--update-baseline")
        assert code == 0
        assert baseline.is_file()
        assert "wrote 1 baseline entry" in text

        # 2. The lint run is now green, and the baseline says why.
        code, text = run("--root", str(root))
        assert code == 0
        assert "baseline absorbed 1" in text

        # 3. --check-baseline agrees: justified, no stale, nothing new.
        code, _ = run("--root", str(root), "--check-baseline")
        assert code == 0

        # 4. --no-baseline still tells the truth about the violation.
        code, _ = run("--root", str(root), "--no-baseline")
        assert code == 1

        # 5. Fixing the violation makes the entry stale: check fails so
        #    the baseline cannot quietly rot.
        sample.write_text(textwrap.dedent(CLEAN), encoding="utf-8")
        code, _ = run("--root", str(root))
        assert code == 0  # plain lint stays green ...
        code, text = run("--root", str(root), "--check-baseline")
        assert code == 1  # ... but the sync check demands a refresh
        assert "stale baseline entry" in text

        # 6. Refreshing empties the baseline and restores sync.
        code, _ = run("--root", str(root), "--update-baseline")
        assert code == 0
        code, _ = run("--root", str(root), "--check-baseline")
        assert code == 0

    def test_unjustified_entry_fails_the_check(self, project):
        root, _ = project
        (root / "lint-baseline.json").write_text(
            json.dumps(
                [
                    {
                        "rule": "RL102",
                        "path": "src/repro/sample.py",
                        "line": 3,
                        "code": "return 10.0 ** (snr_db / 10.0)",
                        "justification": "",
                    }
                ]
            ),
            encoding="utf-8",
        )
        code, text = run("--root", str(root), "--check-baseline")
        assert code == 1
        assert "unjustified baseline entry" in text

    def test_update_without_a_path_is_a_usage_error(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text(
            "[tool.repro-lint]\npaths = ['src']\n", encoding="utf-8"
        )
        (tmp_path / "src").mkdir()
        code, text = run("--root", str(tmp_path), "--update-baseline")
        assert code == 2
        assert "no baseline path" in text
