"""Unit tests for the dataflow core: CFG shape, fixpoint, def-use,
and the unit-taint lattice the RL1xx flow rules ride on."""

from __future__ import annotations

import ast

from repro_lint.core import FileContext
from repro_lint.dataflow import (
    DB,
    LINEAR,
    MIXED,
    ControlFlowGraph,
    DefUse,
    UnitEnv,
    expression_domain,
    fixpoint,
    function_summaries,
    infer_unit_domains,
    join_domains,
    suffix_domain,
    transfer_units,
)


def _function(source: str) -> tuple[FileContext, ast.AST]:
    ctx = FileContext("src/repro/phy/_scratch.py", source)
    for node in ast.walk(ctx.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return ctx, node
    raise AssertionError("no function in source")


# ----------------------------------------------------------------------
# CFG construction
# ----------------------------------------------------------------------


def test_straight_line_cfg_reaches_exit():
    _, fn = _function("def f(x):\n    y = x\n    return y\n")
    graph = ControlFlowGraph.from_function(fn)
    statements = list(graph.statements())
    assert len(statements) == 2
    # The return block must link to the synthetic exit.
    return_block = next(
        block
        for block in graph.blocks.values()
        if any(isinstance(s, ast.Return) for s in block.statements)
    )
    assert graph.exit in return_block.successors


def test_if_else_produces_diamond():
    _, fn = _function(
        "def f(flag):\n"
        "    if flag:\n"
        "        a = 1\n"
        "    else:\n"
        "        a = 2\n"
        "    return a\n"
    )
    graph = ControlFlowGraph.from_function(fn)
    header = next(
        block
        for block in graph.blocks.values()
        if any(isinstance(s, ast.If) for s in block.statements)
    )
    assert len(header.successors) == 2
    # Both arms converge on the join block holding the return.
    join = next(
        block
        for block in graph.blocks.values()
        if any(isinstance(s, ast.Return) for s in block.statements)
    )
    assert len(graph.predecessors(join.block_id)) == 2


def test_while_loop_has_back_edge():
    _, fn = _function(
        "def f(n):\n"
        "    while n > 0:\n"
        "        n = n - 1\n"
        "    return n\n"
    )
    graph = ControlFlowGraph.from_function(fn)
    header = next(
        block
        for block in graph.blocks.values()
        if any(isinstance(s, ast.While) for s in block.statements)
    )
    body = next(
        block
        for block in graph.blocks.values()
        if any(isinstance(s, ast.Assign) for s in block.statements)
    )
    assert header.block_id in body.successors  # the back edge


def test_return_terminates_path():
    _, fn = _function(
        "def f(flag):\n"
        "    if flag:\n"
        "        return 1\n"
        "    return 2\n"
    )
    graph = ControlFlowGraph.from_function(fn)
    for block in graph.blocks.values():
        for statement in block.statements:
            if isinstance(statement, ast.Return):
                assert block.successors == [graph.exit]


def test_try_handler_reachable_from_body():
    _, fn = _function(
        "def f(x):\n"
        "    try:\n"
        "        y = x()\n"
        "    except ValueError:\n"
        "        y = 0\n"
        "    return y\n"
    )
    graph = ControlFlowGraph.from_function(fn)
    # Every statement appears exactly once and the graph stays connected
    # enough for the fixpoint to see both the body and the handler.
    statements = list(graph.statements())
    assigns = [s for s in statements if isinstance(s, ast.Assign)]
    assert len(assigns) == 2


# ----------------------------------------------------------------------
# generic fixpoint
# ----------------------------------------------------------------------


def test_fixpoint_propagates_through_branches():
    _, fn = _function(
        "def f(flag):\n"
        "    x = 1\n"
        "    if flag:\n"
        "        y = 2\n"
        "    else:\n"
        "        y = 3\n"
        "    return x + y\n"
    )
    graph = ControlFlowGraph.from_function(fn)

    def transfer(statement, state):
        out = set(state)
        if isinstance(statement, ast.Assign):
            out.update(
                t.id for t in statement.targets if isinstance(t, ast.Name)
            )
        return out

    states = fixpoint(graph, set(), transfer, lambda a, b: a | b, set)
    join = next(
        block
        for block in graph.blocks.values()
        if any(isinstance(s, ast.Return) for s in block.statements)
    )
    # Entry state of the join block: x definitely, y from both arms.
    assert states[join.block_id] == {"x", "y"}


# ----------------------------------------------------------------------
# def-use
# ----------------------------------------------------------------------


def test_defuse_dead_store_detected():
    _, fn = _function(
        "def f(make):\n"
        "    handle = make()\n"
        "    return None\n"
    )
    defuse = DefUse(fn)
    binding = defuse.bindings_of("handle")[0]
    assert not defuse.used_after("handle", binding.node)


def test_defuse_live_store_detected():
    _, fn = _function(
        "def f(make):\n"
        "    handle = make()\n"
        "    return handle\n"
    )
    defuse = DefUse(fn)
    binding = defuse.bindings_of("handle")[0]
    assert defuse.used_after("handle", binding.node)


def test_defuse_loop_use_counts_as_after():
    # A use textually *before* the binding still counts inside a shared
    # loop: the next iteration observes the previous store.
    _, fn = _function(
        "def f(make, items):\n"
        "    handle = None\n"
        "    for item in items:\n"
        "        if handle is not None:\n"
        "            item(handle)\n"
        "        handle = make()\n"
        "    return None\n"
    )
    defuse = DefUse(fn)
    binding = defuse.bindings_of("handle")[-1]
    assert defuse.used_after("handle", binding.node)


def test_defuse_value_of_resolves_provenance():
    _, fn = _function(
        "def f(pool, job):\n"
        "    fut = pool.submit(job)\n"
        "    return fut.result()\n"
    )
    defuse = DefUse(fn)
    load = next(
        node
        for node in ast.walk(fn)
        if isinstance(node, ast.Name)
        and node.id == "fut"
        and isinstance(node.ctx, ast.Load)
    )
    value = defuse.value_of(load)
    assert isinstance(value, ast.Call)
    assert value.func.attr == "submit"


# ----------------------------------------------------------------------
# unit taint
# ----------------------------------------------------------------------


def test_suffix_domains():
    assert suffix_domain("snr_db") == DB
    assert suffix_domain("power_w") == LINEAR
    assert suffix_domain("plain") is None


def test_join_lattice():
    assert join_domains(None, DB) == DB
    assert join_domains(DB, DB) == DB
    assert join_domains(DB, LINEAR) == MIXED


def test_taint_flows_through_assignment():
    ctx, fn = _function(
        "from repro.utils.units import db_to_linear\n"
        "def f(x_db):\n"
        "    gain = db_to_linear(x_db)\n"
        "    copy = gain\n"
        "    return copy\n"
    )
    env = UnitEnv()
    for statement in fn.body:
        env = transfer_units(ctx, statement, env, {})
    assert env.get("gain") == LINEAR
    assert env.get("copy") == LINEAR


def test_taint_joins_at_branch_merge():
    ctx, fn = _function(
        "from repro.utils.units import db_to_linear, linear_to_db\n"
        "def f(flag, x_db):\n"
        "    if flag:\n"
        "        v = db_to_linear(x_db)\n"
        "    else:\n"
        "        v = linear_to_db(x_db)\n"
        "    return v\n"
    )
    envs = infer_unit_domains(ctx, fn)
    graph = ControlFlowGraph.from_function(fn)
    join = next(
        block
        for block in graph.blocks.values()
        if any(isinstance(s, ast.Return) for s in block.statements)
    )
    # One arm linear, one arm dB: the merge must surface the conflict.
    assert envs[join.block_id].get("v") == MIXED


def test_taint_survives_loop_fixpoint():
    ctx, fn = _function(
        "from repro.utils.units import db_to_linear\n"
        "def f(samples, floor_db):\n"
        "    acc = db_to_linear(floor_db)\n"
        "    for _s in samples:\n"
        "        acc = acc * 2.0\n"
        "    return acc\n"
    )
    envs = infer_unit_domains(ctx, fn)
    graph = ControlFlowGraph.from_function(fn)
    exit_preds = graph.predecessors(graph.exit)
    assert any(
        envs[block_id].get("acc") == LINEAR for block_id in exit_preds
    )


def test_call_summary_from_same_file_helper():
    ctx, fn = _function(
        "from repro.utils.units import linear_to_db\n"
        "def helper_db(x):\n"
        "    return linear_to_db(x)\n"
    )
    summaries = function_summaries(ctx)
    assert summaries.get("helper_db") == DB


def test_expression_domain_respects_suffix_over_env():
    ctx, fn = _function("def f(x):\n    return x\n")
    env = UnitEnv(domains={"snr_db": LINEAR})
    node = ast.parse("snr_db", mode="eval").body
    # An explicit _db rename is a declaration; suffix evidence wins.
    assert expression_domain(ctx, node, env, {}) == DB
